#!/usr/bin/env bash
# Regenerates every table/figure, the extension experiments and the SVG
# artifacts, then runs the full test suite. Usage: ./reproduce.sh [out-file]
set -euo pipefail
out="${1:-FIGURES.txt}"
bins=(table1 fig01 fig02 fig03 fig04 fig05 fig06 fig07 fig08 fig09 fig10 \
      fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 fig21 \
      fig22 fig23 \
      ablation_queueing ablation_chain ablation_crossing ablation_scheduler \
      ablation_ports whatif_h100 locality_sched mp_recon covert_channel \
      noc_compare latency_load fault_robustness figures_svg)
cargo build --release -p gnoc-bench --bins
: > "$out"
mkdir -p out
for b in "${bins[@]}"; do
    echo "### $b" | tee -a "$out"
    # Every figure run also drops its telemetry registry next to the SVGs,
    # so out/ holds a machine-readable metrics artifact per figure. Stderr
    # goes to a per-figure log so a failing run names its culprit instead of
    # silently truncating the output file.
    if ! cargo run --release -q -p gnoc-bench --bin "$b" -- \
        --metrics "out/$b.metrics.json" >> "$out" 2> "out/$b.log"; then
        echo "error: figure binary '$b' failed — see out/$b.log" >&2
        exit 1
    fi
    echo >> "$out"
done
cargo test --workspace --release
echo "done — figures in $out, SVGs in out/"
