#!/usr/bin/env bash
# Regenerates every table/figure, the extension experiments and the SVG
# artifacts, then runs the full test suite.
#
# Usage: ./reproduce.sh [-j N] [out-file]
#
# -j N runs up to N figure binaries concurrently. Every figure is a pure
# function of its seed, so the assembled out-file is byte-identical for any
# N; only the wall time changes. Per-figure stdout/stderr land in
# out/<bin>.txt and out/<bin>.log either way, so a failing run names its
# culprit instead of silently truncating the output file.
set -euo pipefail

jobs=1
while getopts "j:" opt; do
    case "$opt" in
        j) jobs="$OPTARG" ;;
        *) echo "usage: ./reproduce.sh [-j N] [out-file]" >&2; exit 2 ;;
    esac
done
shift $((OPTIND - 1))
out="${1:-FIGURES.txt}"

bins=(table1 fig01 fig02 fig03 fig04 fig05 fig06 fig07 fig08 fig09 fig10 \
      fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 fig21 \
      fig22 fig23 \
      ablation_queueing ablation_chain ablation_crossing ablation_scheduler \
      ablation_ports whatif_h100 locality_sched mp_recon covert_channel \
      noc_compare latency_load fault_robustness figures_svg)
cargo build --release -p gnoc-bench --bins
mkdir -p out

# Concurrent `cargo run` invocations serialize on the target-dir lock, so
# both modes invoke the prebuilt binaries directly.
run_one() {
    local b="$1"
    "target/release/$b" --metrics "out/$b.metrics.json" \
        > "out/$b.txt" 2> "out/$b.log"
}

if (( jobs <= 1 )); then
    for b in "${bins[@]}"; do
        echo "### $b"
        if ! run_one "$b"; then
            echo "error: figure binary '$b' failed — see out/$b.log" >&2
            exit 1
        fi
    done
else
    # Bounded fan-out: keep at most $jobs binaries in flight, reaping the
    # oldest first so a failure is reported promptly.
    pids=()
    names=()
    fail=""
    for b in "${bins[@]}"; do
        echo "### $b (queued, -j $jobs)"
        run_one "$b" &
        pids+=($!)
        names+=("$b")
        if (( ${#pids[@]} >= jobs )); then
            wait "${pids[0]}" || fail="${names[0]}"
            pids=("${pids[@]:1}")
            names=("${names[@]:1}")
            if [[ -n "$fail" ]]; then break; fi
        fi
    done
    for i in "${!pids[@]}"; do
        wait "${pids[$i]}" || fail="${fail:-${names[$i]}}"
    done
    if [[ -n "$fail" ]]; then
        echo "error: figure binary '$fail' failed — see out/$fail.log" >&2
        exit 1
    fi
fi

# Assemble the per-figure outputs in the fixed list order so the artifact
# is byte-stable regardless of -j.
: > "$out"
for b in "${bins[@]}"; do
    { echo "### $b"; cat "out/$b.txt"; echo; } >> "$out"
done

cargo test --workspace --release
echo "done — figures in $out, SVGs in out/"
