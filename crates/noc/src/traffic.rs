//! Traffic generation and the Fig. 23 fairness experiment.
//!
//! The paper's network-only setup: a 6×6 mesh whose bottom-row nodes are
//! memory controllers; the remaining 30 compute nodes inject uniform-random
//! traffic towards the MCs at saturation. Under round-robin arbitration the
//! per-node accepted throughput differs by up to ≈ 2.4×; age-based
//! arbitration equalises it.

use crate::arbiter::ArbiterKind;
use crate::mesh::{Mesh, MeshConfig};
use crate::packet::{NodeId, PacketClass};
use gnoc_telemetry::TelemetryHandle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of the mesh fairness experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessResult {
    /// Accepted throughput (packets/cycle) per compute node, in node order.
    pub throughput: Vec<f64>,
    /// The compute-node ids, aligned with `throughput`.
    pub compute_nodes: Vec<NodeId>,
    /// The memory-controller node ids.
    pub mc_nodes: Vec<NodeId>,
    /// max/min throughput over the compute nodes.
    pub unfairness: f64,
}

/// Configuration of the fairness experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FairnessConfig {
    /// Mesh geometry and arbitration.
    pub mesh: MeshConfig,
    /// Offered load per compute node, packets/cycle (1.0 = saturation).
    pub inject_rate: f64,
    /// Warm-up cycles excluded from statistics.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Packet length in flits.
    pub flits: u32,
}

impl FairnessConfig {
    /// The paper's Fig. 23 configuration on the given arbiter: offered load
    /// above the 6-packets/cycle MC ejection capacity (30 × 0.25 = 7.5), so
    /// the network runs saturated but not starving.
    pub fn paper(arbiter: ArbiterKind) -> Self {
        Self {
            mesh: MeshConfig::paper_6x6(arbiter),
            inject_rate: 0.25,
            warmup: 3_000,
            measure: 15_000,
            flits: 1,
        }
    }
}

/// Runs the Fig. 23 experiment: bottom-row nodes are MCs, every other node
/// injects uniform-random traffic to a random MC.
pub fn run_fairness(cfg: FairnessConfig, seed: u64) -> FairnessResult {
    run_fairness_traced(cfg, seed, TelemetryHandle::disabled())
}

/// [`run_fairness`] with a telemetry handle attached to the mesh (queue-depth
/// sampling during the run, link/arbiter metrics and per-node throughput
/// spread exported afterwards).
pub fn run_fairness_traced(
    cfg: FairnessConfig,
    seed: u64,
    telemetry: TelemetryHandle,
) -> FairnessResult {
    run_fairness_recorded(cfg, seed, telemetry, false).0
}

/// [`run_fairness_traced`] with an optional flight recorder on the mesh.
/// The recorder observes phase decisions without participating in them, so
/// the returned [`FairnessResult`] is bit-identical whether or not `record`
/// is set.
pub fn run_fairness_recorded(
    cfg: FairnessConfig,
    seed: u64,
    telemetry: TelemetryHandle,
    record: bool,
) -> (FairnessResult, Option<Box<gnoc_telemetry::FlightRecorder>>) {
    let mut mesh = Mesh::new(cfg.mesh);
    mesh.set_telemetry(telemetry.clone());
    if record {
        mesh.attach_flight_recorder();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let width = cfg.mesh.width;
    let n = cfg.mesh.num_nodes();
    let mc_nodes: Vec<NodeId> = (0..width as u32).map(NodeId::new).collect();
    let compute_nodes: Vec<NodeId> = (width as u32..n as u32).map(NodeId::new).collect();

    // Per-node source queues of generated-but-not-yet-injected packets,
    // stamped with their generation cycle: age-based arbitration must see
    // source-queue waiting time, or global fairness degenerates.
    let mut backlog: Vec<std::collections::VecDeque<(u64, NodeId)>> =
        vec![std::collections::VecDeque::new(); n];

    let total = cfg.warmup + cfg.measure;
    for cycle in 0..total {
        if cycle == cfg.warmup {
            mesh.reset_stats();
        }
        for &src in &compute_nodes {
            if rng.gen::<f64>() < cfg.inject_rate {
                let dst = mc_nodes[rng.gen_range(0..mc_nodes.len())];
                backlog[src.index()].push_back((cycle, dst));
            }
            if let Some(&(birth, dst)) = backlog[src.index()].front() {
                if mesh.try_inject_with_birth(src, dst, cfg.flits, PacketClass::Request, birth) {
                    backlog[src.index()].pop_front();
                }
            }
        }
        mesh.step();
        mesh.drain_ejected();
    }

    let throughput: Vec<f64> = compute_nodes
        .iter()
        .map(|&c| mesh.stats().delivered_by_src[c.index()] as f64 / cfg.measure as f64)
        .collect();
    let max = throughput.iter().cloned().fold(0.0f64, f64::max);
    let min = throughput.iter().cloned().fold(f64::INFINITY, f64::min);
    let unfairness = if min > 0.0 { max / min } else { f64::INFINITY };
    telemetry.with(|t| {
        mesh.export_metrics(&mut t.registry);
        t.registry.gauge_set("noc.fairness.throughput_max", max);
        t.registry.gauge_set("noc.fairness.throughput_min", min);
        if unfairness.is_finite() {
            t.registry.gauge_set("noc.fairness.unfairness", unfairness);
        }
    });
    (
        FairnessResult {
            throughput,
            compute_nodes,
            mc_nodes,
            unfairness,
        },
        mesh.take_flight_recorder(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_mesh_is_unfair() {
        // Fig. 23a: locally fair arbitration starves distant nodes.
        let r = run_fairness(FairnessConfig::paper(ArbiterKind::RoundRobin), 1);
        assert!(
            r.unfairness > 1.6,
            "expected significant unfairness, got {:.2}",
            r.unfairness
        );
        assert_eq!(r.throughput.len(), 30);
    }

    #[test]
    fn age_based_mesh_is_fair() {
        // Fig. 23b: age-based arbitration provides global fairness.
        let r = run_fairness(FairnessConfig::paper(ArbiterKind::AgeBased), 1);
        assert!(
            r.unfairness < 1.25,
            "expected near-uniform throughput, got {:.2}",
            r.unfairness
        );
    }

    #[test]
    fn age_based_beats_round_robin_on_fairness() {
        let rr = run_fairness(FairnessConfig::paper(ArbiterKind::RoundRobin), 7);
        let age = run_fairness(FairnessConfig::paper(ArbiterKind::AgeBased), 7);
        assert!(age.unfairness < rr.unfairness);
    }

    #[test]
    fn total_throughput_is_mc_bound() {
        // 6 MCs with 1-flit packets accept at most 6 packets/cycle; the
        // saturated mesh should come close.
        let r = run_fairness(FairnessConfig::paper(ArbiterKind::RoundRobin), 3);
        let total: f64 = r.throughput.iter().sum();
        assert!(total <= 6.0 + 1e-9);
        assert!(total > 3.0, "mesh should sustain load: {total:.2}");
    }

    #[test]
    fn traced_fairness_exports_spread() {
        let telemetry = TelemetryHandle::enabled();
        let cfg = FairnessConfig {
            warmup: 500,
            measure: 2_000,
            ..FairnessConfig::paper(ArbiterKind::RoundRobin)
        };
        let r = run_fairness_traced(cfg, 1, telemetry.clone());
        assert_eq!(r, run_fairness(cfg, 1), "tracing must not perturb the run");
        let reg = telemetry.snapshot_registry().unwrap();
        let max = reg.gauge("noc.fairness.throughput_max").unwrap();
        let min = reg.gauge("noc.fairness.throughput_min").unwrap();
        assert!(max >= min && min > 0.0);
        assert!((reg.gauge("noc.fairness.unfairness").unwrap() - max / min).abs() < 1e-12);
        assert!(reg.counter("noc.flits") > 0);
    }

    #[test]
    fn recorded_fairness_is_bit_identical_and_captures_messages() {
        let cfg = FairnessConfig {
            warmup: 200,
            measure: 1_000,
            ..FairnessConfig::paper(ArbiterKind::RoundRobin)
        };
        let bare = run_fairness(cfg, 3);
        let (recorded, rec) = run_fairness_recorded(cfg, 3, TelemetryHandle::disabled(), true);
        assert_eq!(bare, recorded, "recording must not perturb the run");
        let rec = rec.unwrap();
        assert!(!rec.finished().is_empty());
        for m in rec.finished().iter().filter(|m| m.delivered) {
            assert_eq!(m.components_sum(), m.latency(), "message {}", m.id);
        }
    }

    #[test]
    fn results_are_seed_deterministic() {
        let a = run_fairness(FairnessConfig::paper(ArbiterKind::RoundRobin), 5);
        let b = run_fairness(FairnessConfig::paper(ArbiterKind::RoundRobin), 5);
        assert_eq!(a.throughput, b.throughput);
    }
}
