//! The Fig. 22 "network wall" survey.
//!
//! The paper defines the NoC↔MEM interface bandwidth of a simulated
//! configuration as `BW_NoC-MEM = f_NoC × w × C` (NoC clock × channel width ×
//! number of memory partitions) and compares it against the modelled memory
//! bandwidth: configurations with `BW_NoC-MEM < BW_MEM` are interface-bound —
//! they sit behind a "network wall" and can overstate the benefit of NoC
//! optimisations.
//!
//! The dataset below reconstructs representative baseline configurations of
//! the prior work the paper surveys (its references \[14\], \[15\],
//! \[17\], \[28\]–\[32\], \[58\], \[59\]). Exact parameters are not
//! always published; values are approximations chosen to match each system's
//! published clock/width/MC counts, and the *classification* (which side of
//! the wall) follows the paper's plot.

use serde::{Deserialize, Serialize};

/// One simulated-GPU baseline from prior work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorWorkPoint {
    /// Citation tag from the paper's reference list.
    pub name: &'static str,
    /// Short description of the system.
    pub system: &'static str,
    /// Modelled off-chip memory bandwidth, GB/s.
    pub mem_bw_gbps: f64,
    /// NoC clock, GHz.
    pub noc_clock_ghz: f64,
    /// NoC channel width, bytes.
    pub channel_width_bytes: f64,
    /// Number of memory partitions / controllers.
    pub num_mcs: u32,
}

impl PriorWorkPoint {
    /// `BW_NoC-MEM = f_NoC × w × C`, GB/s.
    pub fn noc_mem_interface_gbps(&self) -> f64 {
        self.noc_clock_ghz * self.channel_width_bytes * self.num_mcs as f64
    }

    /// Whether the configuration is interface-bound (`BW_NoC-MEM < BW_MEM`)
    /// — the paper's "network wall".
    pub fn network_wall(&self) -> bool {
        self.noc_mem_interface_gbps() < self.mem_bw_gbps
    }
}

/// The surveyed prior-work configurations (approximate reconstruction of
/// Fig. 22's points).
pub fn dataset() -> Vec<PriorWorkPoint> {
    vec![
        PriorWorkPoint {
            name: "[28]",
            system: "Throughput-effective NoC (GTX280-class)",
            mem_bw_gbps: 141.7,
            noc_clock_ghz: 0.602,
            channel_width_bytes: 16.0,
            num_mcs: 8,
        },
        PriorWorkPoint {
            name: "[29]",
            system: "Packet Pump (Fermi-class)",
            mem_bw_gbps: 177.4,
            noc_clock_ghz: 0.7,
            channel_width_bytes: 16.0,
            num_mcs: 6,
        },
        PriorWorkPoint {
            name: "[30]",
            system: "Bandwidth-efficient NoC",
            mem_bw_gbps: 179.2,
            noc_clock_ghz: 0.7,
            channel_width_bytes: 32.0,
            num_mcs: 8,
        },
        PriorWorkPoint {
            name: "[31]",
            system: "Cost-effective on-chip network",
            mem_bw_gbps: 173.0,
            noc_clock_ghz: 0.65,
            channel_width_bytes: 16.0,
            num_mcs: 8,
        },
        PriorWorkPoint {
            name: "[32]",
            system: "Conflict-free NoC",
            mem_bw_gbps: 177.4,
            noc_clock_ghz: 0.7,
            channel_width_bytes: 22.0,
            num_mcs: 6,
        },
        PriorWorkPoint {
            name: "[14]",
            system: "Cache-conscious wavefront scheduling",
            mem_bw_gbps: 179.2,
            noc_clock_ghz: 0.7,
            channel_width_bytes: 32.0,
            num_mcs: 6,
        },
        PriorWorkPoint {
            name: "[15]",
            system: "Mascar (GTX480-class)",
            mem_bw_gbps: 177.4,
            noc_clock_ghz: 0.7,
            channel_width_bytes: 32.0,
            num_mcs: 6,
        },
        PriorWorkPoint {
            name: "[17]",
            system: "iPAWS",
            mem_bw_gbps: 179.2,
            noc_clock_ghz: 0.7,
            channel_width_bytes: 32.0,
            num_mcs: 8,
        },
        PriorWorkPoint {
            name: "[58]",
            system: "WarpPool",
            mem_bw_gbps: 179.2,
            noc_clock_ghz: 1.4,
            channel_width_bytes: 32.0,
            num_mcs: 8,
        },
        PriorWorkPoint {
            name: "[59]",
            system: "Adaptive cache management",
            mem_bw_gbps: 179.2,
            noc_clock_ghz: 0.7,
            channel_width_bytes: 64.0,
            num_mcs: 6,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_bandwidth_formula() {
        let p = PriorWorkPoint {
            name: "x",
            system: "test",
            mem_bw_gbps: 100.0,
            noc_clock_ghz: 1.0,
            channel_width_bytes: 32.0,
            num_mcs: 4,
        };
        assert_eq!(p.noc_mem_interface_gbps(), 128.0);
        assert!(!p.network_wall());
    }

    #[test]
    fn survey_contains_both_sides_of_the_wall() {
        // The paper's point: a substantial fraction of prior work modelled an
        // interface-bound NoC, while others provisioned it adequately.
        let points = dataset();
        let walled = points.iter().filter(|p| p.network_wall()).count();
        assert!(walled >= 3, "walled: {walled}");
        assert!(walled <= points.len() - 3, "walled: {walled}");
    }

    #[test]
    fn throughput_effective_baseline_is_walled() {
        // [28]'s reply-network bottleneck is the motivating example.
        let p = dataset()
            .into_iter()
            .find(|p| p.name == "[28]")
            .expect("survey contains [28]");
        assert!(p.network_wall());
    }

    #[test]
    fn dataset_is_nonempty_and_distinct() {
        let points = dataset();
        assert_eq!(points.len(), 10);
        let mut names: Vec<_> = points.iter().map(|p| p.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 10);
    }
}
