//! Cycle-level two-level hierarchical crossbar.
//!
//! Recent work (and, per the paper, real GPUs) organise the NoC as a
//! hierarchy of crossbars rather than a multi-hop mesh: terminals share a
//! cluster-level switch whose *uplinks* (one or more per cluster — the
//! "input speedup") feed a single global crossbar in front of the memory
//! partitions. Two radix-limited stages replace hop-by-hop routing, so
//! bandwidth is uniform by construction and unloaded latency is two switch
//! traversals (Implication #6).

use crate::arbiter::{Arbiter, ArbiterKind};
use crate::crossbar::CrossbarStats;
use crate::packet::{NodeId, Packet, PacketClass};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of a [`HierCrossbar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierConfig {
    /// Number of terminal clusters (GPC-like groups).
    pub clusters: usize,
    /// Terminals per cluster.
    pub terminals_per_cluster: usize,
    /// Number of outputs (memory controllers).
    pub outputs: usize,
    /// Uplink ports per cluster into the global crossbar — the cluster's
    /// input speedup. 1 serialises the whole cluster; more ports expose more
    /// of its demand concurrently.
    pub uplink_speedup: usize,
    /// Packets per queue (terminal and uplink queues alike).
    pub buffer_packets: usize,
    /// Arbitration policy at both stages.
    pub arbiter: ArbiterKind,
}

impl HierConfig {
    /// A GPU-flavoured default comparable to the Fig. 23 mesh: 30 terminals
    /// in 5 clusters, 6 outputs, two uplinks per cluster.
    pub fn gpu_like() -> Self {
        Self {
            clusters: 5,
            terminals_per_cluster: 6,
            outputs: 6,
            uplink_speedup: 2,
            buffer_packets: 4,
            arbiter: ArbiterKind::RoundRobin,
        }
    }

    /// Total number of terminals.
    pub fn num_terminals(&self) -> usize {
        self.clusters * self.terminals_per_cluster
    }
}

/// A two-stage (cluster → global) crossbar network.
#[derive(Debug, Clone)]
pub struct HierCrossbar {
    cfg: HierConfig,
    term_queues: Vec<VecDeque<Packet>>,
    /// `[cluster][port]` queues feeding the global stage.
    uplink_queues: Vec<Vec<VecDeque<Packet>>>,
    uplink_arbiters: Vec<Vec<Arbiter>>,
    uplink_busy_until: Vec<Vec<u64>>,
    output_arbiters: Vec<Arbiter>,
    output_busy_until: Vec<u64>,
    cycle: u64,
    next_id: u64,
    ejected: Vec<Packet>,
    stats: CrossbarStats,
}

impl HierCrossbar {
    /// Builds an idle network.
    ///
    /// # Panics
    ///
    /// Panics if any dimension, the speedup or the buffer size is zero.
    pub fn new(cfg: HierConfig) -> Self {
        assert!(
            cfg.clusters > 0 && cfg.terminals_per_cluster > 0 && cfg.outputs > 0,
            "network must be non-empty"
        );
        assert!(cfg.uplink_speedup > 0, "need at least one uplink port");
        assert!(
            cfg.buffer_packets > 0,
            "buffers must hold at least 1 packet"
        );
        let n = cfg.num_terminals();
        Self {
            cfg,
            term_queues: vec![VecDeque::new(); n],
            uplink_queues: vec![vec![VecDeque::new(); cfg.uplink_speedup]; cfg.clusters],
            uplink_arbiters: vec![
                (0..cfg.uplink_speedup)
                    .map(|_| Arbiter::new(cfg.arbiter))
                    .collect();
                cfg.clusters
            ],
            uplink_busy_until: vec![vec![0; cfg.uplink_speedup]; cfg.clusters],
            output_arbiters: (0..cfg.outputs)
                .map(|_| Arbiter::new(cfg.arbiter))
                .collect(),
            output_busy_until: vec![0; cfg.outputs],
            cycle: 0,
            next_id: 0,
            ejected: Vec::new(),
            stats: CrossbarStats {
                delivered_by_src: vec![0; n],
                injected_by_src: vec![0; n],
                ..CrossbarStats::default()
            },
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CrossbarStats {
        &self.stats
    }

    /// Resets statistics without touching in-flight packets.
    pub fn reset_stats(&mut self) {
        let n = self.cfg.num_terminals();
        self.stats = CrossbarStats {
            delivered_by_src: vec![0; n],
            injected_by_src: vec![0; n],
            ..CrossbarStats::default()
        };
    }

    /// Attempts to inject a packet from terminal `src` to output `dst`.
    pub fn try_inject(&mut self, src: NodeId, dst: NodeId, flits: u32, class: PacketClass) -> bool {
        self.try_inject_with_birth(src, dst, flits, class, self.cycle)
    }

    /// Injection with an explicit generation stamp (see the mesh's method of
    /// the same name).
    pub fn try_inject_with_birth(
        &mut self,
        src: NodeId,
        dst: NodeId,
        flits: u32,
        class: PacketClass,
        birth: u64,
    ) -> bool {
        assert!(src.index() < self.cfg.num_terminals(), "src out of range");
        assert!(dst.index() < self.cfg.outputs, "dst out of range");
        if self.term_queues[src.index()].len() >= self.cfg.buffer_packets {
            return false;
        }
        self.term_queues[src.index()].push_back(Packet {
            id: self.next_id,
            src,
            dst,
            flits,
            birth,
            class,
        });
        self.next_id += 1;
        self.stats.injected_by_src[src.index()] += 1;
        true
    }

    /// Packets delivered since the last drain.
    pub fn drain_ejected(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.ejected)
    }

    /// Advances one cycle: global stage first (on queued uplink packets),
    /// then cluster uplinks pull from terminal queues.
    pub fn step(&mut self) {
        // ---- Global stage: outputs pick among uplink-queued packets. ------
        // The global switch is virtual-output-queued: an output may pull the
        // *first packet destined to it* from any uplink queue, so one busy
        // output never head-of-line-blocks traffic for the others.
        for out in 0..self.cfg.outputs {
            if self.output_busy_until[out] > self.cycle {
                continue;
            }
            let mut candidates = Vec::new();
            let mut positions = vec![usize::MAX; self.cfg.clusters * self.cfg.uplink_speedup];
            for c in 0..self.cfg.clusters {
                for p in 0..self.cfg.uplink_speedup {
                    let port = c * self.cfg.uplink_speedup + p;
                    if let Some((pos, pkt)) = self.uplink_queues[c][p]
                        .iter()
                        .enumerate()
                        .find(|(_, pkt)| pkt.dst.index() == out)
                    {
                        positions[port] = pos;
                        candidates.push((port, pkt.birth));
                    }
                }
            }
            if let Some(winner) = self.output_arbiters[out].pick(&candidates) {
                let (c, p) = (
                    winner / self.cfg.uplink_speedup,
                    winner % self.cfg.uplink_speedup,
                );
                // Invariant: the arbiter only returns indices that were in
                // `candidates`, and each candidate recorded its queue
                // position. Skip the grant (losing one cycle, not the run)
                // if that ever breaks.
                let Some(packet) = self.uplink_queues[c][p].remove(positions[winner]) else {
                    debug_assert!(false, "granted uplink lost its candidate packet");
                    continue;
                };
                self.output_busy_until[out] = self.cycle + u64::from(packet.flits);
                self.stats.delivered_by_src[packet.src.index()] += 1;
                self.stats.delivered_total += 1;
                self.stats.latency_sum += self.cycle - packet.birth;
                self.ejected.push(packet);
            }
        }

        // ---- Cluster stage: each uplink port pulls one terminal head. -----
        for c in 0..self.cfg.clusters {
            let base = c * self.cfg.terminals_per_cluster;
            // Track terminals already granted this cycle so two ports of the
            // same cluster never pull from one queue simultaneously.
            let mut granted = vec![false; self.cfg.terminals_per_cluster];
            for p in 0..self.cfg.uplink_speedup {
                if self.uplink_busy_until[c][p] > self.cycle {
                    continue;
                }
                if self.uplink_queues[c][p].len() >= self.cfg.buffer_packets {
                    continue;
                }
                let mut candidates = Vec::new();
                for (t, taken) in granted.iter().enumerate() {
                    if *taken {
                        continue;
                    }
                    if let Some(head) = self.term_queues[base + t].front() {
                        candidates.push((t, head.birth));
                    }
                }
                if let Some(winner) = self.uplink_arbiters[c][p].pick(&candidates) {
                    granted[winner] = true;
                    // Invariant: every candidate was a non-empty queue head.
                    let Some(packet) = self.term_queues[base + winner].pop_front() else {
                        debug_assert!(false, "granted terminal queue is empty");
                        continue;
                    };
                    self.uplink_busy_until[c][p] = self.cycle + u64::from(packet.flits);
                    self.uplink_queues[c][p].push_back(packet);
                }
            }
        }

        self.cycle += 1;
    }

    /// Runs `cycles` steps.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(speedup: usize) -> HierCrossbar {
        HierCrossbar::new(HierConfig {
            uplink_speedup: speedup,
            ..HierConfig::gpu_like()
        })
    }

    #[test]
    fn unloaded_latency_is_two_stages() {
        let mut x = net(2);
        x.try_inject(NodeId::new(0), NodeId::new(3), 1, PacketClass::Request);
        x.run(4);
        assert_eq!(x.stats().delivered_total, 1);
        // Injected at cycle 0; pulled into the uplink at cycle 0; delivered
        // at cycle 1 or 2 depending on stage interleaving.
        assert!(
            x.stats().mean_latency() <= 2.0,
            "{}",
            x.stats().mean_latency()
        );
    }

    #[test]
    fn saturated_throughput_matches_output_capacity() {
        let mut x = net(2);
        let mut rng_state = 7u64;
        for _ in 0..5000 {
            for t in 0..30u32 {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let dst = ((rng_state >> 33) % 6) as u32;
                let _ = x.try_inject(NodeId::new(t), NodeId::new(dst), 1, PacketClass::Request);
            }
            x.step();
            x.drain_ejected();
        }
        let rate = x.stats().delivered_total as f64 / x.cycle() as f64;
        assert!(
            rate > 5.4,
            "6 outputs should run near 6 pkt/cycle: {rate:.2}"
        );
    }

    #[test]
    fn throughput_is_uniform_across_terminals_and_clusters() {
        // Implication #6: the hierarchical crossbar gives every terminal the
        // same share regardless of its cluster — no parking-lot effect.
        let mut x = net(2);
        let mut rng_state = 11u64;
        for _ in 0..20_000 {
            for t in 0..30u32 {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let dst = ((rng_state >> 33) % 6) as u32;
                let _ = x.try_inject(NodeId::new(t), NodeId::new(dst), 1, PacketClass::Request);
            }
            x.step();
            x.drain_ejected();
        }
        let d = &x.stats().delivered_by_src;
        let max = *d.iter().max().unwrap() as f64;
        let min = *d.iter().min().unwrap() as f64;
        assert!(max / min < 1.1, "unfairness {:.3}", max / min);
    }

    #[test]
    fn uplink_speedup_gates_cluster_bandwidth() {
        // One cluster sending to all 6 outputs: speedup 1 caps it at 1
        // pkt/cycle, speedup 3 at 3 pkt/cycle.
        let rate_with = |speedup: usize| -> f64 {
            let mut x = net(speedup);
            for cycle in 0..4000u64 {
                for t in 0..6u32 {
                    let _ = x.try_inject(
                        NodeId::new(t), // all in cluster 0
                        NodeId::new(((cycle + u64::from(t)) % 6) as u32),
                        1,
                        PacketClass::Request,
                    );
                }
                x.step();
                x.drain_ejected();
            }
            x.stats().delivered_total as f64 / x.cycle() as f64
        };
        let s1 = rate_with(1);
        let s3 = rate_with(3);
        assert!(s1 < 1.05, "speedup-1 cluster capped at 1/cycle: {s1:.2}");
        assert!(s3 > 2.5, "speedup-3 cluster near 3/cycle: {s3:.2}");
    }

    #[test]
    fn wormhole_serialisation_applies_to_both_stages() {
        let mut x = net(1);
        x.try_inject(NodeId::new(0), NodeId::new(0), 4, PacketClass::Reply);
        x.try_inject(NodeId::new(1), NodeId::new(0), 4, PacketClass::Reply);
        // The shared 4-flit uplink admits the second packet only at cycle 4,
        // so it cannot be delivered before then.
        x.run(4);
        assert!(
            x.stats().delivered_total <= 1,
            "{}",
            x.stats().delivered_total
        );
        x.run(20);
        assert_eq!(x.stats().delivered_total, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_destination_rejected() {
        let mut x = net(1);
        let _ = x.try_inject(NodeId::new(0), NodeId::new(99), 1, PacketClass::Request);
    }
}
