//! Reliable end-to-end delivery over a (possibly faulty) mesh.
//!
//! The cycle-level [`Mesh`](crate::Mesh) moves packets; under fault injection
//! it may drop, corrupt, or strand them. [`ReliableMesh`] layers the
//! transport protocol a real GPU interconnect implements in hardware on top:
//! ACK-on-ejection, NACK on CRC failure, timeout-driven retransmission with
//! bounded exponential backoff, duplicate suppression, and a
//! deadlock/livelock watchdog that *reports* stuck traffic instead of
//! hanging the simulation.
//!
//! Every submitted transfer reaches exactly one terminal state: delivered
//! once, or lost with a [`LossReason`]. Never duplicated, never silently
//! dropped.

use crate::error::{LossReason, NocError};
use crate::mesh::{Mesh, MeshConfig};
use crate::packet::{NodeId, PacketClass};
use gnoc_faults::FaultPlan;
use gnoc_telemetry::{MetricRegistry, TraceEvent, SUBSYSTEM_NOC};
use gnoc_trace::{
    ReplayError, ReplayOutcome, TraceError, TraceEvent as TapEvent, TraceReader, TraceTap,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Bucket width of the transfer-latency histogram, cycles.
const LAT_BUCKET: u64 = 4;
/// Number of histogram buckets (tail clamps into the last).
const LAT_BUCKETS: usize = 512;

/// Retry and watchdog policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Retransmissions allowed after the first attempt before a transfer is
    /// declared [`LossReason::RetriesExhausted`].
    pub max_retries: u32,
    /// ACK timeout for the first attempt. Must comfortably exceed the
    /// healthy-network round trip, or congestion alone will trigger
    /// spurious (harmless but wasteful) retransmissions.
    pub base_timeout_cycles: u64,
    /// Ceiling on the exponentially backed-off timeout.
    pub max_timeout_cycles: u64,
    /// Cycles without any delivery, NACK, or loss resolution (while
    /// transfers are outstanding) before the watchdog declares the network
    /// stuck and reports every outstanding transfer as
    /// [`LossReason::Watchdog`].
    pub watchdog_cycles: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_timeout_cycles: 128,
            max_timeout_cycles: 2048,
            watchdog_cycles: 20_000,
        }
    }
}

/// Handle for one submitted transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransferId(usize);

impl TransferId {
    /// The transfer's dense index (submission order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Where a transfer currently stands. Terminal states are final: the first
/// resolution wins and later events (late duplicates) are suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// Waiting for buffer space at the source.
    Pending,
    /// A packet for this transfer is in the network.
    InFlight,
    /// Delivered exactly once.
    Delivered {
        /// Cycles from first submission to (first) ejection, retries
        /// included.
        latency: u64,
    },
    /// Definitively lost.
    Lost {
        /// Why the transfer was abandoned.
        reason: LossReason,
    },
}

impl TransferOutcome {
    /// Whether the transfer has reached a terminal state.
    pub fn is_resolved(&self) -> bool {
        matches!(self, Self::Delivered { .. } | Self::Lost { .. })
    }
}

#[derive(Debug, Clone)]
struct Transfer {
    src: NodeId,
    dst: NodeId,
    flits: u32,
    class: PacketClass,
    /// Cycle of the original submission; retransmissions keep this birth so
    /// age-based arbitration and latency accounting see the full wait.
    first_submit: u64,
    /// Injection attempts so far.
    attempts: u32,
    /// Cycle at which the current attempt times out.
    deadline: u64,
    state: TransferOutcome,
}

/// Aggregate reliable-delivery statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityStats {
    /// Transfers submitted.
    pub submitted: u64,
    /// Transfers delivered (each exactly once).
    pub delivered: u64,
    /// Retransmissions performed (timeouts plus NACKs).
    pub retries: u64,
    /// Late or duplicate arrivals discarded after their transfer resolved.
    pub duplicates_suppressed: u64,
    /// Retransmissions caused specifically by ejection-side CRC failures.
    pub corrupt_retries: u64,
    /// Transfers lost because no surviving route existed.
    pub lost_unroutable: u64,
    /// Transfers lost after the retry budget ran out.
    pub lost_retries_exhausted: u64,
    /// Transfers written off by the watchdog.
    pub lost_watchdog: u64,
    /// Times the watchdog tripped.
    pub watchdog_trips: u64,
    /// Sum of delivered-transfer latencies.
    pub latency_sum: u64,
    /// Worst delivered-transfer latency.
    pub latency_max: u64,
    /// Delivered-transfer latency histogram ([`LAT_BUCKET`]-cycle buckets).
    pub latency_histogram: Vec<u64>,
}

impl ReliabilityStats {
    /// Total transfers lost, any reason.
    pub fn lost_total(&self) -> u64 {
        self.lost_unroutable + self.lost_retries_exhausted + self.lost_watchdog
    }

    /// Mean delivered-transfer latency in cycles (0 with no deliveries).
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered as f64
        }
    }

    /// The `q`-quantile of delivered-transfer latency, bucket-resolved.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.delivered == 0 {
            return 0.0;
        }
        let target = (q * self.delivered as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.latency_histogram.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as u64 * LAT_BUCKET) as f64 + LAT_BUCKET as f64 / 2.0;
            }
        }
        (LAT_BUCKETS as u64 * LAT_BUCKET) as f64
    }

    fn record_latency(&mut self, latency: u64) {
        if self.latency_histogram.is_empty() {
            self.latency_histogram = vec![0; LAT_BUCKETS];
        }
        let bucket = ((latency / LAT_BUCKET) as usize).min(LAT_BUCKETS - 1);
        self.latency_histogram[bucket] += 1;
        self.latency_sum += latency;
        if latency > self.latency_max {
            self.latency_max = latency;
        }
    }
}

/// A mesh with an end-to-end retry protocol on top.
#[derive(Debug)]
pub struct ReliableMesh {
    mesh: Mesh,
    cfg: RetryConfig,
    transfers: Vec<Transfer>,
    /// Packet id → transfer index, for in-flight packets.
    by_packet: HashMap<u64, usize>,
    /// Transfers waiting to (re)inject, in deterministic FIFO order.
    pending: VecDeque<usize>,
    stats: ReliabilityStats,
    /// Unresolved transfer count.
    outstanding: usize,
    /// Earliest deadline among in-flight transfers — lets the timeout scan
    /// skip cycles where nothing can possibly expire.
    next_deadline: u64,
    /// Last cycle with protocol-level activity (delivery, NACK, loss).
    last_activity: u64,
    tripped: bool,
    /// Workload record tap (`gnoc trace record`): observes every submit,
    /// boxed and absent by default so untapped runs pay one pointer.
    trace_tap: Option<Box<TraceTap>>,
}

impl ReliableMesh {
    /// Wraps an existing mesh (fault plan already applied, if any).
    pub fn new(mesh: Mesh, cfg: RetryConfig) -> Self {
        Self {
            mesh,
            cfg,
            transfers: Vec::new(),
            by_packet: HashMap::new(),
            pending: VecDeque::new(),
            stats: ReliabilityStats::default(),
            outstanding: 0,
            next_deadline: u64::MAX,
            last_activity: 0,
            tripped: false,
            trace_tap: None,
        }
    }

    /// Builds a mesh, applies `plan`, and wraps it.
    pub fn with_faults(
        mesh_cfg: MeshConfig,
        plan: &FaultPlan,
        cfg: RetryConfig,
    ) -> Result<Self, NocError> {
        Self::with_faults_shared(mesh_cfg, std::sync::Arc::new(plan.clone()), cfg)
    }

    /// Like [`ReliableMesh::with_faults`] but sharing the plan behind an
    /// `Arc` — parallel campaign rows stop deep-cloning the plan per mesh.
    pub fn with_faults_shared(
        mesh_cfg: MeshConfig,
        plan: std::sync::Arc<FaultPlan>,
        cfg: RetryConfig,
    ) -> Result<Self, NocError> {
        let mut mesh = Mesh::try_new(mesh_cfg)?;
        mesh.apply_fault_plan_shared(plan)?;
        Ok(Self::new(mesh, cfg))
    }

    /// The wrapped mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Mutable access to the wrapped mesh (telemetry attachment etc.).
    pub fn mesh_mut(&mut self) -> &mut Mesh {
        &mut self.mesh
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ReliabilityStats {
        &self.stats
    }

    /// Whether the watchdog has ever tripped.
    pub fn watchdog_tripped(&self) -> bool {
        self.tripped
    }

    /// Unresolved transfers.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Submits a transfer for reliable delivery; it will be injected as soon
    /// as the source buffer has space.
    pub fn submit(
        &mut self,
        src: NodeId,
        dst: NodeId,
        flits: u32,
        class: PacketClass,
    ) -> TransferId {
        if let Some(tap) = self.trace_tap.as_deref_mut() {
            tap.record(&TapEvent {
                cycle: self.mesh.cycle(),
                src_dev: 0,
                src: src.index() as u32,
                dst_dev: 0,
                dst: dst.index() as u32,
                flits,
                class: class.trace_code(),
            });
        }
        let id = TransferId(self.transfers.len());
        self.transfers.push(Transfer {
            src,
            dst,
            flits,
            class,
            first_submit: self.mesh.cycle(),
            attempts: 0,
            deadline: u64::MAX,
            state: TransferOutcome::Pending,
        });
        self.pending.push_back(id.0);
        self.stats.submitted += 1;
        self.outstanding += 1;
        id
    }

    /// [`ReliableMesh::submit`] with the endpoints range-checked first — the
    /// entry point for fuzzed traffic, where an out-of-range node must be a
    /// typed error rather than a downstream panic.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::NodeOutOfRange`] when `src` or `dst` is not a
    /// terminal of the wrapped mesh.
    pub fn submit_checked(
        &mut self,
        src: NodeId,
        dst: NodeId,
        flits: u32,
        class: PacketClass,
    ) -> Result<TransferId, NocError> {
        let num_nodes = self.mesh.config().num_nodes() as u32;
        for node in [src, dst] {
            if node.index() as u32 >= num_nodes {
                return Err(NocError::NodeOutOfRange {
                    node: node.index() as u32,
                    num_nodes,
                });
            }
        }
        Ok(self.submit(src, dst, flits, class))
    }

    /// Attaches a workload record tap: every subsequent [`ReliableMesh::
    /// submit`] is appended to the trace. The tap observes but cannot
    /// influence the simulation (its I/O errors are stashed sticky), so a
    /// recorded run is byte-identical to an untapped one.
    pub fn attach_trace_tap(&mut self, tap: TraceTap) {
        self.trace_tap = Some(Box::new(tap));
    }

    /// The attached record tap, if any.
    pub fn trace_tap(&self) -> Option<&TraceTap> {
        self.trace_tap.as_deref()
    }

    /// Detaches and returns the record tap for finalization.
    pub fn take_trace_tap(&mut self) -> Option<TraceTap> {
        self.trace_tap.take().map(|b| *b)
    }

    /// Replays a recorded submission stream into this mesh: every event is
    /// re-submitted in order (stepping the simulation up to the event's
    /// recorded cycle first), reproducing the recorded run bit for bit when
    /// the mesh was built from the trace header's configuration and plan.
    ///
    /// A truncated trace replays its complete prefix and reports the
    /// truncation point in [`ReplayOutcome::truncated`]; the caller decides
    /// whether that is a warning or an error.
    ///
    /// # Errors
    ///
    /// [`ReplayError::Trace`] on a corrupt or unreadable stream;
    /// [`ReplayError::Event`] when a CRC-valid event does not fit this mesh
    /// (non-zero device, node out of range) — never a panic.
    pub fn replay_from<R: std::io::Read>(
        &mut self,
        reader: &mut TraceReader<R>,
    ) -> Result<ReplayOutcome, ReplayError> {
        let mut replayed = 0u64;
        loop {
            match reader.next_event() {
                Ok(Some(ev)) => {
                    if ev.src_dev != 0 || ev.dst_dev != 0 {
                        return Err(ReplayError::Event {
                            index: replayed,
                            reason: format!(
                                "mesh replay saw device ({}, {}) — a fabric trace?",
                                ev.src_dev, ev.dst_dev
                            ),
                        });
                    }
                    while self.mesh.cycle() < ev.cycle {
                        self.step();
                    }
                    let class = PacketClass::from_trace_code(ev.class).ok_or_else(|| {
                        ReplayError::Event {
                            index: replayed,
                            reason: format!("unknown packet class {}", ev.class),
                        }
                    })?;
                    self.submit_checked(NodeId::new(ev.src), NodeId::new(ev.dst), ev.flits, class)
                        .map_err(|e| ReplayError::Event {
                            index: replayed,
                            reason: e.to_string(),
                        })?;
                    replayed += 1;
                }
                Ok(None) => {
                    return Ok(ReplayOutcome {
                        replayed,
                        truncated: None,
                    })
                }
                Err(TraceError::TruncatedTail { chunk, offset }) => {
                    return Ok(ReplayOutcome {
                        replayed,
                        truncated: Some((chunk, offset)),
                    })
                }
                Err(e) => return Err(ReplayError::Trace(e)),
            }
        }
    }

    /// Current state of a transfer.
    pub fn outcome(&self, id: TransferId) -> TransferOutcome {
        self.transfers[id.0].state
    }

    /// All transfer outcomes in submission order.
    pub fn outcomes(&self) -> Vec<TransferOutcome> {
        self.transfers.iter().map(|t| t.state).collect()
    }

    fn timeout_for(&self, attempts: u32) -> u64 {
        let exp = attempts.saturating_sub(1).min(20);
        self.cfg
            .base_timeout_cycles
            .saturating_mul(1u64 << exp)
            .min(self.cfg.max_timeout_cycles)
    }

    fn inject_pending(&mut self) {
        let mut still = VecDeque::new();
        while let Some(idx) = self.pending.pop_front() {
            // A queued transfer may have been resolved (late duplicate
            // delivery) or re-queued twice; only genuinely pending ones go.
            if self.transfers[idx].state != TransferOutcome::Pending {
                continue;
            }
            let t = &self.transfers[idx];
            match self
                .mesh
                .try_inject_tracked(t.src, t.dst, t.flits, t.class, t.first_submit)
            {
                Some(pid) => {
                    self.by_packet.insert(pid, idx);
                    let deadline = self.mesh.cycle() + self.timeout_for(t.attempts + 1);
                    let t = &mut self.transfers[idx];
                    t.attempts += 1;
                    t.deadline = deadline;
                    t.state = TransferOutcome::InFlight;
                    if deadline < self.next_deadline {
                        self.next_deadline = deadline;
                    }
                }
                None => still.push_back(idx),
            }
        }
        self.pending = still;
    }

    /// Requeues transfer `idx` for another attempt, or resolves it lost when
    /// the retry budget is spent.
    fn retry_or_give_up(&mut self, idx: usize, now: u64) {
        let max_retries = self.cfg.max_retries;
        let t = &mut self.transfers[idx];
        if t.attempts <= max_retries {
            t.state = TransferOutcome::Pending;
            self.stats.retries += 1;
            let attempts = t.attempts;
            self.pending.push_back(idx);
            if let Some(rec) = self.mesh.flight_recorder_mut() {
                rec.note(
                    TraceEvent::new(now, SUBSYSTEM_NOC, "retry")
                        .with("transfer", idx)
                        .with("attempts", attempts),
                );
            }
        } else {
            t.state = TransferOutcome::Lost {
                reason: LossReason::RetriesExhausted,
            };
            self.stats.lost_retries_exhausted += 1;
            self.outstanding -= 1;
            self.last_activity = now;
        }
    }

    /// Advances the wrapped mesh one cycle and runs the protocol reactions.
    pub fn step(&mut self) {
        self.inject_pending();
        self.mesh.step();
        // Events drained below happened during the step, i.e. at cycle-1.
        let now = self.mesh.cycle().saturating_sub(1);

        for pkt in self.mesh.drain_ejected() {
            let corrupt = self.mesh.take_corrupted(pkt.id);
            let Some(idx) = self.by_packet.remove(&pkt.id) else {
                continue; // direct mesh traffic, not ours
            };
            if self.transfers[idx].state.is_resolved() {
                self.stats.duplicates_suppressed += 1;
                continue;
            }
            if corrupt {
                // The ejection-side CRC caught it: NACK and retransmit. A
                // transfer already back in the pending queue (timed out
                // while this copy was flying) needs no extra attempt.
                self.last_activity = now;
                if let Some(rec) = self.mesh.flight_recorder_mut() {
                    rec.note(TraceEvent::new(now, SUBSYSTEM_NOC, "nack").with("packet", pkt.id));
                }
                if self.transfers[idx].state == TransferOutcome::InFlight {
                    self.stats.corrupt_retries += 1;
                    self.retry_or_give_up(idx, now);
                }
                continue;
            }
            let t = &mut self.transfers[idx];
            let latency = now.saturating_sub(t.first_submit);
            t.state = TransferOutcome::Delivered { latency };
            self.stats.delivered += 1;
            self.stats.record_latency(latency);
            self.outstanding -= 1;
            self.last_activity = now;
        }

        for (pkt, reason) in self.mesh.drain_lost() {
            let Some(idx) = self.by_packet.remove(&pkt.id) else {
                continue;
            };
            if self.transfers[idx].state.is_resolved() {
                continue;
            }
            if reason == LossReason::Unroutable {
                self.last_activity = now;
                let (src, dst) = (self.transfers[idx].src, self.transfers[idx].dst);
                if self.mesh.routable(src, dst) {
                    // Only the in-flight copy was doomed — a link onset left
                    // it in a state the up*/down* discipline cannot route
                    // from. A fresh injection still has a legal path.
                    self.retry_or_give_up(idx, now);
                } else {
                    // No surviving path from the source — retrying cannot
                    // help.
                    self.transfers[idx].state = TransferOutcome::Lost { reason };
                    self.stats.lost_unroutable += 1;
                    self.outstanding -= 1;
                }
            }
            // Silent drops (flaky / transient): the sender has no way to
            // know yet; the ACK timeout below discovers and retransmits.
        }

        self.check_timeouts(now);
        self.check_watchdog(now);
    }

    fn check_timeouts(&mut self, now: u64) {
        if now < self.next_deadline {
            return;
        }
        let mut next = u64::MAX;
        for idx in 0..self.transfers.len() {
            let t = &self.transfers[idx];
            if t.state != TransferOutcome::InFlight {
                continue;
            }
            if t.deadline <= now {
                self.retry_or_give_up(idx, now);
            } else if t.deadline < next {
                next = t.deadline;
            }
        }
        self.next_deadline = next;
    }

    fn check_watchdog(&mut self, now: u64) {
        if self.outstanding == 0
            || now.saturating_sub(self.last_activity) <= self.cfg.watchdog_cycles
        {
            return;
        }
        // The network has made no protocol progress for a full watchdog
        // window: declare it stuck and report, rather than spinning forever.
        self.stats.watchdog_trips += 1;
        self.tripped = true;
        let mut written_off = 0u64;
        for t in &mut self.transfers {
            if !t.state.is_resolved() {
                t.state = TransferOutcome::Lost {
                    reason: LossReason::Watchdog,
                };
                written_off += 1;
            }
        }
        self.stats.lost_watchdog += written_off;
        self.pending.clear();
        self.outstanding = 0;
        self.last_activity = now;
        self.mesh.telemetry().emit_with(|| {
            TraceEvent::new(now, SUBSYSTEM_NOC, "watchdog_trip").with("written_off", written_off)
        });
        if let Some(rec) = self.mesh.flight_recorder_mut() {
            rec.note(
                TraceEvent::new(now, SUBSYSTEM_NOC, "watchdog_trip")
                    .with("written_off", written_off),
            );
        }
    }

    /// The earliest future cycle at which the protocol — not just the mesh —
    /// could act: the mesh's own quiet bound capped by the next ACK-timeout
    /// deadline and the watchdog boundary. While the mesh is quiet and
    /// nothing is pending injection, every protocol step strictly before
    /// this bound is a no-op (no ejections, no losses, `check_timeouts`
    /// and `check_watchdog` both return early). Composite simulations (the
    /// fabric) fold this into a global wake bound before skipping all their
    /// dies in lockstep.
    pub fn quiet_bound(&self) -> u64 {
        let now = self.mesh.cycle();
        if !self.pending.is_empty() {
            return now; // a retry wants injecting this very cycle
        }
        let mut bound = self.mesh.quiet_until().min(self.next_deadline);
        if self.outstanding > 0 {
            // First cycle where `now - last_activity > watchdog_cycles`.
            bound = bound.min(
                self.last_activity
                    .saturating_add(self.cfg.watchdog_cycles)
                    .saturating_add(1),
            );
        }
        bound
    }

    /// Fast-forwards across a protocol-quiet span, to at most `limit`.
    /// Composite layers (self-healing, fabric) call this with their own
    /// wake bounds folded into `limit`. No-op under the cycle-exact engine
    /// or whenever the last step was not provably quiet.
    pub fn skip_quiet(&mut self, limit: u64) {
        self.mesh.skip_idle_to(self.quiet_bound().min(limit));
    }

    /// Steps until every submitted transfer resolves or `max_cycles` elapse.
    /// Returns `true` when fully quiescent. The watchdog guarantees eventual
    /// resolution even on a deadlocked mesh, so `false` means `max_cycles`
    /// was smaller than the watchdog window.
    ///
    /// Runs on the event-driven engine: idle spans (ACK-timeout waits,
    /// watchdog countdowns) are skipped, bit-identically to
    /// [`ReliableMesh::run_until_quiescent_cycle_exact`].
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> bool {
        let start = self.mesh.cycle();
        let end = start.saturating_add(max_cycles);
        while self.outstanding > 0 && self.mesh.cycle() < end {
            self.step();
            if self.outstanding > 0 {
                self.skip_quiet(end);
            }
        }
        self.outstanding == 0
    }

    /// The cycle-exact reference for [`ReliableMesh::run_until_quiescent`]:
    /// identical observables, every cycle stepped. Kept for differential
    /// testing and benchmarking.
    pub fn run_until_quiescent_cycle_exact(&mut self, max_cycles: u64) -> bool {
        let start = self.mesh.cycle();
        let end = start.saturating_add(max_cycles);
        while self.outstanding > 0 && self.mesh.cycle() < end {
            self.step();
        }
        self.outstanding == 0
    }

    /// Exports mesh metrics plus the retry protocol's own counters.
    pub fn export_metrics(&self, registry: &mut MetricRegistry) {
        self.mesh.export_metrics(registry);
        registry.counter_add("noc.retry.submitted", self.stats.submitted);
        registry.counter_add("noc.retry.delivered", self.stats.delivered);
        registry.counter_add("noc.retry.retries", self.stats.retries);
        registry.counter_add(
            "noc.retry.duplicates_suppressed",
            self.stats.duplicates_suppressed,
        );
        registry.counter_add("noc.retry.corrupt_retries", self.stats.corrupt_retries);
        registry.counter_add("noc.retry.lost.unroutable", self.stats.lost_unroutable);
        registry.counter_add(
            "noc.retry.lost.retries_exhausted",
            self.stats.lost_retries_exhausted,
        );
        registry.counter_add("noc.retry.lost.watchdog", self.stats.lost_watchdog);
        registry.counter_add("noc.retry.watchdog_trips", self.stats.watchdog_trips);
        registry.gauge_set("noc.retry.latency.mean", self.stats.mean_latency());
        registry.gauge_set("noc.retry.latency.p99", self.stats.latency_quantile(0.99));
        registry.gauge_set("noc.retry.latency.max", self.stats.latency_max as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterKind;
    use crate::mesh::RouteOrder;
    use gnoc_faults::{Direction, LinkFault, LinkFaultKind, TransientFaults};

    fn mesh_cfg() -> MeshConfig {
        MeshConfig {
            width: 3,
            height: 3,
            buffer_packets: 4,
            arbiter: ArbiterKind::RoundRobin,
            route_order: RouteOrder::Xy,
            vcs: 1,
        }
    }

    fn dead_both_ways(router: u32, dir: Direction, width: u32, height: u32) -> [LinkFault; 2] {
        let nb = dir.neighbour(router, width, height).expect("in range");
        [
            LinkFault {
                router,
                dir,
                kind: LinkFaultKind::Dead,
                onset: 0,
            },
            LinkFault {
                router: nb,
                dir: dir.opposite(),
                kind: LinkFaultKind::Dead,
                onset: 0,
            },
        ]
    }

    #[test]
    fn healthy_mesh_delivers_everything_without_retries() {
        let mut rm = ReliableMesh::new(Mesh::new(mesh_cfg()), RetryConfig::default());
        let mut ids = Vec::new();
        for src in 0..9u32 {
            ids.push(rm.submit(
                NodeId::new(src),
                NodeId::new(8 - src),
                1,
                PacketClass::Request,
            ));
        }
        assert!(rm.run_until_quiescent(10_000));
        for id in ids {
            assert!(matches!(rm.outcome(id), TransferOutcome::Delivered { .. }));
        }
        assert_eq!(rm.stats().delivered, 9);
        assert_eq!(rm.stats().retries, 0);
        assert_eq!(rm.stats().lost_total(), 0);
        assert!(!rm.watchdog_tripped());
    }

    #[test]
    fn dead_link_traffic_reroutes_and_delivers() {
        // Kill the 0↔1 edge; XY routing for 0→2 would use it, so delivery
        // proves the BFS reroute worked.
        let mut plan = FaultPlan::none();
        plan.links = dead_both_ways(0, Direction::East, 3, 3).to_vec();
        let mut rm = ReliableMesh::with_faults(mesh_cfg(), &plan, RetryConfig::default()).unwrap();
        let id = rm.submit(NodeId::new(0), NodeId::new(2), 1, PacketClass::Request);
        assert!(rm.run_until_quiescent(10_000));
        assert!(matches!(rm.outcome(id), TransferOutcome::Delivered { .. }));
        assert!(rm.mesh().stats().reroutes >= 1);
        assert_eq!(rm.stats().lost_total(), 0);
    }

    #[test]
    fn always_dropping_link_exhausts_retries() {
        // A fully flaky link on the only XY path: every attempt dies, the
        // retry budget drains, and the transfer resolves as lost — not hung.
        let mut plan = FaultPlan::none();
        plan.seed = 7;
        plan.links = vec![LinkFault {
            router: 0,
            dir: Direction::East,
            kind: LinkFaultKind::Flaky { drop_prob: 1.0 },
            onset: 0,
        }];
        let cfg = RetryConfig {
            base_timeout_cycles: 16,
            max_timeout_cycles: 64,
            ..RetryConfig::default()
        };
        let mut rm = ReliableMesh::with_faults(mesh_cfg(), &plan, cfg).unwrap();
        let id = rm.submit(NodeId::new(0), NodeId::new(2), 1, PacketClass::Request);
        assert!(rm.run_until_quiescent(100_000));
        assert_eq!(
            rm.outcome(id),
            TransferOutcome::Lost {
                reason: LossReason::RetriesExhausted
            }
        );
        assert_eq!(rm.stats().retries, u64::from(cfg.max_retries));
        assert_eq!(
            rm.mesh().stats().dropped_flaky,
            u64::from(cfg.max_retries) + 1
        );
    }

    #[test]
    fn watchdog_reports_stuck_traffic_instead_of_hanging() {
        let mut rm = ReliableMesh::new(
            Mesh::new(mesh_cfg()),
            RetryConfig {
                max_retries: u32::MAX, // never give up via retries
                base_timeout_cycles: 8,
                max_timeout_cycles: 8,
                watchdog_cycles: 400,
            },
        );
        // A destination that never ejects models a hung endpoint.
        rm.mesh_mut().set_ejection_enabled(NodeId::new(2), false);
        let id = rm.submit(NodeId::new(0), NodeId::new(2), 1, PacketClass::Request);
        assert!(
            rm.run_until_quiescent(50_000),
            "watchdog must unstick the run"
        );
        assert_eq!(
            rm.outcome(id),
            TransferOutcome::Lost {
                reason: LossReason::Watchdog
            }
        );
        assert!(rm.watchdog_tripped());
        assert_eq!(rm.stats().watchdog_trips, 1);
        assert_eq!(rm.stats().lost_watchdog, 1);
    }

    #[test]
    fn corruption_is_nacked_and_retried_to_success() {
        let mut plan = FaultPlan::none();
        plan.seed = 21;
        plan.transient = TransientFaults {
            drop_prob: 0.0,
            corrupt_prob: 0.4,
            onset: 0,
        };
        let mut rm = ReliableMesh::with_faults(
            mesh_cfg(),
            &plan,
            RetryConfig {
                max_retries: 32,
                ..RetryConfig::default()
            },
        )
        .unwrap();
        let mut ids = Vec::new();
        for src in 0..9u32 {
            ids.push(rm.submit(NodeId::new(src), NodeId::new(4), 1, PacketClass::Request));
        }
        assert!(rm.run_until_quiescent(200_000));
        for id in ids {
            assert!(matches!(rm.outcome(id), TransferOutcome::Delivered { .. }));
        }
        assert_eq!(rm.stats().delivered, 9);
        assert!(rm.stats().corrupt_retries > 0, "0.4 corruption over 9 hops");
        assert_eq!(rm.stats().corrupt_retries, rm.stats().retries);
    }

    #[test]
    fn aggressive_timeouts_duplicate_but_deliver_exactly_once() {
        // Timeouts far below the congested round trip force retransmissions
        // of packets that are still alive; duplicate suppression must keep
        // the delivered count exact.
        let cfg = RetryConfig {
            max_retries: 8,
            base_timeout_cycles: 2,
            max_timeout_cycles: 4,
            ..RetryConfig::default()
        };
        let mut rm = ReliableMesh::new(Mesh::new(mesh_cfg()), cfg);
        let n = 20u32;
        for i in 0..n {
            rm.submit(
                NodeId::new(i % 9),
                NodeId::new((i * 5 + 3) % 9),
                2,
                PacketClass::Request,
            );
        }
        assert!(rm.run_until_quiescent(100_000));
        let s = rm.stats();
        assert_eq!(s.delivered + s.lost_total(), u64::from(n));
        assert!(s.duplicates_suppressed > 0, "tiny timeouts must duplicate");
        // Exactly-once: every transfer resolved exactly one way, and the
        // mesh delivered at least one packet per delivered transfer.
        assert!(rm.mesh().stats().delivered_total >= s.delivered);
    }

    #[test]
    fn same_plan_and_seed_is_bit_identical() {
        let mut plan = FaultPlan::none();
        plan.seed = 99;
        plan.links = vec![LinkFault {
            router: 3,
            dir: Direction::East,
            kind: LinkFaultKind::Flaky { drop_prob: 0.3 },
            onset: 10,
        }];
        plan.transient = TransientFaults {
            drop_prob: 0.01,
            corrupt_prob: 0.01,
            onset: 0,
        };
        let run = |plan: &FaultPlan| {
            let mut rm =
                ReliableMesh::with_faults(mesh_cfg(), plan, RetryConfig::default()).unwrap();
            for i in 0..30u32 {
                rm.submit(
                    NodeId::new(i % 9),
                    NodeId::new((i * 7 + 1) % 9),
                    1,
                    PacketClass::Request,
                );
            }
            rm.run_until_quiescent(100_000);
            (rm.stats().clone(), rm.outcomes())
        };
        assert_eq!(run(&plan), run(&plan));
    }
}
