//! Load–latency characterisation of the simulated networks.
//!
//! The classic interconnect evaluation: sweep the offered load and record
//! accepted throughput and mean packet latency. Used to compare the paper's
//! mesh baseline against the hierarchical crossbar GPUs actually use, and to
//! locate each network's saturation point.

use crate::hier::{HierConfig, HierCrossbar};
use crate::mesh::{Mesh, MeshConfig};
use crate::packet::{NodeId, PacketClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One point of a load sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Offered load, packets/cycle/terminal.
    pub offered: f64,
    /// Accepted throughput, packets/cycle across all terminals.
    pub accepted: f64,
    /// Mean packet latency in cycles (generation to ejection).
    pub mean_latency: f64,
    /// 99th-percentile packet latency in cycles.
    pub p99_latency: f64,
}

/// Sweep parameters shared by both network kinds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Warm-up cycles per point.
    pub warmup: u64,
    /// Measured cycles per point.
    pub measure: u64,
    /// Packet length in flits.
    pub flits: u32,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            warmup: 1_000,
            measure: 6_000,
            flits: 1,
        }
    }
}

/// Sweeps offered load on the Fig. 23 mesh (bottom row = MCs, all other
/// nodes inject uniform-random traffic towards the MCs).
pub fn mesh_load_curve(
    mesh_cfg: MeshConfig,
    sweep: SweepConfig,
    rates: &[f64],
    seed: u64,
) -> Vec<LoadPoint> {
    rates
        .iter()
        .map(|&rate| {
            let mut mesh = Mesh::new(mesh_cfg);
            let mut rng = StdRng::seed_from_u64(seed);
            let width = mesh_cfg.width;
            let n = mesh_cfg.num_nodes();
            let compute: Vec<NodeId> = (width as u32..n as u32).map(NodeId::new).collect();
            let mut backlog: Vec<std::collections::VecDeque<(u64, NodeId)>> =
                vec![std::collections::VecDeque::new(); n];
            let total = sweep.warmup + sweep.measure;
            for cycle in 0..total {
                if cycle == sweep.warmup {
                    mesh.reset_stats();
                }
                for &src in &compute {
                    if rng.gen::<f64>() < rate {
                        let dst = NodeId::new(rng.gen_range(0..width) as u32);
                        backlog[src.index()].push_back((cycle, dst));
                    }
                    if let Some(&(birth, dst)) = backlog[src.index()].front() {
                        if mesh.try_inject_with_birth(
                            src,
                            dst,
                            sweep.flits,
                            PacketClass::Request,
                            birth,
                        ) {
                            backlog[src.index()].pop_front();
                        }
                    }
                }
                mesh.step();
                mesh.drain_ejected();
            }
            LoadPoint {
                offered: rate,
                accepted: mesh.stats().delivered_total as f64 / sweep.measure as f64,
                mean_latency: mesh.stats().mean_latency(),
                p99_latency: mesh.stats().latency_quantile(0.99),
            }
        })
        .collect()
}

/// Sweeps offered load on a hierarchical crossbar with uniform-random
/// output destinations.
pub fn hier_load_curve(
    cfg: HierConfig,
    sweep: SweepConfig,
    rates: &[f64],
    seed: u64,
) -> Vec<LoadPoint> {
    rates
        .iter()
        .map(|&rate| {
            let mut net = HierCrossbar::new(cfg);
            let mut rng = StdRng::seed_from_u64(seed);
            let n = cfg.num_terminals();
            let mut backlog: Vec<std::collections::VecDeque<(u64, NodeId)>> =
                vec![std::collections::VecDeque::new(); n];
            let total = sweep.warmup + sweep.measure;
            for cycle in 0..total {
                if cycle == sweep.warmup {
                    net.reset_stats();
                }
                for (t, queue) in backlog.iter_mut().enumerate() {
                    if rng.gen::<f64>() < rate {
                        let dst = NodeId::new(rng.gen_range(0..cfg.outputs) as u32);
                        queue.push_back((cycle, dst));
                    }
                    if let Some(&(birth, dst)) = queue.front() {
                        if net.try_inject_with_birth(
                            NodeId::new(t as u32),
                            dst,
                            sweep.flits,
                            PacketClass::Request,
                            birth,
                        ) {
                            queue.pop_front();
                        }
                    }
                }
                net.step();
                net.drain_ejected();
            }
            LoadPoint {
                offered: rate,
                accepted: net.stats().delivered_total as f64 / sweep.measure as f64,
                mean_latency: net.stats().mean_latency(),
                // The crossbar stats do not histogram latencies; reuse mean.
                p99_latency: net.stats().mean_latency(),
            }
        })
        .collect()
}

/// The saturation throughput of a curve: the highest accepted rate seen.
pub fn saturation_throughput(curve: &[LoadPoint]) -> f64 {
    curve.iter().map(|p| p.accepted).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterKind;

    fn rates() -> Vec<f64> {
        vec![0.02, 0.05, 0.1, 0.15, 0.2, 0.3]
    }

    #[test]
    fn mesh_latency_rises_with_load() {
        let curve = mesh_load_curve(
            MeshConfig::paper_6x6(ArbiterKind::RoundRobin),
            SweepConfig::default(),
            &rates(),
            1,
        );
        assert!(curve[0].mean_latency < curve.last().unwrap().mean_latency);
        // Accepted tracks offered in the linear region.
        assert!((curve[0].accepted - 30.0 * 0.02).abs() < 0.1);
        // Tail latency dominates the mean and grows with load too.
        for p in &curve {
            assert!(p.p99_latency >= p.mean_latency * 0.9, "{p:?}");
        }
        assert!(curve[0].p99_latency < curve.last().unwrap().p99_latency);
    }

    #[test]
    fn hier_crossbar_has_lower_unloaded_latency_than_mesh() {
        let sweep = SweepConfig::default();
        let light = [0.02];
        let mesh = mesh_load_curve(
            MeshConfig::paper_6x6(ArbiterKind::RoundRobin),
            sweep,
            &light,
            2,
        );
        let hier = hier_load_curve(HierConfig::gpu_like(), sweep, &light, 2);
        assert!(
            hier[0].mean_latency < mesh[0].mean_latency,
            "hier {} vs mesh {}",
            hier[0].mean_latency,
            mesh[0].mean_latency
        );
    }

    #[test]
    fn both_networks_saturate_near_output_capacity() {
        let sweep = SweepConfig::default();
        let heavy = [0.1, 0.2, 0.4];
        let mesh = mesh_load_curve(
            MeshConfig::paper_6x6(ArbiterKind::RoundRobin),
            sweep,
            &heavy,
            3,
        );
        let hier = hier_load_curve(HierConfig::gpu_like(), sweep, &heavy, 3);
        // 6 single-flit outputs → ≤ 6 packets/cycle.
        assert!(saturation_throughput(&mesh) <= 6.0 + 1e-9);
        assert!(saturation_throughput(&hier) <= 6.0 + 1e-9);
        assert!(saturation_throughput(&hier) > 5.4);
        assert!(saturation_throughput(&mesh) > 4.5);
    }

    #[test]
    fn accepted_never_exceeds_offered() {
        let sweep = SweepConfig::default();
        let curve = hier_load_curve(HierConfig::gpu_like(), sweep, &rates(), 4);
        for p in curve {
            assert!(p.accepted <= 30.0 * p.offered + 0.2, "{p:?}");
        }
    }
}
