//! Cycle-level 2D-mesh network with dimension-ordered routing and wormhole
//! link serialisation.
//!
//! This is the "network-only simulation" substrate of the paper's Fig. 21 and
//! Fig. 23 experiments (the paper uses Booksim; we rebuild the needed subset):
//! input-buffered routers, XY routing, per-output arbitration (round-robin or
//! age-based), credit-style buffer back-pressure, and per-node throughput and
//! latency statistics.

use crate::arbiter::{Arbiter, ArbiterKind};
use crate::error::{LossReason, NocError};
use crate::packet::{NodeId, Packet, PacketClass};
use gnoc_faults::{Direction, FaultPlan, FaultPlanError, LinkFaultKind};
use gnoc_telemetry::{
    FlightRecorder, MetricRegistry, StallKind, TelemetryHandle, TraceEvent, SUBSYSTEM_NOC,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Router port indices.
const LOCAL: usize = 0;
const NORTH: usize = 1;
const EAST: usize = 2;
const SOUTH: usize = 3;
const WEST: usize = 4;
/// Ports per router: local + the four [`Direction`]s. Per-link statistics
/// vectors such as [`MeshStats::link_drops`] are indexed
/// `router * NUM_PORTS + port`.
pub const NUM_PORTS: usize = 5;

/// Dimension order used by deterministic routing.
///
/// Request and reply networks conventionally use opposite orders so that
/// reply traffic leaving the few memory controllers does not all funnel
/// through the MC row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteOrder {
    /// Route X (columns) first, then Y.
    Xy,
    /// Route Y (rows) first, then X.
    Yx,
}

/// Configuration of a [`Mesh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Mesh width (columns).
    pub width: usize,
    /// Mesh height (rows).
    pub height: usize,
    /// Packets each input buffer (per virtual channel) can hold.
    pub buffer_packets: usize,
    /// Output arbitration policy.
    pub arbiter: ArbiterKind,
    /// Dimension order for routing.
    pub route_order: RouteOrder,
    /// Number of virtual channels per input port. With 2+, request packets
    /// ride VC 0 and replies the last VC, so both classes can share one
    /// physical network without protocol deadlock.
    pub vcs: usize,
}

impl MeshConfig {
    /// The paper's Fig. 23 setup: a 6×6 mesh with modest buffering.
    pub fn paper_6x6(arbiter: ArbiterKind) -> Self {
        Self {
            width: 6,
            height: 6,
            buffer_packets: 4,
            arbiter,
            route_order: RouteOrder::Xy,
            vcs: 1,
        }
    }

    /// The same geometry with `vcs` virtual channels per port.
    pub fn with_vcs(self, vcs: usize) -> Self {
        Self { vcs, ..self }
    }

    /// Number of terminals.
    pub fn num_nodes(&self) -> usize {
        self.width * self.height
    }

    /// Validates the configuration, naming the offending field — the typed
    /// twin of the construction-time panics, for callers (like the chaos
    /// harness) that build meshes from fuzzed input.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] on the first unusable field.
    pub fn validate(&self) -> Result<(), NocError> {
        if self.width == 0 || self.height == 0 {
            return Err(NocError::Config("mesh must be non-empty"));
        }
        if self.buffer_packets == 0 {
            return Err(NocError::Config("buffers must hold at least 1 packet"));
        }
        if self.vcs == 0 {
            return Err(NocError::Config("need at least one virtual channel"));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Router {
    /// Input buffers indexed `[port][vc]`.
    inputs: Vec<Vec<VecDeque<Packet>>>,
    arbiters: Vec<Arbiter>,
    output_busy_until: Vec<u64>,
}

/// The mesh output port a fault-plan [`Direction`] maps to.
fn port_of(dir: Direction) -> usize {
    match dir {
        Direction::North => NORTH,
        Direction::East => EAST,
        Direction::South => SOUTH,
        Direction::West => WEST,
    }
}

/// The fault-plan [`Direction`] a non-local output port maps to.
fn dir_of(port: usize) -> Direction {
    match port {
        NORTH => Direction::North,
        EAST => Direction::East,
        SOUTH => Direction::South,
        WEST => Direction::West,
        _ => unreachable!("the local port has no direction"),
    }
}

/// Sentinel in the reroute tables for "no surviving path".
const UNREACHABLE: u8 = u8::MAX;

/// Process-wide engine selector. When enabled (the default),
/// [`Mesh::skip_idle_to`] may fast-forward across spans it has proven inert;
/// when disabled every skip call is a no-op and `run`/`run_until_quiescent`
/// tick cycle by cycle — the reference engine the differential suite and the
/// ci.sh parity gates compare against. Initialised once from the
/// `GNOC_ENGINE` environment variable (`cycle` disables, anything else
/// enables) so whole-process runs can flip engines without threading a flag.
fn event_skip_cell() -> &'static AtomicBool {
    static CELL: OnceLock<AtomicBool> = OnceLock::new();
    CELL.get_or_init(|| {
        AtomicBool::new(!matches!(
            std::env::var("GNOC_ENGINE").as_deref(),
            Ok("cycle")
        ))
    })
}

/// Whether the event-driven engine (next-event skip) is enabled.
pub fn event_skip_enabled() -> bool {
    event_skip_cell().load(Ordering::Relaxed)
}

/// Enables or disables the event-driven engine process-wide. Both engines
/// are bit-identical on every observable (stats, ejections, traces, recorder
/// output); this knob exists for differential testing and benchmarking.
pub fn set_event_skip_enabled(on: bool) {
    event_skip_cell().store(on, Ordering::Relaxed)
}

/// Key of one interned up*/down* table set: the mesh geometry, the routing
/// discipline, and the exact dead-link bitset the tables were computed for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RouteKey {
    width: u32,
    height: u32,
    greedy: bool,
    dead: Vec<u64>,
}

/// One interned table set: `tables[node][dest] = output port`.
type SharedRouteTables = Arc<Vec<Vec<u8>>>;

/// Interned route tables, shared by every mesh in the process. Parallel
/// campaign rows and per-die fabric meshes hit identical dead sets, so the
/// tables are computed once and shared behind `Arc`s instead of being
/// recomputed (O(n² · ports) BFS) per row per onset.
fn route_cache() -> &'static Mutex<HashMap<RouteKey, SharedRouteTables>> {
    static CACHE: OnceLock<Mutex<HashMap<RouteKey, SharedRouteTables>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Cap on distinct interned table sets; the cache is cleared (not LRU'd)
/// beyond this, which only costs recomputation.
const ROUTE_CACHE_CAP: usize = 1024;

/// Runtime state of an applied [`FaultPlan`].
#[derive(Debug, Clone)]
struct FaultState {
    /// The applied plan, shared (not cloned) across parallel campaign rows.
    plan: Arc<FaultPlan>,
    /// `(onset, link index)` of dead links not yet activated, onset-sorted.
    pending_dead: Vec<(u64, usize)>,
    /// Cursor into `pending_dead`.
    next_dead: usize,
    /// Directed link liveness, indexed `router * NUM_PORTS + port`.
    link_dead: Vec<bool>,
    /// Links taken out of service by the health layer (same indexing). The
    /// routing function always avoids quarantined links; in self-healing
    /// mode they are the *only* links it avoids, because the plan's dead
    /// set is hidden from the router until a breaker opens.
    quarantined: Vec<bool>,
    /// Flaky links as `(onset, drop probability)`, same indexing.
    link_flaky: Vec<Option<(u64, f64)>>,
    /// Fault-aware up*/down* next-hop tables,
    /// `[dst][router * NUM_PORTS + entry port] -> port` ([`UNREACHABLE`] when
    /// no legal surviving path from that state). `None` until the first dead
    /// link activates: a healthy (or merely flaky/stalled) mesh keeps using
    /// dimension-ordered routing bit-identically to the fault-free build.
    /// Interned: meshes with the same geometry and dead set share one table.
    routes: Option<Arc<Vec<Vec<u8>>>>,
    /// Seeded RNG, present only when the plan has probabilistic faults so
    /// benign plans make zero draws.
    rng: Option<StdRng>,
}

/// Bucket width of the latency histogram, cycles.
const LAT_BUCKET: u64 = 4;
/// Number of latency histogram buckets (last bucket absorbs the tail).
const LAT_BUCKETS: usize = 512;
/// Cycles per link-demand window and between telemetry queue-depth samples.
const WINDOW_CYCLES: u64 = 64;

/// Per-simulation statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MeshStats {
    /// Packets delivered, indexed by *source* node.
    pub delivered_by_src: Vec<u64>,
    /// Packets injected, indexed by source node.
    pub injected_by_src: Vec<u64>,
    /// Sum of packet latencies (delivery cycle − birth), for mean latency.
    pub latency_sum: u64,
    /// Delivered packet count (all sources).
    pub delivered_total: u64,
    /// Latency histogram in [`LAT_BUCKET`]-cycle buckets (tail clamps into
    /// the final bucket), for percentile queries.
    pub latency_histogram: Vec<u64>,
    /// Flits forwarded per directed link, indexed `router * NUM_PORTS + port`
    /// (the `LOCAL` port counts ejections). Divide by elapsed cycles for link
    /// utilisation.
    pub link_flits: Vec<u64>,
    /// Peak flits forwarded by any single link within one
    /// [`WINDOW_CYCLES`]-cycle window — the burst-demand figure that sizes
    /// link bandwidth, as opposed to the long-run average.
    pub peak_window_flits: u64,
    /// Packets dropped by flaky links (fault injection only).
    pub dropped_flaky: u64,
    /// Packets dropped by the transient fault process.
    pub dropped_transient: u64,
    /// Packets corrupted in flight (detected at ejection by the reliable
    /// layer's CRC model).
    pub corrupted: u64,
    /// Packets dropped because no surviving route reaches their destination.
    pub dropped_unroutable: u64,
    /// Times the next-hop tables were recomputed after links died.
    pub reroutes: u64,
    /// Packets lost per directed link, indexed `router * NUM_PORTS + port`
    /// (dead-link, flaky, and transient drops are attributed to the link the
    /// packet was crossing). This is the per-link error counter a real
    /// router exports — the behavioral signal the health layer's breakers
    /// consume without ever reading the fault plan.
    pub link_drops: Vec<u64>,
}

impl MeshStats {
    /// Mean packet latency in cycles, or 0 with no deliveries.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered_total == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered_total as f64
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of packet latency, in cycles, resolved to
    /// histogram-bucket granularity. Returns 0 with no deliveries.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.delivered_total == 0 {
            return 0.0;
        }
        let target = (q * self.delivered_total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.latency_histogram.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as u64 * LAT_BUCKET) as f64 + LAT_BUCKET as f64 / 2.0;
            }
        }
        (LAT_BUCKETS as u64 * LAT_BUCKET) as f64
    }

    /// The directed link that forwarded the most flits, as
    /// `(router, port, flits)`. `None` before any traffic.
    pub fn busiest_link(&self) -> Option<(usize, usize, u64)> {
        let (idx, &flits) = self
            .link_flits
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))?;
        (flits > 0).then_some((idx / NUM_PORTS, idx % NUM_PORTS, flits))
    }

    fn record_latency(&mut self, latency: u64) {
        if self.latency_histogram.is_empty() {
            self.latency_histogram = vec![0; LAT_BUCKETS];
        }
        let bucket = ((latency / LAT_BUCKET) as usize).min(LAT_BUCKETS - 1);
        self.latency_histogram[bucket] += 1;
    }
}

/// Slot for the workload record tap. A tap has exactly one owner — it is a
/// streaming file handle — so cloning a mesh (golden twins, differential
/// oracles) detaches the tap in the clone rather than double-writing the
/// trace.
#[derive(Debug, Default)]
struct TapSlot(Option<Box<gnoc_trace::TraceTap>>);

impl Clone for TapSlot {
    fn clone(&self) -> Self {
        Self(None)
    }
}

/// A cycle-level 2D mesh.
#[derive(Debug, Clone)]
pub struct Mesh {
    cfg: MeshConfig,
    routers: Vec<Router>,
    cycle: u64,
    next_id: u64,
    ejection_enabled: Vec<bool>,
    ejected: Vec<Packet>,
    stats: MeshStats,
    /// Flits per link in the current [`WINDOW_CYCLES`] window (folded into
    /// `stats.peak_window_flits` at each window boundary).
    window_flits: Vec<u64>,
    telemetry: TelemetryHandle,
    /// Applied fault plan, boxed to keep the fault-free mesh lean.
    faults: Option<Box<FaultState>>,
    /// Packets lost to faults since the last [`Mesh::drain_lost`].
    lost: Vec<(Packet, LossReason)>,
    /// Ids of in-flight packets whose payload was corrupted.
    corrupted: HashSet<u64>,
    /// Last cycle on which any packet moved — drives the external watchdog.
    last_progress: u64,
    /// Packets currently buffered anywhere, kept incrementally so
    /// [`Mesh::in_flight`] — and the quiescence checks that poll it every
    /// cycle — are O(1) instead of walking every queue.
    occupancy: usize,
    /// Exclusive upper bound of the span the last [`Mesh::step`] proved
    /// inert: no packet can move, no loss can occur, and every waiting
    /// head's stall classification is constant until this cycle. `<= cycle`
    /// means "unknown / not quiet". Any external mutation (injection,
    /// quarantine, ejection toggling, …) resets it to `cycle`.
    quiet_until: u64,
    /// Causal per-message flight recorder (`gnoc profile`), boxed and absent
    /// by default so unprofiled runs pay one pointer of state and a handful
    /// of `is_some` branches per cycle.
    recorder: Option<Box<FlightRecorder>>,
    /// Workload record tap (`gnoc-trace`): observes every successful
    /// injection. Like the flight recorder it cannot influence the
    /// simulation, so tapped runs stay byte-identical to bare ones.
    trace_tap: TapSlot,
    /// Self-healing mode: fault onsets do *not* recompute the next-hop
    /// tables (the mesh is not told about its faults); packets routed into a
    /// dead link are dropped at the transmit side and counted per-link, so
    /// an external health layer can detect the link and quarantine it.
    self_heal: bool,
    /// Test hook: route greedily (no up*/down* discipline), re-introducing
    /// the historical deadlock bug for the chaos harness to catch.
    #[cfg(feature = "bug-hooks")]
    greedy_routing: bool,
}

impl Mesh {
    /// Builds an idle mesh.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the buffer size is zero; use
    /// [`Mesh::try_new`] for a typed error instead.
    pub fn new(cfg: MeshConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds an idle mesh, rejecting an unusable configuration with a typed
    /// error instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when a dimension, the buffer size, or
    /// the VC count is zero.
    pub fn try_new(cfg: MeshConfig) -> Result<Self, NocError> {
        cfg.validate()?;
        let n = cfg.num_nodes();
        let router = Router {
            inputs: vec![vec![VecDeque::new(); cfg.vcs]; NUM_PORTS],
            arbiters: (0..NUM_PORTS).map(|_| Arbiter::new(cfg.arbiter)).collect(),
            output_busy_until: vec![0; NUM_PORTS],
        };
        Ok(Self {
            cfg,
            routers: vec![router; n],
            cycle: 0,
            next_id: 0,
            ejection_enabled: vec![true; n],
            ejected: Vec::new(),
            stats: MeshStats {
                delivered_by_src: vec![0; n],
                injected_by_src: vec![0; n],
                link_flits: vec![0; n * NUM_PORTS],
                link_drops: vec![0; n * NUM_PORTS],
                ..MeshStats::default()
            },
            window_flits: vec![0; n * NUM_PORTS],
            telemetry: TelemetryHandle::disabled(),
            faults: None,
            lost: Vec::new(),
            corrupted: HashSet::new(),
            last_progress: 0,
            occupancy: 0,
            quiet_until: 0,
            recorder: None,
            trace_tap: TapSlot(None),
            self_heal: false,
            #[cfg(feature = "bug-hooks")]
            greedy_routing: false,
        })
    }

    /// **Test hook (feature `bug-hooks`).** Re-introduces the pre-up*/down*
    /// greedy reroute policy: fault-aware next-hop tables take arbitrary
    /// minimal detours with no turn discipline, which is exactly the routing
    /// that wormhole-deadlocked single-VC buffers before the discipline was
    /// added. Exists solely so the chaos harness can prove its deadlock
    /// oracle catches the bug. Call before the first cycle runs; tables
    /// computed afterwards (at fault onsets) use the buggy policy.
    #[cfg(feature = "bug-hooks")]
    pub fn enable_greedy_reroute_bug(&mut self) {
        self.greedy_routing = true;
        self.quiet_until = self.cycle;
    }

    /// Applies a fault plan to this mesh. Dead and flaky links, router
    /// stalls, and transient drop/corruption take effect at their configured
    /// onset cycles; dead links trigger fault-aware next-hop recomputation.
    ///
    /// Fails if the plan does not fit the mesh geometry, would disconnect
    /// it, or a plan was already applied.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), NocError> {
        self.apply_fault_plan_shared(Arc::new(plan.clone()))
    }

    /// Like [`Mesh::apply_fault_plan`], but shares the plan behind an `Arc`
    /// instead of deep-cloning it — parallel campaign rows apply one shared
    /// plan to every mesh they build.
    pub fn apply_fault_plan_shared(&mut self, plan: Arc<FaultPlan>) -> Result<(), NocError> {
        if self.faults.is_some() {
            return Err(NocError::PlanAlreadyApplied);
        }
        plan.validate_for_mesh(self.cfg.width as u32, self.cfg.height as u32)?;
        let links = self.cfg.num_nodes() * NUM_PORTS;
        let mut state = FaultState {
            rng: plan
                .has_probabilistic_faults()
                .then(|| StdRng::seed_from_u64(plan.seed)),
            plan,
            pending_dead: Vec::new(),
            next_dead: 0,
            link_dead: vec![false; links],
            quarantined: vec![false; links],
            link_flaky: vec![None; links],
            routes: None,
        };
        let plan = state.plan.clone();
        for lf in &plan.links {
            let link = lf.router as usize * NUM_PORTS + port_of(lf.dir);
            match lf.kind {
                LinkFaultKind::Dead => state.pending_dead.push((lf.onset, link)),
                LinkFaultKind::Flaky { drop_prob } => {
                    state.link_flaky[link] = Some((lf.onset, drop_prob));
                }
            }
        }
        state.pending_dead.sort_unstable();
        self.faults = Some(Box::new(state));
        self.quiet_until = self.cycle;
        // Activate any onset-0 faults before the first step.
        let mut faults = self.faults.take();
        if let Some(f) = faults.as_deref_mut() {
            self.process_fault_onsets(f);
        }
        self.faults = faults;
        Ok(())
    }

    /// The mesh's configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// The applied fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref().map(|f| f.plan.as_ref())
    }

    /// Whether a packet freshly injected at `src` can currently reach `dst`
    /// under the active routing function. Distinguishes a transfer whose
    /// destination is genuinely cut off (retrying cannot help) from one
    /// whose in-flight copy was merely caught in an illegal up*/down* state
    /// by a link's onset (a retransmission from the source still has a
    /// legal path).
    pub fn routable(&self, src: NodeId, dst: NodeId) -> bool {
        self.route_current(self.faults.as_deref(), src.index(), LOCAL, dst.index())
            .is_some()
    }

    /// Number of directed links currently dead.
    pub fn dead_links_active(&self) -> usize {
        self.faults
            .as_deref()
            .map_or(0, |f| f.link_dead.iter().filter(|d| **d).count())
    }

    /// Switches the mesh into self-healing mode: fault onsets stop
    /// recomputing the next-hop tables (the router is no longer told about
    /// its faults), and packets routed into a dead link die at the transmit
    /// side, charged to that link's [`MeshStats::link_drops`] counter. An
    /// external health layer is expected to watch those counters and call
    /// [`Mesh::quarantine_link`]. Set this *before* applying a fault plan so
    /// onset-0 faults are hidden too.
    pub fn set_self_healing(&mut self, on: bool) {
        self.self_heal = on;
        self.quiet_until = self.cycle;
    }

    /// Whether self-healing mode is on.
    pub fn self_healing(&self) -> bool {
        self.self_heal
    }

    /// The directed-link index of `(router, dir)`, validated against the
    /// mesh geometry.
    fn link_index(&self, router: u32, dir: Direction) -> Result<usize, NocError> {
        let (w, h) = (self.cfg.width as u32, self.cfg.height as u32);
        if router >= w * h {
            return Err(NocError::FaultPlan(FaultPlanError::RouterOutOfRange {
                router,
                num_routers: w * h,
            }));
        }
        if dir.neighbour(router, w, h).is_none() {
            return Err(NocError::FaultPlan(FaultPlanError::LinkOffEdge {
                router,
                dir,
            }));
        }
        Ok(router as usize * NUM_PORTS + port_of(dir))
    }

    /// Lazily creates an empty fault state so quarantine works on a mesh
    /// that never had a plan applied (a false-positive breaker must still be
    /// honoured — and then released — gracefully).
    fn ensure_fault_state(&mut self) {
        if self.faults.is_none() {
            let links = self.cfg.num_nodes() * NUM_PORTS;
            self.faults = Some(Box::new(FaultState {
                plan: Arc::new(FaultPlan::none()),
                pending_dead: Vec::new(),
                next_dead: 0,
                link_dead: vec![false; links],
                quarantined: vec![false; links],
                link_flaky: vec![None; links],
                routes: None,
                rng: None,
            }));
        }
    }

    /// Every `(src, dst)` pair reachable from a fresh injection?
    fn fully_routable(&self, tables: &[Vec<u8>]) -> bool {
        let n = self.cfg.num_nodes();
        (0..n).all(|dst| (0..n).all(|src| tables[dst][src * NUM_PORTS + LOCAL] != UNREACHABLE))
    }

    /// The up*/down* tables for `link_dead`, served from the process-wide
    /// intern cache when another mesh (a parallel campaign row, an earlier
    /// onset, a sibling die) already computed them for the same geometry and
    /// dead set. The tables are pure functions of the key, so sharing cannot
    /// change routing decisions.
    fn interned_route_tables(&self, link_dead: &[bool]) -> Arc<Vec<Vec<u8>>> {
        let mut dead = vec![0u64; link_dead.len().div_ceil(64)];
        for (i, d) in link_dead.iter().enumerate() {
            if *d {
                dead[i / 64] |= 1 << (i % 64);
            }
        }
        #[cfg(feature = "bug-hooks")]
        let greedy = self.greedy_routing;
        #[cfg(not(feature = "bug-hooks"))]
        let greedy = false;
        let key = RouteKey {
            width: self.cfg.width as u32,
            height: self.cfg.height as u32,
            greedy,
            dead,
        };
        if let Ok(cache) = route_cache().lock() {
            if let Some(hit) = cache.get(&key) {
                return hit.clone();
            }
        }
        // Compute outside the lock: the BFS is the expensive part, and two
        // threads racing to insert the same key converge on one entry below.
        let tables = Arc::new(self.compute_route_tables(link_dead));
        match route_cache().lock() {
            Ok(mut cache) => {
                if cache.len() >= ROUTE_CACHE_CAP {
                    cache.clear();
                }
                cache.entry(key).or_insert(tables).clone()
            }
            Err(_) => tables,
        }
    }

    /// Takes the directed link `(router, dir)` out of service and rebuilds
    /// the up*/down* next-hop tables around it — the health layer's Open
    /// breaker action. Idempotent on an already-quarantined link.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::QuarantineWouldDisconnect`] (leaving the routing
    /// unchanged) when removing the link would strand some node pair, and
    /// [`NocError::FaultPlan`] when the link does not exist.
    pub fn quarantine_link(&mut self, router: u32, dir: Direction) -> Result<(), NocError> {
        let idx = self.link_index(router, dir)?;
        self.ensure_fault_state();
        let mut faults = self.faults.take();
        let result = {
            let f = faults.as_deref_mut().expect("fault state just ensured");
            if f.quarantined[idx] {
                Ok(())
            } else {
                f.quarantined[idx] = true;
                let tables = self.interned_route_tables(&self.routing_dead_set(f));
                if self.fully_routable(&tables) {
                    f.routes = Some(tables);
                    self.stats.reroutes += 1;
                    self.quiet_until = self.cycle;
                    self.telemetry.emit_with(|| {
                        TraceEvent::new(self.cycle, SUBSYSTEM_NOC, "quarantine")
                            .with("router", router)
                            .with("port", port_of(dir))
                    });
                    Ok(())
                } else {
                    f.quarantined[idx] = false;
                    Err(NocError::QuarantineWouldDisconnect { router, dir })
                }
            }
        };
        self.faults = faults;
        result
    }

    /// Returns the directed link `(router, dir)` to service — the health
    /// layer's HalfOpen-probe-passed action. With nothing left to avoid, the
    /// mesh falls back to plain dimension-ordered routing. Idempotent on a
    /// link that is not quarantined.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::FaultPlan`] when the link does not exist.
    pub fn release_link(&mut self, router: u32, dir: Direction) -> Result<(), NocError> {
        let idx = self.link_index(router, dir)?;
        let mut faults = self.faults.take();
        if let Some(f) = faults.as_deref_mut() {
            if f.quarantined[idx] {
                f.quarantined[idx] = false;
                let dead = self.routing_dead_set(f);
                f.routes = if dead.iter().any(|d| *d) {
                    Some(self.interned_route_tables(&dead))
                } else {
                    None
                };
                self.stats.reroutes += 1;
                self.quiet_until = self.cycle;
                self.telemetry.emit_with(|| {
                    TraceEvent::new(self.cycle, SUBSYSTEM_NOC, "release")
                        .with("router", router)
                        .with("port", port_of(dir))
                });
            }
        }
        self.faults = faults;
        Ok(())
    }

    /// Sends one probe flit across the directed link `(router, dir)` and
    /// reports whether it survived — the HalfOpen breaker's recovery test.
    /// The probe experiences the link's physical state: a dead link always
    /// eats it, a flaky link rolls its usual drop coin (consuming the plan's
    /// RNG stream), a healthy link always passes it.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::FaultPlan`] when the link does not exist.
    pub fn probe_link(&mut self, router: u32, dir: Direction) -> Result<bool, NocError> {
        let idx = self.link_index(router, dir)?;
        let cycle = self.cycle;
        let ok = match self.faults.as_deref_mut() {
            None => true,
            Some(f) => {
                if f.link_dead[idx] {
                    false
                } else if let Some((onset, prob)) = f.link_flaky[idx] {
                    cycle < onset
                        || !f
                            .rng
                            .as_mut()
                            .is_some_and(|rng| rng.gen_bool(prob.clamp(0.0, 1.0)))
                } else {
                    true
                }
            }
        };
        Ok(ok)
    }

    /// The links currently quarantined by the health layer, in deterministic
    /// `(router, direction)` order.
    pub fn quarantined_links(&self) -> Vec<(u32, Direction)> {
        let Some(f) = self.faults.as_deref() else {
            return Vec::new();
        };
        f.quarantined
            .iter()
            .enumerate()
            .filter(|(_, q)| **q)
            .map(|(idx, _)| ((idx / NUM_PORTS) as u32, dir_of(idx % NUM_PORTS)))
            .collect()
    }

    /// Attaches a telemetry handle. An enabled mesh samples router input
    /// queue depths every [`WINDOW_CYCLES`] cycles into the
    /// `noc.router_queue_depth` histogram (plus `queue_depth` trace events
    /// for the deepest router); the disabled default adds one branch per
    /// window boundary and nothing else.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// The mesh's telemetry handle.
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics so far.
    pub fn stats(&self) -> &MeshStats {
        &self.stats
    }

    /// Resets statistics (e.g. after warm-up) without touching in-flight
    /// packets.
    pub fn reset_stats(&mut self) {
        let n = self.cfg.num_nodes();
        self.stats = MeshStats {
            delivered_by_src: vec![0; n],
            injected_by_src: vec![0; n],
            link_flits: vec![0; n * NUM_PORTS],
            link_drops: vec![0; n * NUM_PORTS],
            ..MeshStats::default()
        };
        self.window_flits.iter_mut().for_each(|w| *w = 0);
    }

    /// Enables or disables ejection at `node` — the back-pressure hook used
    /// by the memory-system simulation (a stalled memory controller stops
    /// accepting packets, congesting the network behind it).
    pub fn set_ejection_enabled(&mut self, node: NodeId, enabled: bool) {
        let slot = &mut self.ejection_enabled[node.index()];
        // Only an actual change can wake the mesh; the memory-system
        // simulation re-asserts the current value every cycle.
        if *slot != enabled {
            *slot = enabled;
            self.quiet_until = self.cycle;
        }
    }

    /// Attaches a fresh [`FlightRecorder`]: from now on every injected
    /// message gets a causal lifecycle record with exact stall attribution.
    /// The recorder observes the simulation but cannot influence it, so a
    /// recorded run is bit-identical to an unrecorded one.
    pub fn attach_flight_recorder(&mut self) {
        self.recorder = Some(Box::new(FlightRecorder::new()));
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_deref()
    }

    /// Mutable access to the attached flight recorder — protocol and health
    /// layers use this to annotate the timeline (retries, breaker
    /// transitions, oracle violations).
    pub fn flight_recorder_mut(&mut self) -> Option<&mut FlightRecorder> {
        self.recorder.as_deref_mut()
    }

    /// Detaches and returns the flight recorder for analysis/export.
    pub fn take_flight_recorder(&mut self) -> Option<Box<FlightRecorder>> {
        self.recorder.take()
    }

    /// Attaches a workload record tap: every subsequent successful
    /// injection is appended to the trace (retransmissions included when a
    /// reliability layer drives this mesh — tap the [`crate::ReliableMesh`]
    /// instead to capture logical transfers once).
    pub fn attach_trace_tap(&mut self, tap: gnoc_trace::TraceTap) {
        self.trace_tap = TapSlot(Some(Box::new(tap)));
    }

    /// The attached workload record tap, if any.
    pub fn trace_tap(&self) -> Option<&gnoc_trace::TraceTap> {
        self.trace_tap.0.as_deref()
    }

    /// Detaches and returns the workload record tap for finalization.
    pub fn take_trace_tap(&mut self) -> Option<gnoc_trace::TraceTap> {
        self.trace_tap.0.take().map(|b| *b)
    }

    /// Replays a recorded injection stream: steps the mesh to each event's
    /// recorded cycle and re-injects it. On a mesh built from the trace
    /// header's configuration and plan this reproduces the recorded run bit
    /// for bit. A truncated trace replays its complete prefix and reports
    /// the truncation in [`gnoc_trace::ReplayOutcome::truncated`].
    ///
    /// # Errors
    ///
    /// [`gnoc_trace::ReplayError::Trace`] on a corrupt stream;
    /// [`gnoc_trace::ReplayError::Event`] when an event does not fit this
    /// mesh (non-zero device, node out of range, full injection buffer) —
    /// never a panic.
    pub fn replay_from<R: std::io::Read>(
        &mut self,
        reader: &mut gnoc_trace::TraceReader<R>,
    ) -> Result<gnoc_trace::ReplayOutcome, gnoc_trace::ReplayError> {
        use gnoc_trace::{ReplayError, ReplayOutcome, TraceError};
        let mut replayed = 0u64;
        loop {
            match reader.next_event() {
                Ok(Some(ev)) => {
                    let fail = |reason: String| ReplayError::Event {
                        index: replayed,
                        reason,
                    };
                    if ev.src_dev != 0 || ev.dst_dev != 0 {
                        return Err(fail(format!(
                            "mesh replay saw device ({}, {}) — a fabric trace?",
                            ev.src_dev, ev.dst_dev
                        )));
                    }
                    let n = self.cfg.num_nodes() as u32;
                    if ev.src >= n || ev.dst >= n {
                        return Err(fail(format!(
                            "node ({}, {}) out of range for {} terminals",
                            ev.src, ev.dst, n
                        )));
                    }
                    let class = PacketClass::from_trace_code(ev.class)
                        .ok_or_else(|| fail(format!("unknown packet class {}", ev.class)))?;
                    while self.cycle < ev.cycle {
                        self.step();
                    }
                    if !self.try_inject_with_birth(
                        NodeId::new(ev.src),
                        NodeId::new(ev.dst),
                        ev.flits,
                        class,
                        ev.cycle,
                    ) {
                        return Err(fail(format!(
                            "injection buffer at node {} full at cycle {}",
                            ev.src, ev.cycle
                        )));
                    }
                    replayed += 1;
                }
                Ok(None) => {
                    return Ok(ReplayOutcome {
                        replayed,
                        truncated: None,
                    })
                }
                Err(TraceError::TruncatedTail { chunk, offset }) => {
                    return Ok(ReplayOutcome {
                        replayed,
                        truncated: Some((chunk, offset)),
                    })
                }
                Err(e) => return Err(ReplayError::Trace(e)),
            }
        }
    }

    /// Attempts to inject a packet at `src`; returns `false` when the local
    /// input buffer is full (the terminal must retry later).
    pub fn try_inject(&mut self, src: NodeId, dst: NodeId, flits: u32, class: PacketClass) -> bool {
        let birth = self.cycle;
        self.try_inject_with_birth(src, dst, flits, class, birth)
    }

    /// Like [`Mesh::try_inject`], but with an explicit birth stamp. Traffic
    /// generators stamp packets with their *generation* time so that waiting
    /// in the source queue counts towards age — required for age-based
    /// arbitration to provide global fairness.
    pub fn try_inject_with_birth(
        &mut self,
        src: NodeId,
        dst: NodeId,
        flits: u32,
        class: PacketClass,
        birth: u64,
    ) -> bool {
        self.try_inject_tracked(src, dst, flits, class, birth)
            .is_some()
    }

    /// Like [`Mesh::try_inject_with_birth`], but returns the assigned packet
    /// id on success so callers (the reliable-delivery layer) can match
    /// ejections and losses back to their transfers.
    pub fn try_inject_tracked(
        &mut self,
        src: NodeId,
        dst: NodeId,
        flits: u32,
        class: PacketClass,
        birth: u64,
    ) -> Option<u64> {
        assert!(src.index() < self.cfg.num_nodes(), "src out of range");
        assert!(dst.index() < self.cfg.num_nodes(), "dst out of range");
        let vc = self.vc_of(class);
        let q = &mut self.routers[src.index()].inputs[LOCAL][vc];
        if q.len() >= self.cfg.buffer_packets {
            return None;
        }
        let id = self.next_id;
        q.push_back(Packet {
            id,
            src,
            dst,
            flits,
            birth,
            class,
        });
        self.next_id += 1;
        self.occupancy += 1;
        self.quiet_until = self.cycle;
        self.stats.injected_by_src[src.index()] += 1;
        if let Some(tap) = self.trace_tap.0.as_deref_mut() {
            tap.record(&gnoc_trace::TraceEvent {
                cycle: birth,
                src_dev: 0,
                src: src.index() as u32,
                dst_dev: 0,
                dst: dst.index() as u32,
                flits,
                class: class.trace_code(),
            });
        }
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.on_inject(
                id,
                src.index() as u32,
                dst.index() as u32,
                flits,
                birth,
                self.cycle,
            );
        }
        Some(id)
    }

    /// Packets ejected since the last drain.
    pub fn drain_ejected(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.ejected)
    }

    /// Packets lost to faults since the last drain, with the reason each was
    /// lost. Empty on a fault-free mesh.
    pub fn drain_lost(&mut self) -> Vec<(Packet, LossReason)> {
        std::mem::take(&mut self.lost)
    }

    /// Checks and clears the corruption mark for packet `id`. The reliable
    /// layer calls this at ejection — a `true` return means the payload
    /// failed its CRC and must be NACKed.
    pub fn take_corrupted(&mut self, id: u64) -> bool {
        self.corrupted.remove(&id)
    }

    /// Packets currently buffered anywhere in the mesh. O(1): the count is
    /// maintained incrementally at injection, ejection, and every loss.
    pub fn in_flight(&self) -> usize {
        debug_assert_eq!(
            self.occupancy,
            self.routers
                .iter()
                .flat_map(|r| r.inputs.iter())
                .flat_map(|port| port.iter().map(VecDeque::len))
                .sum::<usize>(),
            "incremental occupancy diverged from the queues"
        );
        self.occupancy
    }

    /// Cycles since any packet last moved — the external deadlock watchdog's
    /// input signal.
    pub fn cycles_since_progress(&self) -> u64 {
        self.cycle.saturating_sub(self.last_progress)
    }

    /// The virtual channel a packet class rides: requests on VC 0, replies on
    /// the highest VC (identical when only one VC is configured).
    fn vc_of(&self, class: PacketClass) -> usize {
        match class {
            PacketClass::Request => 0,
            PacketClass::Reply => self.cfg.vcs - 1,
        }
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.cfg.width, node / self.cfg.width)
    }

    /// Dimension-ordered routing: returns the output port at `node` for a
    /// packet heading to `dst`.
    fn route(&self, node: usize, dst: usize) -> usize {
        let (x, y) = self.coords(node);
        let (dx, dy) = self.coords(dst);
        let x_port = if dx > x {
            Some(EAST)
        } else if dx < x {
            Some(WEST)
        } else {
            None
        };
        let y_port = if dy > y {
            Some(NORTH)
        } else if dy < y {
            Some(SOUTH)
        } else {
            None
        };
        let (first, second) = match self.cfg.route_order {
            RouteOrder::Xy => (x_port, y_port),
            RouteOrder::Yx => (y_port, x_port),
        };
        first.or(second).unwrap_or(LOCAL)
    }

    fn neighbour(&self, node: usize, port: usize) -> usize {
        let (x, y) = self.coords(node);
        match port {
            NORTH => x + (y + 1) * self.cfg.width,
            SOUTH => x + (y - 1) * self.cfg.width,
            EAST => (x + 1) + y * self.cfg.width,
            WEST => (x - 1) + y * self.cfg.width,
            _ => unreachable!("no neighbour through the local port"),
        }
    }

    /// The input port at the downstream router that `port` feeds.
    fn entry_port(port: usize) -> usize {
        match port {
            NORTH => SOUTH,
            SOUTH => NORTH,
            EAST => WEST,
            WEST => EAST,
            _ => unreachable!(),
        }
    }

    /// Like [`Mesh::neighbour`] but `None` at the mesh edge (and for the
    /// local port) instead of undefined arithmetic.
    fn neighbour_checked(&self, node: usize, port: usize) -> Option<usize> {
        let (x, y) = self.coords(node);
        match port {
            NORTH => (y + 1 < self.cfg.height).then(|| x + (y + 1) * self.cfg.width),
            SOUTH => y.checked_sub(1).map(|y| x + y * self.cfg.width),
            EAST => (x + 1 < self.cfg.width).then(|| (x + 1) + y * self.cfg.width),
            WEST => x.checked_sub(1).map(|x| x + y * self.cfg.width),
            _ => None,
        }
    }

    /// Fault-aware next-hop tables over the surviving directed links,
    /// indexed `[dst][router * NUM_PORTS + entry port]` (entry [`LOCAL`] =
    /// freshly injected), [`UNREACHABLE`] when no legal path survives.
    ///
    /// Routing follows the up*/down* discipline: BFS levels are computed
    /// from a root over the surviving topology, every directed link is
    /// oriented "up" (towards lower level, then lower id) or "down", and a
    /// packet that has taken a down link may never take an up link again.
    /// The (level, id) order makes the channel-dependency graph acyclic, so
    /// rerouted traffic cannot wormhole-deadlock the single-VC buffers —
    /// arbitrary minimal detours can (and, before this discipline, did: the
    /// watchdog wrote whole runs off). Every router in a connected
    /// component can climb to its root on up links and descend on down
    /// links, so any connected (src, dst) pair stays routable from
    /// injection. The fixed expansion order keeps the tables deterministic.
    fn compute_route_tables(&self, link_dead: &[bool]) -> Vec<Vec<u8>> {
        let n = self.cfg.num_nodes();
        let states = n * NUM_PORTS;
        // An edge counts for levelling only when both directions survive, so
        // a climb (and the reverse descent) is always physically possible.
        let both_alive = |v: usize, port: usize, u: usize| -> bool {
            !link_dead[v * NUM_PORTS + port] && !link_dead[u * NUM_PORTS + Self::entry_port(port)]
        };
        let mut level = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        for root in 0..n {
            if level[root] != u32::MAX {
                continue;
            }
            level[root] = 0;
            queue.push_back(root);
            while let Some(v) = queue.pop_front() {
                for port in [NORTH, EAST, SOUTH, WEST] {
                    let Some(u) = self.neighbour_checked(v, port) else {
                        continue;
                    };
                    if level[u] == u32::MAX && both_alive(v, port, u) {
                        level[u] = level[v] + 1;
                        queue.push_back(u);
                    }
                }
            }
        }
        // The traversal v → u is "down" when it moves away from the root.
        let is_down = |v: usize, u: usize| (level[u], u) > (level[v], v);
        // A hop from state (v, entry p) to u is legal unless the packet
        // already descended (it arrived over a down link) and the hop would
        // climb again. Fresh injections (entry LOCAL) may go anywhere.
        #[cfg(feature = "bug-hooks")]
        let greedy = self.greedy_routing;
        #[cfg(not(feature = "bug-hooks"))]
        let greedy = false;
        let hop_ok = |v: usize, p: usize, u: usize| -> bool {
            if greedy {
                // Bug hook: no turn discipline at all — arbitrary minimal
                // detours, which can wormhole-deadlock single-VC buffers.
                return true;
            }
            match self.neighbour_checked(v, p) {
                None => true,
                Some(prev) => !is_down(prev, v) || is_down(v, u),
            }
        };

        // Reverse adjacency of the legal state graph, for the per-dst BFS.
        let mut radj: Vec<Vec<u32>> = vec![Vec::new(); states];
        for v in 0..n {
            for p in 0..NUM_PORTS {
                if p != LOCAL && self.neighbour_checked(v, p).is_none() {
                    continue; // edge-of-mesh port: no such entry state
                }
                for out in [NORTH, EAST, SOUTH, WEST] {
                    if link_dead[v * NUM_PORTS + out] {
                        continue;
                    }
                    let Some(u) = self.neighbour_checked(v, out) else {
                        continue;
                    };
                    if !hop_ok(v, p, u) {
                        continue;
                    }
                    radj[u * NUM_PORTS + Self::entry_port(out)].push((v * NUM_PORTS + p) as u32);
                }
            }
        }

        let mut tables = vec![vec![UNREACHABLE; states]; n];
        let mut dist = vec![u32::MAX; states];
        for dst in 0..n {
            let table = &mut tables[dst];
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            queue.clear();
            for p in 0..NUM_PORTS {
                table[dst * NUM_PORTS + p] = LOCAL as u8;
                dist[dst * NUM_PORTS + p] = 0;
                queue.push_back(dst * NUM_PORTS + p);
            }
            while let Some(s) = queue.pop_front() {
                for &pred in &radj[s] {
                    let pred = pred as usize;
                    if dist[pred] == u32::MAX {
                        dist[pred] = dist[s] + 1;
                        queue.push_back(pred);
                    }
                }
            }
            // Next hop per state: first port (fixed order) on a minimal
            // legal path.
            for v in 0..n {
                if v == dst {
                    continue;
                }
                for p in 0..NUM_PORTS {
                    let mut best = u32::MAX;
                    let mut best_port = UNREACHABLE;
                    for out in [NORTH, EAST, SOUTH, WEST] {
                        if link_dead[v * NUM_PORTS + out] {
                            continue;
                        }
                        let Some(u) = self.neighbour_checked(v, out) else {
                            continue;
                        };
                        if !hop_ok(v, p, u) {
                            continue;
                        }
                        let d = dist[u * NUM_PORTS + Self::entry_port(out)];
                        if d < best {
                            best = d;
                            best_port = out as u8;
                        }
                    }
                    if best != u32::MAX {
                        table[v * NUM_PORTS + p] = best_port;
                    }
                }
            }
        }
        tables
    }

    /// The links the routing function must avoid: the health layer's
    /// quarantine set, plus — outside self-healing mode — the plan's dead
    /// set. In self-healing mode the plan is hidden from the router, so only
    /// quarantined links are excluded.
    fn routing_dead_set(&self, f: &FaultState) -> Vec<bool> {
        if self.self_heal {
            f.quarantined.clone()
        } else {
            f.link_dead
                .iter()
                .zip(&f.quarantined)
                .map(|(d, q)| *d || *q)
                .collect()
        }
    }

    /// Activates dead links whose onset has arrived and recomputes the
    /// next-hop tables when the dead set changed. In self-healing mode the
    /// tables are left alone: the fault is physical reality, but the router
    /// has not been told — detection and quarantine are the health layer's
    /// job.
    fn process_fault_onsets(&mut self, f: &mut FaultState) {
        let mut changed = false;
        while f.next_dead < f.pending_dead.len() && f.pending_dead[f.next_dead].0 <= self.cycle {
            f.link_dead[f.pending_dead[f.next_dead].1] = true;
            f.next_dead += 1;
            changed = true;
        }
        if changed && !self.self_heal {
            f.routes = Some(self.interned_route_tables(&self.routing_dead_set(f)));
            self.stats.reroutes += 1;
            let dead = f.link_dead.iter().filter(|d| **d).count();
            self.telemetry.emit_with(|| {
                TraceEvent::new(self.cycle, SUBSYSTEM_NOC, "reroute").with("dead_links", dead)
            });
        }
    }

    /// Self-healing mode: drops queue heads whose next hop is a dead link
    /// the routing function still points at, charging the loss to that
    /// link's error counter. One head per queue per cycle, mirroring
    /// [`Mesh::drop_unroutable_heads`]. This is the transmit-side timeout a
    /// real link layer raises when the far end stops returning credits — the
    /// observable that lets a health monitor find the dead link.
    fn drop_dead_port_heads(&mut self, f: &FaultState) {
        for r in 0..self.routers.len() {
            for in_port in 0..NUM_PORTS {
                for vc in 0..self.cfg.vcs {
                    let Some(head) = self.routers[r].inputs[in_port][vc].front() else {
                        continue;
                    };
                    let Some(out) = self.route_current(Some(f), r, in_port, head.dst.index())
                    else {
                        continue;
                    };
                    if out == LOCAL || !f.link_dead[r * NUM_PORTS + out] {
                        continue;
                    }
                    let Some(packet) = self.routers[r].inputs[in_port][vc].pop_front() else {
                        continue;
                    };
                    self.occupancy -= 1;
                    self.stats.link_drops[r * NUM_PORTS + out] += 1;
                    self.lost.push((packet, LossReason::DeadLink));
                }
            }
        }
    }

    /// Drops queue heads that no surviving route can deliver, reporting each
    /// as [`LossReason::Unroutable`]. One head per queue per cycle — the
    /// queue drains over the following cycles, exactly as a real ejection
    /// path would time out stuck wormholes one at a time.
    fn drop_unroutable_heads(&mut self, f: &FaultState) {
        let Some(routes) = f.routes.as_ref() else {
            return;
        };
        for r in 0..self.routers.len() {
            for in_port in 0..NUM_PORTS {
                for vc in 0..self.cfg.vcs {
                    let Some(head) = self.routers[r].inputs[in_port][vc].front() else {
                        continue;
                    };
                    if routes[head.dst.index()][r * NUM_PORTS + in_port] != UNREACHABLE {
                        continue;
                    }
                    let Some(packet) = self.routers[r].inputs[in_port][vc].pop_front() else {
                        continue;
                    };
                    self.occupancy -= 1;
                    self.stats.dropped_unroutable += 1;
                    self.lost.push((packet, LossReason::Unroutable));
                }
            }
        }
    }

    /// Whether router `r` is inside a stall window this cycle.
    fn is_stalled(&self, f: &FaultState, r: usize) -> bool {
        f.plan.routers.iter().any(|s| {
            s.router as usize == r && s.onset <= self.cycle && self.cycle < s.onset + s.duration
        })
    }

    /// The output port at `node` for a packet to `dst` that entered via
    /// `in_port` ([`LOCAL`] for fresh injections), under the current routing
    /// function: the fault-aware up*/down* tables once any link has died,
    /// dimension-ordered routing otherwise. `None` when `dst` is unreachable
    /// from this state.
    fn route_current(
        &self,
        f: Option<&FaultState>,
        node: usize,
        in_port: usize,
        dst: usize,
    ) -> Option<usize> {
        if let Some(routes) = f.and_then(|f| f.routes.as_ref()) {
            let port = routes[dst][node * NUM_PORTS + in_port];
            return (port != UNREACHABLE).then_some(port as usize);
        }
        Some(self.route(node, dst))
    }

    /// Rolls the probabilistic faults for one packet crossing `link`.
    /// Returns `true` when the packet was dropped (it is already recorded in
    /// the loss list); a corrupted packet keeps flying but is marked so the
    /// ejection-side CRC check can catch it. Draws happen only for faults
    /// that are active this cycle, so a benign plan consumes no randomness.
    fn hop_faults(&mut self, f: &mut FaultState, packet: &Packet, link: usize) -> bool {
        if let Some((onset, prob)) = f.link_flaky[link] {
            if self.cycle >= onset {
                let dropped = f
                    .rng
                    .as_mut()
                    .is_some_and(|rng| rng.gen_bool(prob.clamp(0.0, 1.0)));
                if dropped {
                    self.stats.dropped_flaky += 1;
                    self.stats.link_drops[link] += 1;
                    self.lost.push((*packet, LossReason::FlakyLink));
                    return true;
                }
            }
        }
        let t = f.plan.transient;
        if t.is_active() && self.cycle >= t.onset {
            if let Some(rng) = f.rng.as_mut() {
                if t.drop_prob > 0.0 && rng.gen_bool(t.drop_prob.clamp(0.0, 1.0)) {
                    self.stats.dropped_transient += 1;
                    self.stats.link_drops[link] += 1;
                    self.lost.push((*packet, LossReason::TransientDrop));
                    return true;
                }
                if t.corrupt_prob > 0.0
                    && rng.gen_bool(t.corrupt_prob.clamp(0.0, 1.0))
                    && self.corrupted.insert(packet.id)
                {
                    self.stats.corrupted += 1;
                }
            }
        }
        false
    }

    /// The stall cause a waiting queue head would be charged this cycle —
    /// the flight recorder's classification, shared verbatim between the
    /// per-cycle attribution pass and the event engine's span-batched
    /// charging (the span bound guarantees every input to this function is
    /// constant across the skipped cycles).
    fn classify_stall(
        &self,
        faults: Option<&FaultState>,
        r: usize,
        in_port: usize,
        vc: usize,
        head: &Packet,
    ) -> StallKind {
        if faults.is_some_and(|f| self.is_stalled(f, r)) {
            return StallKind::RouterStall;
        }
        match self.route_current(faults, r, in_port, head.dst.index()) {
            None => StallKind::RouterStall,
            Some(out)
                if out != LOCAL && faults.is_some_and(|f| f.link_dead[r * NUM_PORTS + out]) =>
            {
                StallKind::RouterStall
            }
            Some(out) if self.routers[r].output_busy_until[out] > self.cycle => {
                StallKind::Serialization
            }
            Some(out) if out == LOCAL && !self.ejection_enabled[r] => StallKind::Backpressure,
            Some(out)
                if out != LOCAL && {
                    let down = self.neighbour(r, out);
                    let entry = Self::entry_port(out);
                    self.routers[down].inputs[entry][vc].len() >= self.cfg.buffer_packets
                } =>
            {
                StallKind::Backpressure
            }
            Some(_) => StallKind::Contention,
        }
    }

    /// Advances the simulation by one cycle (the cycle-exact reference
    /// step), then records how far the mesh is provably inert so
    /// [`Mesh::skip_idle_to`] can fast-forward.
    pub fn step(&mut self) {
        let quiet = self.step_inner();
        // The bound is only computed when a skip could use it, so the
        // reference engine's per-cycle cost is unchanged. Re-enabling the
        // event engine mid-run starts from the conservative "unknown".
        self.quiet_until = if quiet && event_skip_enabled() {
            self.activity_bound()
        } else {
            self.cycle
        };
    }

    /// One cycle of the reference engine. Returns `true` when the cycle was
    /// *quiet*: nothing moved and nothing was lost. A quiet cycle proves no
    /// queue head anywhere was a grantable candidate, and — since nothing in
    /// the arbitration inputs changes while the mesh is untouched except the
    /// cycle counter itself — every following cycle is identical until the
    /// first cycle-dependent threshold ([`Mesh::activity_bound`]) passes.
    /// The arbiters' round-robin state is preserved exactly: `pick` is only
    /// ever called with a non-empty candidate list and always grants, so a
    /// quiet cycle makes zero `pick` calls under both engines.
    fn step_inner(&mut self) -> bool {
        #[derive(Clone, Copy)]
        struct Move {
            router: usize,
            in_port: usize,
            vc: usize,
            out_port: usize,
        }

        let vcs = self.cfg.vcs;
        // The recorder, like the fault state, is taken out of `self` so the
        // instrumentation below can borrow the routers freely.
        let mut rec = self.recorder.take();
        let lost_mark = self.lost.len();
        // Phase 0: fault bookkeeping (absent on a fault-free mesh). The state
        // is taken out of `self` so helpers can borrow the routers freely.
        let mut faults = self.faults.take();
        if let Some(f) = faults.as_deref_mut() {
            self.process_fault_onsets(f);
            if self.self_heal {
                self.drop_dead_port_heads(f);
            }
            self.drop_unroutable_heads(f);
        }
        if let Some(rec) = rec.as_deref_mut() {
            // Queue heads dropped by phase 0 (dead port / unroutable).
            for (packet, reason) in &self.lost[lost_mark..] {
                rec.on_lost(packet.id, self.cycle, &format!("{reason:?}"));
            }
        }

        // Phase 1: arbitration decisions on a consistent snapshot.
        let mut moves: Vec<Move> = Vec::new();
        // Reserved downstream slots this cycle: (router, in_port, vc) -> count.
        let mut reserved = vec![vec![[0u8; NUM_PORTS]; vcs]; self.routers.len()];

        for r in 0..self.routers.len() {
            if faults.as_deref().is_some_and(|f| self.is_stalled(f, r)) {
                continue;
            }
            for out in 0..NUM_PORTS {
                if self.routers[r].output_busy_until[out] > self.cycle {
                    continue;
                }
                if out == LOCAL && !self.ejection_enabled[r] {
                    continue;
                }
                if out != LOCAL
                    && faults
                        .as_deref()
                        .is_some_and(|f| f.link_dead[r * NUM_PORTS + out])
                {
                    continue;
                }
                // Candidates: per-(port, vc) queue heads routed to `out` with
                // downstream credit on the packet's own VC.
                let mut candidates: Vec<(usize, u64)> = Vec::new();
                for in_port in 0..NUM_PORTS {
                    #[allow(clippy::needless_range_loop)] // vc also indexes downstream state
                    for vc in 0..vcs {
                        let Some(head) = self.routers[r].inputs[in_port][vc].front() else {
                            continue;
                        };
                        if self.route_current(faults.as_deref(), r, in_port, head.dst.index())
                            != Some(out)
                        {
                            continue;
                        }
                        if out != LOCAL {
                            let down = self.neighbour(r, out);
                            let entry = Self::entry_port(out);
                            let occupied = self.routers[down].inputs[entry][vc].len()
                                + reserved[down][vc][entry] as usize;
                            if occupied >= self.cfg.buffer_packets {
                                continue;
                            }
                        }
                        candidates.push((in_port * vcs + vc, head.birth));
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                if let Some(winner) = self.routers[r].arbiters[out].pick(&candidates) {
                    let (in_port, vc) = (winner / vcs, winner % vcs);
                    if out != LOCAL {
                        let down = self.neighbour(r, out);
                        reserved[down][vc][Self::entry_port(out)] += 1;
                    }
                    moves.push(Move {
                        router: r,
                        in_port,
                        vc,
                        out_port: out,
                    });
                }
            }
        }

        // Stall attribution: a read-only classification pass over the same
        // snapshot phase 1 arbitrated on (nothing has been popped or pushed
        // yet, and reservations for a head's own target are made only after
        // its arbitration), so each waiting queue head is charged exactly
        // one cause per cycle. The decision loop above is untouched — the
        // recorder can observe but never perturb.
        if let Some(rec) = rec.as_deref_mut() {
            let winners: HashSet<(usize, usize, usize)> =
                moves.iter().map(|m| (m.router, m.in_port, m.vc)).collect();
            for r in 0..self.routers.len() {
                for in_port in 0..NUM_PORTS {
                    #[allow(clippy::needless_range_loop)] // vc also indexes downstream state
                    for vc in 0..vcs {
                        let Some(head) = self.routers[r].inputs[in_port][vc].front() else {
                            continue;
                        };
                        if winners.contains(&(r, in_port, vc)) {
                            continue;
                        }
                        let kind = self.classify_stall(faults.as_deref(), r, in_port, vc, head);
                        rec.charge(head.id, kind);
                    }
                }
            }
        }

        // Phase 2: apply moves. The move list order is deterministic, so the
        // per-move fault draws below consume the plan RNG reproducibly.
        let moved = !moves.is_empty();
        if moved {
            self.last_progress = self.cycle;
        }
        for m in moves {
            // Invariant: arbitration granted a queue head it just observed.
            let Some(packet) = self.routers[m.router].inputs[m.in_port][m.vc].pop_front() else {
                debug_assert!(false, "arbitration winner vanished before apply");
                continue;
            };
            // The packet left its buffer; it re-enters one downstream unless
            // it ejects or dies on the hop.
            self.occupancy -= 1;
            // The flits occupy the wire whether or not they survive the hop.
            self.routers[m.router].output_busy_until[m.out_port] =
                self.cycle + u64::from(packet.flits);
            let link = m.router * NUM_PORTS + m.out_port;
            self.stats.link_flits[link] += u64::from(packet.flits);
            self.window_flits[link] += u64::from(packet.flits);
            if let Some(rec) = rec.as_deref_mut() {
                rec.on_grant(packet.id, m.out_port as u8, self.cycle);
            }
            if m.out_port != LOCAL {
                if let Some(f) = faults.as_deref_mut() {
                    let corrupted_before = self.stats.corrupted;
                    if self.hop_faults(f, &packet, link) {
                        if let Some(rec) = rec.as_deref_mut() {
                            let reason = self
                                .lost
                                .last()
                                .map_or_else(String::new, |(_, r)| format!("{r:?}"));
                            rec.on_lost(packet.id, self.cycle, &reason);
                        }
                        continue; // packet died on this hop
                    }
                    if self.stats.corrupted > corrupted_before {
                        if let Some(rec) = rec.as_deref_mut() {
                            rec.note(
                                TraceEvent::new(self.cycle, SUBSYSTEM_NOC, "corrupted")
                                    .with("id", packet.id),
                            );
                        }
                    }
                }
            }
            if m.out_port == LOCAL {
                self.stats.delivered_by_src[packet.src.index()] += 1;
                self.stats.delivered_total += 1;
                self.stats.latency_sum += self.cycle - packet.birth;
                self.stats.record_latency(self.cycle - packet.birth);
                if let Some(rec) = rec.as_deref_mut() {
                    rec.on_deliver(packet.id, self.cycle);
                }
                self.ejected.push(packet);
            } else {
                let down = self.neighbour(m.router, m.out_port);
                if let Some(rec) = rec.as_deref_mut() {
                    // The packet becomes visible to the downstream router's
                    // arbitration on the next cycle.
                    rec.on_enqueue(
                        packet.id,
                        down as u32,
                        Self::entry_port(m.out_port) as u8,
                        self.cycle + 1,
                    );
                }
                self.routers[down].inputs[Self::entry_port(m.out_port)][m.vc].push_back(packet);
                self.occupancy += 1;
            }
        }

        self.faults = faults;
        self.recorder = rec;
        self.cycle += 1;
        if self.cycle.is_multiple_of(WINDOW_CYCLES) {
            self.close_window();
        }
        !moved && self.lost.len() == lost_mark
    }

    /// Window boundary: fold the per-link window demand into the peak and
    /// sample router queue depths into telemetry when enabled.
    fn close_window(&mut self) {
        let window_peak = self.window_flits.iter().copied().max().unwrap_or(0);
        if window_peak > self.stats.peak_window_flits {
            self.stats.peak_window_flits = window_peak;
        }
        self.window_flits.iter_mut().for_each(|w| *w = 0);

        if !self.telemetry.is_enabled() {
            return;
        }
        let mut deepest = (0usize, 0usize); // (router, depth)
        self.telemetry.with(|t| {
            for (r, router) in self.routers.iter().enumerate() {
                let depth: usize = router
                    .inputs
                    .iter()
                    .flat_map(|port| port.iter().map(VecDeque::len))
                    .sum();
                t.registry
                    .hist_record("noc.router_queue_depth", depth as u64);
                if depth > deepest.1 {
                    deepest = (r, depth);
                }
            }
            t.registry
                .counter_add("noc.queue_samples", self.routers.len() as u64);
        });
        if deepest.1 > 0 {
            self.telemetry.emit_with(|| {
                TraceEvent::new(self.cycle, SUBSYSTEM_NOC, "queue_depth")
                    .with("router", deepest.0)
                    .with("depth", deepest.1)
            });
        }
    }

    /// Exports the mesh's statistics into `registry`: delivery/injection
    /// counters, latency gauges, the per-link flit distribution, peak window
    /// demand, and total arbiter grants.
    pub fn export_metrics(&self, registry: &mut MetricRegistry) {
        registry.counter_add("noc.delivered", self.stats.delivered_total);
        registry.counter_add(
            "noc.injected",
            self.stats.injected_by_src.iter().sum::<u64>(),
        );
        registry.counter_add("noc.flits", self.stats.link_flits.iter().sum::<u64>());
        registry.counter_add(
            "noc.arbiter.grants",
            self.routers
                .iter()
                .flat_map(|r| r.arbiters.iter().map(Arbiter::grants))
                .sum::<u64>(),
        );
        registry.gauge_set("noc.latency.mean", self.stats.mean_latency());
        registry.gauge_set("noc.latency.p99", self.stats.latency_quantile(0.99));
        registry.gauge_max(
            "noc.link.peak_window_flits",
            self.stats.peak_window_flits as f64,
        );
        if let Some((router, port, flits)) = self.stats.busiest_link() {
            registry.gauge_set("noc.link.busiest.router", router as f64);
            registry.gauge_set("noc.link.busiest.port", port as f64);
            registry.gauge_max(
                "noc.link.busiest.utilisation",
                flits as f64 / self.cycle.max(1) as f64,
            );
        }
        for &flits in &self.stats.link_flits {
            if flits > 0 {
                registry.hist_record("noc.link_flits", flits);
            }
        }
        if self.faults.is_some() {
            registry.counter_add("noc.faults.dropped_flaky", self.stats.dropped_flaky);
            registry.counter_add("noc.faults.dropped_transient", self.stats.dropped_transient);
            registry.counter_add("noc.faults.corrupted", self.stats.corrupted);
            registry.counter_add("noc.faults.unroutable", self.stats.dropped_unroutable);
            registry.counter_add("noc.faults.reroutes", self.stats.reroutes);
            registry.gauge_set("noc.faults.dead_links", self.dead_links_active() as f64);
        }
    }

    /// Exclusive upper bound of the span the last step proved inert — the
    /// mesh cannot move a packet, lose a packet, or change any waiting
    /// head's stall cause before this cycle. `<= cycle()` means the mesh is
    /// (or may be) active right now. Composite simulations (reliable layer,
    /// fabric) fold this into their own wake bounds.
    pub fn quiet_until(&self) -> u64 {
        self.quiet_until
    }

    /// The earliest future cycle at which a currently-quiet mesh could
    /// behave differently: an output's wormhole serialisation ending, a
    /// router stall window starting or ending, or a dead-link onset firing.
    /// Everything else in the arbitration inputs is cycle-independent, so a
    /// quiet mesh stays quiet — with constant stall classifications —
    /// strictly before this bound.
    fn activity_bound(&self) -> u64 {
        // Thresholds are compared against the *pre*-cycle of each step: an
        // output with `busy_until == cycle` was busy during the step that
        // just ran and frees on the very next one, so every comparison below
        // is `>= cycle` — a threshold equal to the current cycle clamps the
        // bound to "now" and forbids any skip.
        let mut bound = u64::MAX;
        for r in &self.routers {
            for &busy in &r.output_busy_until {
                if busy >= self.cycle && busy < bound {
                    bound = busy;
                }
            }
        }
        if let Some(f) = self.faults.as_deref() {
            for s in &f.plan.routers {
                if s.onset >= self.cycle {
                    bound = bound.min(s.onset);
                }
                let end = s.onset.saturating_add(s.duration);
                if end >= self.cycle {
                    bound = bound.min(end);
                }
            }
            if let Some(&(onset, _)) = f.pending_dead.get(f.next_dead) {
                bound = bound.min(onset);
            }
        }
        bound
    }

    /// Event-driven fast-forward: advances the clock to
    /// `min(limit, quiet_until)` in one jump. Only spans the last step
    /// proved inert are skippable, so this is bit-identical to stepping
    /// cycle by cycle: no arbitration would run (the arbiters' round-robin
    /// cursors are untouched, exactly as under the reference engine), no
    /// packet moves or dies, no RNG is drawn (fault draws happen only on
    /// moves), stall charges are batch-replicated per waiting head, and
    /// every crossed window boundary is closed at its exact cycle. A no-op
    /// when the event engine is disabled ([`set_event_skip_enabled`]).
    pub fn skip_idle_to(&mut self, limit: u64) {
        if !event_skip_enabled() {
            return;
        }
        let target = limit.min(self.quiet_until);
        if target <= self.cycle {
            return;
        }
        let n = target - self.cycle;
        // Replicate the per-cycle stall attribution for the skipped span.
        // The classification inputs are constant across it (that is what
        // `activity_bound` guarantees), so one classification per head,
        // charged n times, matches n per-cycle passes byte for byte.
        if let Some(mut rec) = self.recorder.take() {
            let faults = self.faults.take();
            for r in 0..self.routers.len() {
                for in_port in 0..NUM_PORTS {
                    for vc in 0..self.cfg.vcs {
                        let Some(head) = self.routers[r].inputs[in_port][vc].front() else {
                            continue;
                        };
                        let kind = self.classify_stall(faults.as_deref(), r, in_port, vc, head);
                        rec.charge_n(head.id, kind, n);
                    }
                }
            }
            self.faults = faults;
            self.recorder = Some(rec);
        }
        // Close every window boundary the span crosses, at its own cycle
        // stamp, with the (frozen) queue depths the reference engine would
        // have sampled.
        let mut w = (self.cycle / WINDOW_CYCLES + 1) * WINDOW_CYCLES;
        while w <= target {
            self.cycle = w;
            self.close_window();
            w += WINDOW_CYCLES;
        }
        self.cycle = target;
    }

    /// Whether the mesh is fully drained with respect to a run ending at
    /// `target`: nothing buffered and no dead-link onset left to fire before
    /// then. Remaining cycles can only close empty windows.
    fn is_drained(&self, target: u64) -> bool {
        self.occupancy == 0
            && self.faults.as_deref().is_none_or(|f| {
                f.pending_dead
                    .get(f.next_dead)
                    .is_none_or(|&(onset, _)| onset >= target)
            })
    }

    /// Runs `cycles` steps on the event-driven engine: cycle-exact stepping
    /// whenever the mesh can act, next-event skips across spans proven
    /// inert. Bit-identical to [`Mesh::run_cycle_exact`] on every
    /// observable.
    pub fn run(&mut self, cycles: u64) {
        let target = self.cycle.saturating_add(cycles);
        while self.cycle < target {
            self.skip_idle_to(target);
            if self.cycle < target {
                self.step();
            }
        }
    }

    /// The reference engine: every cycle is stepped, none skipped. Kept for
    /// differential testing and benchmarking against [`Mesh::run`].
    pub fn run_cycle_exact(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs up to `max_cycles` cycles, stopping the moment the mesh is
    /// quiescent (nothing buffered, no fault onset pending before the
    /// bound). The clock and statistics end bit-identical to
    /// `run(max_cycles)` — once drained, the remaining cycles can only close
    /// empty telemetry windows, which are fast-forwarded here — so fixed
    /// drain loops get quiescence detection for free. Returns whether the
    /// mesh drained within the bound.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        let target = self.cycle.saturating_add(max_cycles);
        while self.cycle < target {
            if self.is_drained(target) {
                let mut w = (self.cycle / WINDOW_CYCLES + 1) * WINDOW_CYCLES;
                while w <= target {
                    self.cycle = w;
                    self.close_window();
                    w += WINDOW_CYCLES;
                }
                self.cycle = target;
                return true;
            }
            self.skip_idle_to(target);
            if self.cycle < target {
                self.step();
            }
        }
        self.is_drained(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Mesh {
        Mesh::new(MeshConfig {
            width: 3,
            height: 3,
            buffer_packets: 4,
            arbiter: ArbiterKind::RoundRobin,
            route_order: RouteOrder::Xy,
            vcs: 1,
        })
    }

    #[test]
    fn packet_reaches_destination() {
        let mut m = small();
        assert!(m.try_inject(NodeId::new(0), NodeId::new(8), 1, PacketClass::Request));
        m.run(20);
        let ejected = m.drain_ejected();
        assert_eq!(ejected.len(), 1);
        assert_eq!(ejected[0].dst, NodeId::new(8));
        assert_eq!(m.stats().delivered_total, 1);
        // 0 -> 8 is 4 hops; latency at least that.
        assert!(m.stats().mean_latency() >= 4.0);
    }

    #[test]
    fn self_traffic_ejects_locally() {
        let mut m = small();
        m.try_inject(NodeId::new(4), NodeId::new(4), 1, PacketClass::Request);
        m.run(3);
        assert_eq!(m.stats().delivered_total, 1);
    }

    #[test]
    fn full_buffer_rejects_injection() {
        let mut m = small();
        for _ in 0..4 {
            assert!(m.try_inject(NodeId::new(0), NodeId::new(2), 1, PacketClass::Request));
        }
        assert!(!m.try_inject(NodeId::new(0), NodeId::new(2), 1, PacketClass::Request));
    }

    #[test]
    fn wormhole_serialisation_slows_long_packets() {
        // Two 4-flit packets over the same link take ≥ 8 cycles of link time.
        let mut m = small();
        m.try_inject(NodeId::new(0), NodeId::new(2), 4, PacketClass::Reply);
        m.try_inject(NodeId::new(0), NodeId::new(2), 4, PacketClass::Reply);
        m.run(6);
        assert!(m.stats().delivered_total <= 1);
        m.run(20);
        assert_eq!(m.stats().delivered_total, 2);
    }

    #[test]
    fn disabled_ejection_backpressures() {
        let mut m = small();
        m.set_ejection_enabled(NodeId::new(2), false);
        for _ in 0..3 {
            m.try_inject(NodeId::new(0), NodeId::new(2), 1, PacketClass::Request);
        }
        m.run(50);
        assert_eq!(m.stats().delivered_total, 0);
        m.set_ejection_enabled(NodeId::new(2), true);
        m.run(10);
        assert_eq!(m.stats().delivered_total, 3);
    }

    #[test]
    fn dor_routing_is_deadlock_free_under_load() {
        let mut m = Mesh::new(MeshConfig::paper_6x6(ArbiterKind::RoundRobin));
        // Saturating all-to-one traffic; everything must still drain.
        for src in 0..36u32 {
            for _ in 0..2 {
                let _ = m.try_inject(NodeId::new(src), NodeId::new(0), 2, PacketClass::Request);
            }
        }
        assert!(m.drain(2000), "all-to-one load must drain within the bound");
        let injected: u64 = m.stats().injected_by_src.iter().sum();
        assert_eq!(m.stats().delivered_total, injected);
    }

    #[test]
    fn latency_quantiles_bracket_the_mean() {
        let mut m = Mesh::new(MeshConfig::paper_6x6(ArbiterKind::RoundRobin));
        for cycle in 0..2000u64 {
            for src in 6..36u32 {
                let _ = m.try_inject(
                    NodeId::new(src),
                    NodeId::new((cycle % 6) as u32),
                    1,
                    PacketClass::Request,
                );
            }
            m.step();
            m.drain_ejected();
        }
        let s = m.stats();
        let p50 = s.latency_quantile(0.5);
        let p99 = s.latency_quantile(0.99);
        assert!(p50 > 0.0);
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
        assert!(
            s.latency_quantile(0.0) <= s.mean_latency()
                && s.mean_latency() <= s.latency_quantile(1.0),
            "mean {} outside [{}, {}]",
            s.mean_latency(),
            s.latency_quantile(0.0),
            s.latency_quantile(1.0)
        );
    }

    #[test]
    fn empty_stats_quantile_is_zero() {
        let m = small();
        assert_eq!(m.stats().latency_quantile(0.99), 0.0);
    }

    #[test]
    fn stats_reset_keeps_packets_flowing() {
        let mut m = small();
        m.try_inject(NodeId::new(0), NodeId::new(8), 1, PacketClass::Request);
        m.run(2);
        m.reset_stats();
        m.run(20);
        assert_eq!(m.stats().delivered_total, 1);
        assert_eq!(m.stats().injected_by_src[0], 0);
    }

    /// Jams the request path 0 → 2 (ejection disabled at 2) until injection
    /// back-pressures at the source, then returns the mesh.
    fn jammed_request_path(vcs: usize) -> Mesh {
        let mut m = Mesh::new(MeshConfig {
            width: 3,
            height: 3,
            buffer_packets: 2,
            arbiter: ArbiterKind::RoundRobin,
            route_order: RouteOrder::Xy,
            vcs,
        });
        m.set_ejection_enabled(NodeId::new(2), false);
        let mut rejected = false;
        for _ in 0..64 {
            if !m.try_inject(NodeId::new(0), NodeId::new(2), 1, PacketClass::Request) {
                rejected = true;
                break;
            }
            m.step();
        }
        m.run(10);
        assert!(rejected, "request path should back-pressure to the source");
        assert!(
            !m.try_inject(NodeId::new(0), NodeId::new(2), 1, PacketClass::Request),
            "request VC must stay full"
        );
        m
    }

    #[test]
    fn virtual_channels_isolate_classes() {
        // With a jammed request VC, replies (their own VC) still inject and
        // flow — the isolation that lets one physical network carry both
        // classes without protocol deadlock.
        let mut m = jammed_request_path(2);
        let delivered_before = m.stats().delivered_total;
        assert!(m.try_inject(NodeId::new(0), NodeId::new(8), 1, PacketClass::Reply));
        m.run(30);
        assert_eq!(m.stats().delivered_total, delivered_before + 1);
    }

    #[test]
    fn single_vc_blocks_both_classes() {
        // Same jam with one VC: the reply cannot even enter the network.
        let mut m = jammed_request_path(1);
        assert!(!m.try_inject(NodeId::new(0), NodeId::new(8), 1, PacketClass::Reply));
    }

    #[test]
    fn link_flits_track_forwarded_traffic() {
        let mut m = small();
        m.try_inject(NodeId::new(0), NodeId::new(2), 2, PacketClass::Request);
        m.run(20);
        let s = m.stats();
        // 0 → 2 goes east twice then ejects: three links each carried 2 flits.
        assert_eq!(s.link_flits.iter().sum::<u64>(), 6);
        assert_eq!(s.link_flits[EAST], 2, "east out of router 0");
        assert_eq!(s.link_flits[NUM_PORTS + EAST], 2, "east out of router 1");
        assert_eq!(s.link_flits[2 * NUM_PORTS + LOCAL], 2, "ejection at 2");
        let (router, port, flits) = s.busiest_link().unwrap();
        assert_eq!(flits, 2);
        assert!(port == EAST || port == LOCAL, "router {router} port {port}");
    }

    #[test]
    fn peak_window_demand_sees_bursts() {
        let mut m = small();
        for _ in 0..4 {
            m.try_inject(NodeId::new(0), NodeId::new(2), 4, PacketClass::Request);
        }
        m.run(WINDOW_CYCLES * 2);
        assert!(
            m.stats().peak_window_flits >= 4,
            "{}",
            m.stats().peak_window_flits
        );
        m.reset_stats();
        assert_eq!(m.stats().peak_window_flits, 0);
    }

    #[test]
    fn telemetry_samples_queue_depths_and_exports_metrics() {
        use gnoc_telemetry::{MemorySink, Telemetry, TelemetryHandle};

        let sink = MemorySink::new();
        let mut m = Mesh::new(MeshConfig::paper_6x6(ArbiterKind::RoundRobin));
        m.set_telemetry(TelemetryHandle::attach(Telemetry::with_sink(Box::new(
            sink.clone(),
        ))));
        // Keep a hotspot congested across several sample windows.
        for cycle in 0..(WINDOW_CYCLES * 4) {
            let _ = m.try_inject(
                NodeId::new((cycle % 36) as u32),
                NodeId::new(0),
                2,
                PacketClass::Request,
            );
            m.step();
        }
        let reg = m.telemetry().snapshot_registry().unwrap();
        assert!(reg.counter("noc.queue_samples") > 0);
        assert!(reg.hist("noc.router_queue_depth").unwrap().count() > 0);
        let events = sink.snapshot();
        assert!(!events.is_empty(), "congestion should produce depth events");
        assert!(events.iter().all(|e| e.subsystem == "noc"));

        let mut out = gnoc_telemetry::MetricRegistry::new();
        m.export_metrics(&mut out);
        assert!(out.counter("noc.delivered") > 0);
        assert!(out.counter("noc.flits") > 0);
        assert!(out.counter("noc.arbiter.grants") >= out.counter("noc.delivered"));
        assert!(out.gauge("noc.latency.mean").unwrap() > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_injection_rejected() {
        let mut m = small();
        let _ = m.try_inject(NodeId::new(0), NodeId::new(99), 1, PacketClass::Request);
    }

    /// Uniform random-ish deterministic traffic for fault tests.
    fn drive(m: &mut Mesh, cycles: u64) {
        for cycle in 0..cycles {
            let src = (cycle * 7 + 1) % 9;
            let dst = (cycle * 5 + 3) % 9;
            let _ = m.try_inject(
                NodeId::new(src as u32),
                NodeId::new(dst as u32),
                1,
                PacketClass::Request,
            );
            m.step();
        }
        m.drain(200);
    }

    #[test]
    fn benign_fault_plan_is_bit_identical_to_no_plan() {
        let mut base = small();
        drive(&mut base, 500);

        let mut faulted = small();
        faulted
            .apply_fault_plan(&gnoc_faults::FaultPlan::none())
            .unwrap();
        drive(&mut faulted, 500);

        assert_eq!(base.stats(), faulted.stats());
        assert_eq!(base.drain_ejected().len(), faulted.drain_ejected().len());
        assert!(faulted.drain_lost().is_empty());
        assert_eq!(faulted.dead_links_active(), 0);
    }

    #[test]
    fn double_plan_application_is_rejected() {
        let mut m = small();
        m.apply_fault_plan(&gnoc_faults::FaultPlan::none()).unwrap();
        assert_eq!(
            m.apply_fault_plan(&gnoc_faults::FaultPlan::none()),
            Err(crate::error::NocError::PlanAlreadyApplied)
        );
    }

    #[test]
    fn stalled_router_freezes_then_recovers() {
        let mut plan = gnoc_faults::FaultPlan::none();
        plan.routers = vec![gnoc_faults::RouterStall {
            router: 1,
            onset: 0,
            duration: 100,
        }];
        let mut m = small();
        m.apply_fault_plan(&plan).unwrap();
        // 0 → 2 routes through router 1, which is stalled for 100 cycles.
        m.try_inject(NodeId::new(0), NodeId::new(2), 1, PacketClass::Request);
        m.run(80);
        assert_eq!(m.stats().delivered_total, 0, "stall must hold the packet");
        m.run(100);
        assert_eq!(m.stats().delivered_total, 1, "stall must end on schedule");
    }

    #[test]
    fn mid_run_link_death_reroutes_in_flight_traffic() {
        let mut plan = gnoc_faults::FaultPlan::none();
        // The 1→2 link dies at cycle 40 (and its reverse, for symmetry).
        for (router, dir) in [
            (1, gnoc_faults::Direction::East),
            (2, gnoc_faults::Direction::West),
        ] {
            plan.links.push(gnoc_faults::LinkFault {
                router,
                dir,
                kind: gnoc_faults::LinkFaultKind::Dead,
                onset: 40,
            });
        }
        let mut m = small();
        m.apply_fault_plan(&plan).unwrap();
        assert_eq!(m.stats().reroutes, 0, "future onset must not reroute yet");
        // Keep traffic flowing across the doomed link before and after death.
        for cycle in 0..200u64 {
            let _ = m.try_inject(NodeId::new(0), NodeId::new(2), 1, PacketClass::Request);
            m.step();
            if cycle == 39 {
                assert_eq!(m.dead_links_active(), 0);
            }
        }
        m.run(300);
        assert_eq!(m.stats().reroutes, 1);
        assert_eq!(m.dead_links_active(), 2);
        // Everything injected still arrives — rerouted around the dead edge.
        let injected: u64 = m.stats().injected_by_src.iter().sum();
        assert_eq!(
            m.stats().delivered_total + m.stats().dropped_unroutable,
            injected
        );
        assert_eq!(m.stats().dropped_unroutable, 0, "2 stays reachable");
    }

    #[test]
    fn unreachable_destination_reports_losses() {
        // Kill every link around router 8 (corner: West and South inbound /
        // outbound) so it is isolated — but that would disconnect the mesh,
        // which validation rejects. Instead kill one direction only:
        // packets can leave 8 but never enter it.
        let mut plan = gnoc_faults::FaultPlan::none();
        for (router, dir) in [
            (7, gnoc_faults::Direction::East),
            (5, gnoc_faults::Direction::North),
        ] {
            plan.links.push(gnoc_faults::LinkFault {
                router,
                dir,
                kind: gnoc_faults::LinkFaultKind::Dead,
                onset: 0,
            });
        }
        let mut m = small();
        m.apply_fault_plan(&plan).unwrap();
        m.try_inject(NodeId::new(0), NodeId::new(8), 1, PacketClass::Request);
        m.run(100);
        assert_eq!(m.stats().delivered_total, 0);
        assert_eq!(m.stats().dropped_unroutable, 1);
        let lost = m.drain_lost();
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].1, crate::error::LossReason::Unroutable);
        assert_eq!(lost[0].0.dst, NodeId::new(8));
    }

    /// Funnels contending traffic at one hotspot so serialization,
    /// contention, and queueing all occur, then checks the recorder's hard
    /// identity on every delivered message.
    #[test]
    fn flight_recorder_components_sum_to_latency_under_contention() {
        let mut m = small();
        m.attach_flight_recorder();
        for src in [0u32, 2, 6, 8, 1, 3, 5, 7] {
            for _ in 0..3 {
                m.try_inject(NodeId::new(src), NodeId::new(4), 3, PacketClass::Request);
            }
        }
        assert!(m.drain(2_000));
        assert_eq!(m.stats().delivered_total, 24);
        let rec = m.take_flight_recorder().expect("recorder attached");
        assert_eq!(rec.open_count(), 0, "quiescent run leaves nothing open");
        assert_eq!(rec.finished().len(), 24);
        let mut saw_stall = false;
        for msg in rec.finished() {
            assert!(msg.delivered);
            assert_eq!(
                msg.components_sum(),
                msg.latency(),
                "msg {} decomposition must be exact",
                msg.id
            );
            saw_stall |= msg.stalls().total() > 0;
        }
        assert!(saw_stall, "a 24-packet hotspot must stall someone");
    }

    /// The recorder observes but cannot perturb: identical traffic with and
    /// without it produces bit-identical statistics and ejection order.
    #[test]
    fn recorded_run_is_bit_identical_to_bare_run() {
        let run = |record: bool| {
            let mut m = small();
            if record {
                m.attach_flight_recorder();
            }
            for i in 0..40u32 {
                m.try_inject(
                    NodeId::new(i % 9),
                    NodeId::new((i * 7 + 2) % 9),
                    1 + (i % 3),
                    PacketClass::Request,
                );
            }
            m.run(2_000);
            (m.stats().clone(), m.drain_ejected())
        };
        assert_eq!(run(false), run(true));
    }

    /// Messages dropped by faults get closed lifecycle records with the
    /// loss reason, and the recorder survives phase-0 drops.
    #[test]
    fn flight_recorder_captures_losses() {
        let mut plan = gnoc_faults::FaultPlan::none();
        plan.seed = 5;
        plan.links = vec![gnoc_faults::LinkFault {
            router: 0,
            dir: gnoc_faults::Direction::East,
            kind: gnoc_faults::LinkFaultKind::Flaky { drop_prob: 1.0 },
            onset: 0,
        }];
        let mut m = small();
        m.apply_fault_plan(&plan).unwrap();
        m.attach_flight_recorder();
        m.try_inject(NodeId::new(0), NodeId::new(2), 1, PacketClass::Request);
        m.run(50);
        let rec = m.take_flight_recorder().unwrap();
        assert_eq!(rec.finished().len(), 1);
        let msg = &rec.finished()[0];
        assert!(!msg.delivered);
        assert_eq!(msg.loss.as_deref(), Some("FlakyLink"));
    }

    /// A plan with stalls, a mid-run dead link, and flaky drops, driven by
    /// interleaved injections — the broadest in-crate state space to
    /// differentiate the engines on.
    fn contentious_faulted_mesh() -> Mesh {
        let mut plan = gnoc_faults::FaultPlan::none();
        plan.seed = 11;
        plan.links = vec![
            gnoc_faults::LinkFault {
                router: 1,
                dir: gnoc_faults::Direction::East,
                kind: gnoc_faults::LinkFaultKind::Dead,
                onset: 150,
            },
            gnoc_faults::LinkFault {
                router: 2,
                dir: gnoc_faults::Direction::West,
                kind: gnoc_faults::LinkFaultKind::Dead,
                onset: 150,
            },
            gnoc_faults::LinkFault {
                router: 3,
                dir: gnoc_faults::Direction::North,
                kind: gnoc_faults::LinkFaultKind::Flaky { drop_prob: 0.2 },
                onset: 40,
            },
        ];
        plan.routers = vec![gnoc_faults::RouterStall {
            router: 4,
            onset: 90,
            duration: 300,
        }];
        let mut m = small();
        m.attach_flight_recorder();
        m.apply_fault_plan(&plan).unwrap();
        for i in 0..60u32 {
            m.try_inject(
                NodeId::new(i % 9),
                NodeId::new((i * 7 + 2) % 9),
                1 + (i % 3),
                PacketClass::Request,
            );
        }
        m
    }

    /// The event engine (skips enabled) and the reference engine (plain
    /// stepping) must agree on every observable, including spans dominated
    /// by stall windows and timeout-style idle gaps.
    #[test]
    fn event_engine_is_bit_identical_to_cycle_exact() {
        let run = |event: bool| {
            let mut m = contentious_faulted_mesh();
            if event {
                // `run` skips only spans `step` proved inert, so the
                // comparison is valid regardless of the global toggle.
                m.run(5_000);
            } else {
                m.run_cycle_exact(5_000);
            }
            let rec = m.take_flight_recorder().unwrap();
            (
                m.cycle(),
                m.stats().clone(),
                m.drain_ejected(),
                m.drain_lost(),
                rec.finished().to_vec(),
            )
        };
        let (ec, es, ee, el, er) = run(true);
        let (cc, cs, ce, cl, cr) = run(false);
        assert_eq!(ec, cc);
        assert_eq!(es, cs);
        assert_eq!(ee, ce);
        assert_eq!(el, cl);
        assert_eq!(er.len(), cr.len());
        for (a, b) in er.iter().zip(&cr) {
            assert_eq!(a.stalls(), b.stalls(), "msg {} stall attribution", a.id);
            assert_eq!(a.latency(), b.latency(), "msg {} latency", a.id);
        }
    }

    /// Regression for the fixed-iteration drain bug: `drain` early-exits at
    /// quiescence yet leaves clock, stats, and ejections bit-identical to
    /// the fixed-bound `run` it replaces.
    #[test]
    fn drain_is_bit_identical_to_fixed_run() {
        let mut by_run = contentious_faulted_mesh();
        let mut by_drain = by_run.clone();
        by_run.run(10_000);
        assert!(
            by_drain.drain(10_000),
            "traffic must drain inside the bound"
        );
        assert_eq!(by_run.cycle(), by_drain.cycle());
        assert_eq!(by_run.stats(), by_drain.stats());
        assert_eq!(by_run.drain_ejected(), by_drain.drain_ejected());
        assert_eq!(by_run.in_flight(), 0);
        assert_eq!(by_drain.in_flight(), 0);
    }

    /// `drain` must not early-exit past a pending fault onset: the reroute
    /// (and its stats/trace side effects) still fires on schedule.
    #[test]
    fn drain_waits_for_pending_onsets() {
        let mut plan = gnoc_faults::FaultPlan::none();
        for (router, dir) in [
            (1, gnoc_faults::Direction::East),
            (2, gnoc_faults::Direction::West),
        ] {
            plan.links.push(gnoc_faults::LinkFault {
                router,
                dir,
                kind: gnoc_faults::LinkFaultKind::Dead,
                onset: 5_000,
            });
        }
        let mut m = small();
        m.apply_fault_plan(&plan).unwrap();
        assert!(m.drain(10_000));
        assert_eq!(m.stats().reroutes, 1, "the onset inside the bound fired");
        assert_eq!(m.cycle(), 10_000);
    }

    /// Two meshes sharing a fault plan via `Arc` intern one route table:
    /// the fix for per-row plan clones and per-onset BFS recomputation.
    #[test]
    fn shared_plans_intern_route_tables() {
        let mut plan = gnoc_faults::FaultPlan::none();
        for (router, dir) in [
            (4, gnoc_faults::Direction::East),
            (5, gnoc_faults::Direction::West),
        ] {
            plan.links.push(gnoc_faults::LinkFault {
                router,
                dir,
                kind: gnoc_faults::LinkFaultKind::Dead,
                onset: 0,
            });
        }
        let plan = std::sync::Arc::new(plan);
        let build = |plan: &std::sync::Arc<gnoc_faults::FaultPlan>| {
            let mut m = small();
            m.apply_fault_plan_shared(plan.clone()).unwrap();
            m
        };
        let a = build(&plan);
        let b = build(&plan);
        let ra = a.faults.as_deref().unwrap().routes.as_ref().unwrap();
        let rb = b.faults.as_deref().unwrap().routes.as_ref().unwrap();
        assert!(
            std::sync::Arc::ptr_eq(ra, rb),
            "same dead set must share one interned table"
        );
        assert!(std::sync::Arc::ptr_eq(
            &a.faults.as_deref().unwrap().plan,
            &b.faults.as_deref().unwrap().plan
        ));
    }

    /// O(1) `in_flight` stays consistent through injection, movement,
    /// ejection, and fault losses (the debug assertion inside `in_flight`
    /// cross-checks against the queues on every call).
    #[test]
    fn occupancy_tracks_queues_under_faults() {
        let mut m = contentious_faulted_mesh();
        let injected: u64 = m.stats().injected_by_src.iter().sum();
        assert_eq!(m.in_flight() as u64, injected);
        for _ in 0..600 {
            m.step();
            let _ = m.in_flight(); // debug_assert cross-check each cycle
        }
        m.drain(10_000);
        assert_eq!(m.in_flight(), 0);
    }
}
