//! Cycle-level single-hop crossbar, the contrast to the 2D mesh.
//!
//! The paper argues (Implication #6, Section VI-C) that real GPU NoCs are
//! organised as hierarchical crossbars, which provide *uniform* bandwidth to
//! every node regardless of placement — something a multi-hop mesh cannot do
//! under locally fair arbitration. This model demonstrates that uniformity
//! with the same traffic used in the mesh experiment.

use crate::arbiter::{Arbiter, ArbiterKind};
use crate::packet::{NodeId, Packet, PacketClass};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of a [`Crossbar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossbarConfig {
    /// Number of input terminals (e.g. compute nodes).
    pub inputs: usize,
    /// Number of output terminals (e.g. memory controllers).
    pub outputs: usize,
    /// Packets each input queue can hold.
    pub buffer_packets: usize,
    /// Per-output arbitration policy.
    pub arbiter: ArbiterKind,
}

/// Per-simulation statistics, indexed by input terminal.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CrossbarStats {
    /// Packets delivered per source input.
    pub delivered_by_src: Vec<u64>,
    /// Packets injected per source input.
    pub injected_by_src: Vec<u64>,
    /// Total delivered.
    pub delivered_total: u64,
    /// Latency sum over delivered packets.
    pub latency_sum: u64,
}

impl CrossbarStats {
    /// Mean packet latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered_total == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered_total as f64
        }
    }
}

/// A single-stage input-queued crossbar.
#[derive(Debug, Clone)]
pub struct Crossbar {
    cfg: CrossbarConfig,
    queues: Vec<VecDeque<Packet>>,
    arbiters: Vec<Arbiter>,
    output_busy_until: Vec<u64>,
    cycle: u64,
    next_id: u64,
    ejected: Vec<Packet>,
    stats: CrossbarStats,
}

impl Crossbar {
    /// Builds an idle crossbar.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or buffer size is zero.
    pub fn new(cfg: CrossbarConfig) -> Self {
        assert!(
            cfg.inputs > 0 && cfg.outputs > 0,
            "crossbar must be non-empty"
        );
        assert!(
            cfg.buffer_packets > 0,
            "buffers must hold at least 1 packet"
        );
        Self {
            cfg,
            queues: vec![VecDeque::new(); cfg.inputs],
            arbiters: (0..cfg.outputs)
                .map(|_| Arbiter::new(cfg.arbiter))
                .collect(),
            output_busy_until: vec![0; cfg.outputs],
            cycle: 0,
            next_id: 0,
            ejected: Vec::new(),
            stats: CrossbarStats {
                delivered_by_src: vec![0; cfg.inputs],
                injected_by_src: vec![0; cfg.inputs],
                ..CrossbarStats::default()
            },
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CrossbarStats {
        &self.stats
    }

    /// Resets statistics without touching queued packets.
    pub fn reset_stats(&mut self) {
        self.stats = CrossbarStats {
            delivered_by_src: vec![0; self.cfg.inputs],
            injected_by_src: vec![0; self.cfg.inputs],
            ..CrossbarStats::default()
        };
    }

    /// Attempts to inject a packet from input `src` to output `dst`.
    pub fn try_inject(&mut self, src: NodeId, dst: NodeId, flits: u32, class: PacketClass) -> bool {
        assert!(src.index() < self.cfg.inputs, "src out of range");
        assert!(dst.index() < self.cfg.outputs, "dst out of range");
        if self.queues[src.index()].len() >= self.cfg.buffer_packets {
            return false;
        }
        self.queues[src.index()].push_back(Packet {
            id: self.next_id,
            src,
            dst,
            flits,
            birth: self.cycle,
            class,
        });
        self.next_id += 1;
        self.stats.injected_by_src[src.index()] += 1;
        true
    }

    /// Packets delivered since the last drain.
    pub fn drain_ejected(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.ejected)
    }

    /// Advances one cycle: each free output picks among the input-queue heads
    /// that target it.
    pub fn step(&mut self) {
        for out in 0..self.cfg.outputs {
            if self.output_busy_until[out] > self.cycle {
                continue;
            }
            let mut candidates: Vec<(usize, u64)> = Vec::new();
            for (input, q) in self.queues.iter().enumerate() {
                if let Some(head) = q.front() {
                    if head.dst.index() == out {
                        candidates.push((input, head.birth));
                    }
                }
            }
            if let Some(winner) = self.arbiters[out].pick(&candidates) {
                // Invariant: every candidate was a non-empty queue head.
                let Some(packet) = self.queues[winner].pop_front() else {
                    debug_assert!(false, "granted input queue is empty");
                    continue;
                };
                self.output_busy_until[out] = self.cycle + u64::from(packet.flits);
                self.stats.delivered_by_src[packet.src.index()] += 1;
                self.stats.delivered_total += 1;
                self.stats.latency_sum += self.cycle - packet.birth;
                self.ejected.push(packet);
            }
        }
        self.cycle += 1;
    }

    /// Runs `cycles` steps.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xbar() -> Crossbar {
        Crossbar::new(CrossbarConfig {
            inputs: 4,
            outputs: 2,
            buffer_packets: 4,
            arbiter: ArbiterKind::RoundRobin,
        })
    }

    #[test]
    fn single_packet_delivers_in_one_cycle() {
        let mut x = xbar();
        x.try_inject(NodeId::new(1), NodeId::new(0), 1, PacketClass::Request);
        x.step();
        assert_eq!(x.stats().delivered_total, 1);
        assert_eq!(x.stats().mean_latency(), 0.0);
    }

    #[test]
    fn output_contention_serialises() {
        let mut x = xbar();
        for i in 0..4 {
            x.try_inject(NodeId::new(i), NodeId::new(0), 1, PacketClass::Request);
        }
        x.run(2);
        assert_eq!(x.stats().delivered_total, 2);
        x.run(2);
        assert_eq!(x.stats().delivered_total, 4);
    }

    #[test]
    fn round_robin_is_fair_on_a_single_hop() {
        // The crossbar's key property: equal throughput per input under
        // sustained contention (no multi-hop merge tree to starve anyone).
        let mut x = xbar();
        for _ in 0..4000 {
            for i in 0..4 {
                let _ = x.try_inject(NodeId::new(i), NodeId::new(0), 1, PacketClass::Request);
            }
            x.step();
        }
        let d = &x.stats().delivered_by_src;
        let max = *d.iter().max().unwrap() as f64;
        let min = *d.iter().min().unwrap() as f64;
        assert!(max / min < 1.05, "crossbar unfairness {max}/{min}");
    }

    #[test]
    fn distinct_outputs_work_in_parallel() {
        let mut x = xbar();
        x.try_inject(NodeId::new(0), NodeId::new(0), 1, PacketClass::Request);
        x.try_inject(NodeId::new(1), NodeId::new(1), 1, PacketClass::Request);
        x.step();
        assert_eq!(x.stats().delivered_total, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_output_rejected() {
        let mut x = xbar();
        let _ = x.try_inject(NodeId::new(0), NodeId::new(5), 1, PacketClass::Request);
    }
}
