//! # gnoc-noc
//!
//! Cycle-level network-on-chip simulation for Section VI of *Uncovering Real
//! GPU NoC Characteristics* (MICRO 2024) — the architectural-implication
//! experiments that the paper itself runs in simulation:
//!
//! - [`Mesh`] — input-buffered 2D mesh with XY routing, wormhole link
//!   serialisation, back-pressure, and [`ArbiterKind::RoundRobin`] vs
//!   [`ArbiterKind::AgeBased`] output arbitration;
//! - [`Crossbar`] — the single-hop contrast that provides uniform bandwidth
//!   (Implication #6);
//! - [`run_fairness`] — the Fig. 23 throughput-fairness experiment;
//! - [`HierCrossbar`] — a cycle-level two-stage hierarchical crossbar with
//!   configurable uplink speedup, the organisation real GPUs use;
//! - [`loadcurve`] — offered-load vs latency/throughput sweeps;
//! - [`run_memsim`] — the Fig. 21 request/reply memory-utilisation
//!   experiment with a tunable NoC↔MEM reply interface;
//! - [`priorwork`] — the Fig. 22 "network wall" survey.
//!
//! ```
//! use gnoc_noc::{run_fairness, FairnessConfig, ArbiterKind};
//!
//! let rr = run_fairness(FairnessConfig::paper(ArbiterKind::RoundRobin), 0);
//! let age = run_fairness(FairnessConfig::paper(ArbiterKind::AgeBased), 0);
//! assert!(age.unfairness < rr.unfairness);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arbiter;
mod crossbar;
mod error;
mod hier;
pub mod loadcurve;
mod memsim;
mod mesh;
mod packet;
pub mod priorwork;
mod reliable;
mod traffic;

pub use arbiter::{Arbiter, ArbiterKind};
pub use crossbar::{Crossbar, CrossbarConfig, CrossbarStats};
pub use error::{LossReason, NocError};
pub use hier::{HierConfig, HierCrossbar};
pub use memsim::{
    run_memsim, run_memsim_shared, run_memsim_shared_traced, run_memsim_traced, MemSimConfig,
    MemSimResult,
};
pub use mesh::{
    event_skip_enabled, set_event_skip_enabled, Mesh, MeshConfig, MeshStats, RouteOrder, NUM_PORTS,
};
pub use packet::{NodeId, Packet, PacketClass};
pub use reliable::{ReliabilityStats, ReliableMesh, RetryConfig, TransferId, TransferOutcome};
pub use traffic::{
    run_fairness, run_fairness_recorded, run_fairness_traced, FairnessConfig, FairnessResult,
};
