//! Packets and node addressing for the cycle-level simulator.

use serde::{Deserialize, Serialize};

/// A node of the simulated network (router-attached terminal).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node id.
    pub const fn new(i: u32) -> Self {
        Self(i)
    }

    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Request/reply class of a packet (GPU NoCs run separate request and reply
/// networks; replies carry cache-line data and are several times larger).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketClass {
    /// Small read-request packet.
    Request,
    /// Large read-reply packet carrying line data.
    Reply,
}

impl PacketClass {
    /// The class's trace-format code (`gnoc-trace` events store this byte).
    #[must_use]
    pub fn trace_code(self) -> u8 {
        match self {
            Self::Request => 0,
            Self::Reply => 1,
        }
    }

    /// Inverse of [`PacketClass::trace_code`].
    #[must_use]
    pub fn from_trace_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::Request),
            1 => Some(Self::Reply),
            _ => None,
        }
    }
}

/// One packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id (monotonic per simulation).
    pub id: u64,
    /// Source terminal.
    pub src: NodeId,
    /// Destination terminal.
    pub dst: NodeId,
    /// Length in flits — the cycles the packet occupies a link.
    pub flits: u32,
    /// Cycle the packet was created (used by age-based arbitration and for
    /// latency statistics).
    pub birth: u64,
    /// Traffic class.
    pub class: PacketClass,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_display_and_index() {
        assert_eq!(NodeId::new(7).to_string(), "N7");
        assert_eq!(NodeId::new(7).index(), 7);
    }

    #[test]
    fn packets_are_plain_data() {
        let p = Packet {
            id: 1,
            src: NodeId::new(0),
            dst: NodeId::new(5),
            flits: 5,
            birth: 100,
            class: PacketClass::Reply,
        };
        let q = p;
        assert_eq!(p, q);
    }
}
