//! Request/reply memory-system simulation — the Fig. 21 experiment.
//!
//! GPU NoCs are many-to-few-to-many: many compute nodes send small read
//! requests to few memory controllers, which return large replies. Prior work
//! identified the *reply* NoC↔MEM interface as the bottleneck; when that
//! interface is under-provisioned, reply congestion back-pressures the memory
//! controller, DRAM sits idle, and per-channel utilisation fluctuates around
//! a low average (≈ 20 % in the paper's Fig. 21) even though the offered load
//! could saturate it. Provisioning the reply interface (Implication #4/#5)
//! restores high utilisation.
//!
//! This driver deliberately stays on the cycle-exact path rather than the
//! event core's next-event skip (DESIGN.md §8.2): every cycle draws a
//! Bernoulli injection sample per compute node, so no span is ever
//! provably quiet — skipping would desynchronize the RNG stream and change
//! results. The workload is also saturating by design (the whole point is
//! measuring congestion), so there is no idle tail to win back; the event
//! core's gains live in the retry/backoff and drain phases of the reliable
//! and fabric layers above.

use crate::arbiter::ArbiterKind;
use crate::mesh::{Mesh, MeshConfig, RouteOrder};
use crate::packet::{NodeId, PacketClass};
use gnoc_telemetry::{TelemetryHandle, TraceEvent, SUBSYSTEM_NOC};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of the request/reply memory simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemSimConfig {
    /// Geometry shared by the request and reply networks.
    pub mesh: MeshConfig,
    /// Flits per read-request packet.
    pub request_flits: u32,
    /// Flits per read-reply packet (data). The reply interface bandwidth is
    /// `1/reply_flits` packets per cycle per MC — the knob that creates or
    /// removes the "network wall".
    pub reply_flits: u32,
    /// DRAM service cycles per request.
    pub dram_service_cycles: u64,
    /// Replies the MC can hold waiting for reply-network injection before it
    /// stops accepting requests (back-pressure threshold).
    pub mc_reply_queue: usize,
    /// Offered load per compute node (requests/cycle).
    pub inject_rate: f64,
    /// Warm-up cycles excluded from the timeline.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Utilisation-timeline window, cycles.
    pub window: u64,
}

impl MemSimConfig {
    /// A configuration mirroring prior-work simulators: 4-flit replies over
    /// the same channel width as 1-flit requests — reply-interface-bound.
    pub fn underprovisioned() -> Self {
        Self {
            mesh: MeshConfig::paper_6x6(ArbiterKind::RoundRobin),
            request_flits: 1,
            reply_flits: 4,
            dram_service_cycles: 1,
            mc_reply_queue: 4,
            inject_rate: 0.9,
            warmup: 2_000,
            measure: 12_000,
            window: 200,
        }
    }

    /// The same system with a reply interface wide enough that replies take a
    /// single flit — the properly provisioned baseline the paper argues for.
    pub fn provisioned() -> Self {
        Self {
            reply_flits: 1,
            ..Self::underprovisioned()
        }
    }
}

/// Result of a memory-system simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemSimResult {
    /// Per-window DRAM utilisation of channel 0 (the paper plots one
    /// channel over time).
    pub utilization_timeline: Vec<f64>,
    /// Mean DRAM utilisation across all channels and the whole measurement.
    pub mean_utilization: f64,
    /// Replies delivered back to compute nodes.
    pub replies_delivered: u64,
    /// Requests injected by compute nodes.
    pub requests_injected: u64,
}

struct MemoryController {
    node: NodeId,
    pending: VecDeque<(NodeId, u64)>, // (requester, request id)
    dram_busy_until: u64,
    reply_queue: VecDeque<NodeId>,
    busy_cycles_window: u64,
    busy_cycles_total: u64,
}

/// Runs the request/reply simulation on **two physical networks** (the
/// conventional GPU organisation). Bottom-row mesh nodes host the MCs.
pub fn run_memsim(cfg: MemSimConfig, seed: u64) -> MemSimResult {
    run_memsim_traced(cfg, seed, TelemetryHandle::disabled())
}

/// [`run_memsim`] with a telemetry handle attached to both networks: mesh
/// queue-depth samples, MC reply-queue back-pressure stall counters
/// (`noc.memsim.mc_backpressure_stalls`), reply-interface injection stalls,
/// per-window utilisation trace events, and the meshes' exported metrics all
/// land on the handle.
pub fn run_memsim_traced(cfg: MemSimConfig, seed: u64, telemetry: TelemetryHandle) -> MemSimResult {
    let mut req_net = Mesh::new(cfg.mesh);
    // The reply network routes Y-first so that replies leaving the MC row
    // fan out over the columns instead of all funnelling along row 0.
    let mut reply_net = Mesh::new(MeshConfig {
        route_order: RouteOrder::Yx,
        ..cfg.mesh
    });
    req_net.set_telemetry(telemetry.clone());
    reply_net.set_telemetry(telemetry.clone());
    run_memsim_on(cfg, seed, req_net, reply_net, telemetry)
}

/// Runs the request/reply simulation on **one physical network** with two
/// virtual channels (requests on VC 0, replies on VC 1) — a cheaper
/// organisation where both classes share every link's bandwidth. The VC
/// split prevents protocol deadlock; the shared links mean reply data
/// steals request bandwidth, so utilisation is generally at or below the
/// two-network configuration.
pub fn run_memsim_shared(cfg: MemSimConfig, seed: u64) -> MemSimResult {
    run_memsim_shared_traced(cfg, seed, TelemetryHandle::disabled())
}

/// [`run_memsim_shared`] with a telemetry handle attached to the shared
/// network (same instrumentation as [`run_memsim_traced`]).
pub fn run_memsim_shared_traced(
    cfg: MemSimConfig,
    seed: u64,
    telemetry: TelemetryHandle,
) -> MemSimResult {
    let mut shared = Mesh::new(MeshConfig { vcs: 2, ..cfg.mesh });
    shared.set_telemetry(telemetry.clone());
    run_memsim_shared_impl(cfg, seed, shared, telemetry)
}

fn run_memsim_on(
    cfg: MemSimConfig,
    seed: u64,
    mut req_net: Mesh,
    mut reply_net: Mesh,
    telemetry: TelemetryHandle,
) -> MemSimResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let width = cfg.mesh.width;
    let n = cfg.mesh.num_nodes();
    let compute: Vec<NodeId> = (width as u32..n as u32).map(NodeId::new).collect();
    let mut mcs: Vec<MemoryController> = (0..width as u32)
        .map(|i| MemoryController {
            node: NodeId::new(i),
            pending: VecDeque::new(),
            dram_busy_until: 0,
            reply_queue: VecDeque::new(),
            busy_cycles_window: 0,
            busy_cycles_total: 0,
        })
        .collect();

    let mut timeline = Vec::new();
    let mut requests_injected = 0u64;
    let mut replies_delivered = 0u64;
    let mut mc_backpressure_stalls = 0u64;
    let mut reply_inject_stalls = 0u64;
    let total = cfg.warmup + cfg.measure;

    for cycle in 0..total {
        let measuring = cycle >= cfg.warmup;

        // Compute nodes issue requests.
        for &src in &compute {
            if rng.gen::<f64>() < cfg.inject_rate {
                let dst = NodeId::new(rng.gen_range(0..width) as u32);
                if req_net.try_inject(src, dst, cfg.request_flits, PacketClass::Request)
                    && measuring
                {
                    requests_injected += 1;
                }
            }
        }

        // MC back-pressure: stop accepting requests when the reply queue is
        // full (this is the reply-interface bottleneck feeding backwards).
        for mc in &mcs {
            let accepting = mc.reply_queue.len() < cfg.mc_reply_queue;
            req_net.set_ejection_enabled(mc.node, accepting);
            if !accepting && measuring {
                mc_backpressure_stalls += 1;
            }
        }

        req_net.step();
        for pkt in req_net.drain_ejected() {
            let mc = &mut mcs[pkt.dst.index()];
            mc.pending.push_back((pkt.src, pkt.id));
        }

        // DRAM service + reply generation.
        for mc in &mut mcs {
            if mc.dram_busy_until > cycle {
                if measuring {
                    mc.busy_cycles_window += 1;
                    mc.busy_cycles_total += 1;
                }
                continue;
            }
            if mc.reply_queue.len() < cfg.mc_reply_queue {
                if let Some((requester, _)) = mc.pending.pop_front() {
                    mc.dram_busy_until = cycle + cfg.dram_service_cycles;
                    mc.reply_queue.push_back(requester);
                    if measuring {
                        mc.busy_cycles_window += 1;
                        mc.busy_cycles_total += 1;
                    }
                }
            }
        }

        // Reply injection into the reply network (the NoC↔MEM interface).
        for mc in &mut mcs {
            if let Some(&requester) = mc.reply_queue.front() {
                if reply_net.try_inject(mc.node, requester, cfg.reply_flits, PacketClass::Reply) {
                    mc.reply_queue.pop_front();
                } else if measuring {
                    reply_inject_stalls += 1;
                }
            }
        }

        reply_net.step();
        if measuring {
            replies_delivered += reply_net.drain_ejected().len() as u64;
        } else {
            reply_net.drain_ejected();
        }

        // Utilisation window bookkeeping (channel 0).
        if measuring && (cycle - cfg.warmup + 1).is_multiple_of(cfg.window) {
            let util = mcs[0].busy_cycles_window as f64 / cfg.window as f64;
            timeline.push(util);
            telemetry.emit_with(|| {
                TraceEvent::new(cycle, SUBSYSTEM_NOC, "utilization_window")
                    .with("channel", 0u64)
                    .with("utilization", util)
            });
            for mc in &mut mcs {
                mc.busy_cycles_window = 0;
            }
        }
    }

    let busy_total: u64 = mcs.iter().map(|m| m.busy_cycles_total).sum();
    let mean_utilization = busy_total as f64 / (cfg.measure * width as u64) as f64;
    export_memsim_metrics(
        &telemetry,
        mc_backpressure_stalls,
        reply_inject_stalls,
        requests_injected,
        replies_delivered,
        mean_utilization,
        &[&req_net, &reply_net],
    );
    MemSimResult {
        utilization_timeline: timeline,
        mean_utilization,
        replies_delivered,
        requests_injected,
    }
}

/// Flushes end-of-run memsim counters plus each network's mesh metrics into
/// the telemetry registry (mesh counters aggregate across the networks;
/// gauges reflect the last network exported).
#[allow(clippy::too_many_arguments)]
fn export_memsim_metrics(
    telemetry: &TelemetryHandle,
    mc_backpressure_stalls: u64,
    reply_inject_stalls: u64,
    requests_injected: u64,
    replies_delivered: u64,
    mean_utilization: f64,
    nets: &[&Mesh],
) {
    telemetry.with(|t| {
        t.registry
            .counter_add("noc.memsim.mc_backpressure_stalls", mc_backpressure_stalls);
        t.registry
            .counter_add("noc.memsim.reply_inject_stalls", reply_inject_stalls);
        t.registry
            .counter_add("noc.memsim.requests", requests_injected);
        t.registry
            .counter_add("noc.memsim.replies", replies_delivered);
        t.registry
            .gauge_set("noc.memsim.mean_utilization", mean_utilization);
        for net in nets {
            net.export_metrics(&mut t.registry);
        }
    });
}

fn run_memsim_shared_impl(
    cfg: MemSimConfig,
    seed: u64,
    mut net: Mesh,
    telemetry: TelemetryHandle,
) -> MemSimResult {
    use crate::packet::Packet;
    let mut rng = StdRng::seed_from_u64(seed);
    let width = cfg.mesh.width;
    let n = cfg.mesh.num_nodes();
    let compute: Vec<NodeId> = (width as u32..n as u32).map(NodeId::new).collect();
    let mut mcs: Vec<MemoryController> = (0..width as u32)
        .map(|i| MemoryController {
            node: NodeId::new(i),
            pending: VecDeque::new(),
            dram_busy_until: 0,
            reply_queue: VecDeque::new(),
            busy_cycles_window: 0,
            busy_cycles_total: 0,
        })
        .collect();

    let mut timeline = Vec::new();
    let mut requests_injected = 0u64;
    let mut replies_delivered = 0u64;
    let mut mc_backpressure_stalls = 0u64;
    let mut reply_inject_stalls = 0u64;
    let total = cfg.warmup + cfg.measure;

    for cycle in 0..total {
        let measuring = cycle >= cfg.warmup;

        for &src in &compute {
            if rng.gen::<f64>() < cfg.inject_rate {
                let dst = NodeId::new(rng.gen_range(0..width) as u32);
                if net.try_inject(src, dst, cfg.request_flits, PacketClass::Request) && measuring {
                    requests_injected += 1;
                }
            }
        }

        // MC back-pressure gates request intake at the MC nodes.
        for mc in &mcs {
            let accepting = mc.reply_queue.len() < cfg.mc_reply_queue;
            net.set_ejection_enabled(mc.node, accepting);
            if !accepting && measuring {
                mc_backpressure_stalls += 1;
            }
        }

        net.step();
        let ejected: Vec<Packet> = net.drain_ejected();
        for pkt in ejected {
            match pkt.class {
                PacketClass::Request => {
                    mcs[pkt.dst.index()].pending.push_back((pkt.src, pkt.id));
                }
                PacketClass::Reply => {
                    if measuring {
                        replies_delivered += 1;
                    }
                }
            }
        }

        for mc in &mut mcs {
            if mc.dram_busy_until > cycle {
                if measuring {
                    mc.busy_cycles_window += 1;
                    mc.busy_cycles_total += 1;
                }
                continue;
            }
            if mc.reply_queue.len() < cfg.mc_reply_queue {
                if let Some((requester, _)) = mc.pending.pop_front() {
                    mc.dram_busy_until = cycle + cfg.dram_service_cycles;
                    mc.reply_queue.push_back(requester);
                    if measuring {
                        mc.busy_cycles_window += 1;
                        mc.busy_cycles_total += 1;
                    }
                }
            }
        }

        // Reply injection onto the shared network (VC 1).
        for mc in &mut mcs {
            if let Some(&requester) = mc.reply_queue.front() {
                if net.try_inject(mc.node, requester, cfg.reply_flits, PacketClass::Reply) {
                    mc.reply_queue.pop_front();
                } else if measuring {
                    reply_inject_stalls += 1;
                }
            }
        }

        if measuring && (cycle - cfg.warmup + 1).is_multiple_of(cfg.window) {
            let util = mcs[0].busy_cycles_window as f64 / cfg.window as f64;
            timeline.push(util);
            telemetry.emit_with(|| {
                TraceEvent::new(cycle, SUBSYSTEM_NOC, "utilization_window")
                    .with("channel", 0u64)
                    .with("utilization", util)
            });
            for mc in &mut mcs {
                mc.busy_cycles_window = 0;
            }
        }
    }

    let busy_total: u64 = mcs.iter().map(|m| m.busy_cycles_total).sum();
    let mean_utilization = busy_total as f64 / (cfg.measure * width as u64) as f64;
    export_memsim_metrics(
        &telemetry,
        mc_backpressure_stalls,
        reply_inject_stalls,
        requests_injected,
        replies_delivered,
        mean_utilization,
        &[&net],
    );
    MemSimResult {
        utilization_timeline: timeline,
        mean_utilization,
        replies_delivered,
        requests_injected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn underprovisioned_reply_interface_starves_dram() {
        // Fig. 21: reply bottleneck keeps average utilisation low …
        let r = run_memsim(MemSimConfig::underprovisioned(), 1);
        assert!(
            r.mean_utilization < 0.45,
            "expected starved DRAM, got {:.2}",
            r.mean_utilization
        );
        // … and fluctuating over time.
        let max = r
            .utilization_timeline
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        let min = r
            .utilization_timeline
            .iter()
            .cloned()
            .fold(1.0f64, f64::min);
        assert!(
            max - min > 0.1,
            "expected fluctuation, got {min:.2}..{max:.2}"
        );
    }

    #[test]
    fn provisioned_reply_interface_sustains_dram() {
        // Implication #4: real GPUs provision the interface; utilisation is
        // high (the paper's real-GPU measurements exceed 85 %).
        let r = run_memsim(MemSimConfig::provisioned(), 1);
        assert!(
            r.mean_utilization > 0.8,
            "expected sustained DRAM, got {:.2}",
            r.mean_utilization
        );
    }

    #[test]
    fn provisioning_strictly_helps() {
        let under = run_memsim(MemSimConfig::underprovisioned(), 2);
        let prov = run_memsim(MemSimConfig::provisioned(), 2);
        assert!(prov.mean_utilization > under.mean_utilization + 0.2);
        assert!(prov.replies_delivered > under.replies_delivered);
    }

    #[test]
    fn replies_do_not_exceed_requests() {
        let r = run_memsim(MemSimConfig::underprovisioned(), 3);
        assert!(r.replies_delivered <= r.requests_injected + 2_000);
    }

    #[test]
    fn shared_network_runs_without_deadlock() {
        // One physical mesh with 2 VCs carries both classes; it must keep
        // delivering replies for the whole run.
        let r = run_memsim_shared(MemSimConfig::provisioned(), 6);
        assert!(r.replies_delivered > 10_000, "{}", r.replies_delivered);
        assert!(r.mean_utilization > 0.4, "{}", r.mean_utilization);
    }

    #[test]
    fn shared_network_is_at_most_as_fast_as_two_networks() {
        // Replies steal request bandwidth on shared links.
        let two = run_memsim(MemSimConfig::provisioned(), 7);
        let one = run_memsim_shared(MemSimConfig::provisioned(), 7);
        assert!(
            one.mean_utilization <= two.mean_utilization + 0.03,
            "shared {:.2} vs dual {:.2}",
            one.mean_utilization,
            two.mean_utilization
        );
    }

    #[test]
    fn traced_run_reports_backpressure_and_windows() {
        use gnoc_telemetry::{MemorySink, Telemetry, TelemetryHandle};

        let sink = MemorySink::new();
        let telemetry = TelemetryHandle::attach(Telemetry::with_sink(Box::new(sink.clone())));
        let cfg = MemSimConfig {
            warmup: 500,
            measure: 2_000,
            ..MemSimConfig::underprovisioned()
        };
        let r = run_memsim_traced(cfg, 1, telemetry.clone());
        // Untraced run with the same seed must be bit-identical.
        assert_eq!(r, run_memsim(cfg, 1));

        let reg = telemetry.snapshot_registry().unwrap();
        assert!(
            reg.counter("noc.memsim.mc_backpressure_stalls") > 0,
            "an underprovisioned reply interface must back-pressure the MCs"
        );
        assert!(reg.counter("noc.memsim.reply_inject_stalls") > 0);
        assert_eq!(reg.counter("noc.memsim.requests"), r.requests_injected);
        assert_eq!(reg.counter("noc.memsim.replies"), r.replies_delivered);
        assert!(reg.counter("noc.flits") > 0, "mesh metrics exported");
        assert!(reg.gauge("noc.memsim.mean_utilization").is_some());

        let events = sink.snapshot();
        let windows = events
            .iter()
            .filter(|e| e.event == "utilization_window")
            .count();
        assert_eq!(windows as u64, cfg.measure / cfg.window);
        assert!(events.iter().any(|e| e.event == "queue_depth"));
    }

    #[test]
    fn timeline_has_expected_length() {
        let cfg = MemSimConfig::underprovisioned();
        let r = run_memsim(cfg, 4);
        assert_eq!(
            r.utilization_timeline.len() as u64,
            cfg.measure / cfg.window
        );
    }
}
