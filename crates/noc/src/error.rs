//! Typed errors and loss classification for the fault-aware NoC.
//!
//! Under fault injection, packets can legitimately fail to arrive. Instead of
//! panicking or silently losing traffic, the mesh and the reliable-delivery
//! layer report every non-delivery with a [`LossReason`], and configuration
//! mistakes surface as [`NocError`] values.

use gnoc_faults::FaultPlanError;

/// Why a packet (or a whole transfer) did not reach its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LossReason {
    /// No surviving path from the packet's current router to its destination.
    Unroutable,
    /// Dropped by a flaky link's per-flit coin toss.
    FlakyLink,
    /// Dropped at the transmit side of a dead link the routing function
    /// still points at — only possible in self-healing mode, where fault
    /// onsets do *not* recompute routes (the health layer must detect the
    /// link and quarantine it first).
    DeadLink,
    /// Dropped by the die-wide transient fault process.
    TransientDrop,
    /// The reliable layer gave up after exhausting its retry budget.
    RetriesExhausted,
    /// The deadlock/livelock watchdog tripped while this transfer was
    /// outstanding; the network made no progress for the configured window.
    Watchdog,
    /// The inter-device fabric was severed between this transfer's source
    /// and destination devices (dead fabric links, a dead switch, or a
    /// whole-device loss) — distinct from [`LossReason::Unroutable`], which
    /// reports a missing route *within* one die's mesh, so delivery
    /// accounting and chaos oracle messages can tell a partitioned fabric
    /// from a partitioned die.
    Partitioned,
}

impl std::fmt::Display for LossReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Unroutable => "unroutable",
            Self::FlakyLink => "flaky-link",
            Self::DeadLink => "dead-link",
            Self::TransientDrop => "transient-drop",
            Self::RetriesExhausted => "retries-exhausted",
            Self::Watchdog => "watchdog",
            Self::Partitioned => "partitioned",
        };
        f.write_str(s)
    }
}

/// Errors raised by NoC configuration and fault-plan application.
#[derive(Debug, Clone, PartialEq)]
pub enum NocError {
    /// The fault plan does not fit this mesh (bad index, disconnecting dead
    /// links, invalid probability, ...).
    FaultPlan(FaultPlanError),
    /// A fault plan was applied to a mesh that already has one.
    PlanAlreadyApplied,
    /// The mesh configuration itself is unusable; the message names the
    /// offending field.
    Config(&'static str),
    /// A submitted transfer names a node outside the mesh.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// Terminals in the mesh.
        num_nodes: u32,
    },
    /// A health-layer quarantine request was refused because removing the
    /// link would leave some node pair without a surviving route. The mesh
    /// keeps serving (degraded) traffic instead of partitioning itself.
    QuarantineWouldDisconnect {
        /// Router at the transmit end of the refused link.
        router: u32,
        /// Output port name of the refused link.
        dir: gnoc_faults::Direction,
    },
}

impl std::fmt::Display for NocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::FaultPlan(e) => write!(f, "fault plan rejected: {e}"),
            Self::PlanAlreadyApplied => f.write_str("mesh already has a fault plan applied"),
            Self::Config(msg) => write!(f, "invalid mesh config: {msg}"),
            Self::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range ({num_nodes} terminals)")
            }
            Self::QuarantineWouldDisconnect { router, dir } => write!(
                f,
                "quarantining link {router}:{dir:?} would disconnect the mesh"
            ),
        }
    }
}

impl std::error::Error for NocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::FaultPlan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultPlanError> for NocError {
    fn from(e: FaultPlanError) -> Self {
        Self::FaultPlan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_reasons_render_distinctly() {
        let all = [
            LossReason::Unroutable,
            LossReason::FlakyLink,
            LossReason::DeadLink,
            LossReason::TransientDrop,
            LossReason::RetriesExhausted,
            LossReason::Watchdog,
            LossReason::Partitioned,
        ];
        let rendered: Vec<String> = all.iter().map(ToString::to_string).collect();
        for (i, a) in rendered.iter().enumerate() {
            for b in &rendered[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn noc_error_wraps_fault_plan_errors() {
        let e: NocError = FaultPlanError::BadProbability(2.0).into();
        assert!(e.to_string().contains("fault plan rejected"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
