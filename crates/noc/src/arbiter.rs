//! Output-port arbitration policies.
//!
//! The paper (Fig. 23) contrasts locally-fair round-robin arbitration — which
//! starves distant nodes in a multi-hop mesh through cascaded 50/50 merges —
//! with globally-fair age-based arbitration, which equalises throughput at
//! the cost of extra flow-control complexity.
//!
//! **Event-core invariant:** the mesh only consults an arbiter on cycles
//! with at least one candidate, so the round-robin rotation (`rr_next`)
//! advances exactly as many times under the event core's next-event skip as
//! under cycle-exact stepping — skipped spans are, by construction, spans
//! in which `pick` would never have been called. This is what keeps
//! arbitration (and therefore every downstream fairness figure)
//! bit-identical across engines; see DESIGN.md §8.2.

use serde::{Deserialize, Serialize};

/// Which arbitration policy router outputs use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArbiterKind {
    /// Locally fair rotating priority among the requesting inputs.
    RoundRobin,
    /// Globally fair: the oldest packet (smallest birth cycle) wins.
    AgeBased,
}

/// Per-output arbitration state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arbiter {
    kind: ArbiterKind,
    rr_next: usize,
    grants: u64,
}

impl Arbiter {
    /// Creates an arbiter of the given kind.
    pub fn new(kind: ArbiterKind) -> Self {
        Self {
            kind,
            rr_next: 0,
            grants: 0,
        }
    }

    /// Number of grants issued since creation — exported into the telemetry
    /// registry as part of the mesh's metrics.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Picks a winner among `candidates` — `(input index, packet birth)`
    /// pairs — or `None` when empty. Updates round-robin state.
    pub fn pick(&mut self, candidates: &[(usize, u64)]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let winner = match self.kind {
            ArbiterKind::RoundRobin => {
                // First candidate at or after the rotating pointer. Seeding
                // the scan with candidates[0] keeps this branch panic-free.
                let key_of = |input: usize| input.wrapping_sub(self.rr_next).wrapping_add(64) % 64;
                let mut w = candidates[0].0;
                let mut best_key = key_of(w);
                for &(input, _) in &candidates[1..] {
                    let key = key_of(input);
                    if key < best_key {
                        best_key = key;
                        w = input;
                    }
                }
                self.rr_next = (w + 1) % 64;
                w
            }
            // `min_by_key` is `Some` whenever candidates is non-empty, which
            // the guard above established; `?` degrades to a no-grant rather
            // than aborting if that invariant ever breaks.
            ArbiterKind::AgeBased => {
                candidates
                    .iter()
                    .min_by_key(|&&(input, birth)| (birth, input))?
                    .0
            }
        };
        self.grants += 1;
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates() {
        let mut a = Arbiter::new(ArbiterKind::RoundRobin);
        let cands = [(0usize, 10u64), (1, 5), (2, 1)];
        let first = a.pick(&cands).unwrap();
        let second = a.pick(&cands).unwrap();
        let third = a.pick(&cands).unwrap();
        assert_eq!(first, 0);
        assert_eq!(second, 1);
        assert_eq!(third, 2);
        assert_eq!(a.pick(&cands).unwrap(), 0);
    }

    #[test]
    fn round_robin_skips_absent_inputs() {
        let mut a = Arbiter::new(ArbiterKind::RoundRobin);
        assert_eq!(a.pick(&[(3, 0)]).unwrap(), 3);
        // Pointer is now 4; only inputs 1 and 2 request.
        assert_eq!(a.pick(&[(1, 0), (2, 0)]).unwrap(), 1);
    }

    #[test]
    fn age_based_prefers_oldest() {
        let mut a = Arbiter::new(ArbiterKind::AgeBased);
        assert_eq!(a.pick(&[(0, 10), (1, 5), (2, 7)]).unwrap(), 1);
        // Ties break on input index for determinism.
        assert_eq!(a.pick(&[(2, 5), (1, 5)]).unwrap(), 1);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut a = Arbiter::new(ArbiterKind::RoundRobin);
        assert_eq!(a.pick(&[]), None);
        assert_eq!(a.grants(), 0);
    }

    #[test]
    fn grants_count_only_winners() {
        let mut a = Arbiter::new(ArbiterKind::AgeBased);
        assert_eq!(a.pick(&[]), None);
        a.pick(&[(0, 1)]).unwrap();
        a.pick(&[(0, 1), (1, 2)]).unwrap();
        assert_eq!(a.grants(), 2);
    }
}
