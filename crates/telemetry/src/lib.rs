//! # gnoc-telemetry — the reproduction's virtual `nvprof`
//!
//! The paper's methodology is observability: `clock()` timing on the SM,
//! per-L2-slice `nvprof` counters (`lts__t_requests`, V100 only), and
//! contention probing where counters were removed. This crate gives the
//! simulated stack the same power, uniformly:
//!
//! * [`MetricRegistry`] — named counters, gauges, and mergeable log-scale
//!   [`LogHistogram`]s with quantile queries, plus [`SpanTimer`] wall-clock
//!   spans. Serializable to JSON (`gnoc ... --metrics out.json`,
//!   `gnoc stats out.json`).
//! * [`CounterBank`] — indexed counters modelling hardware counter banks;
//!   `gnoc-engine`'s paper-faithful `Profiler` is re-expressed on top.
//! * [`TraceEvent`] / [`TraceSink`] — structured, virtual-cycle-timestamped
//!   event tracing with [`JsonlWriter`] (one JSON object per line),
//!   [`MemorySink`] (tests), and [`NullSink`] impls.
//! * [`FlightRecorder`] — the causal per-message recorder behind
//!   `gnoc profile`: every message's lifecycle with exact stall attribution
//!   (each waiting cycle charged to serialization, contention,
//!   backpressure, router stall, or queueing), exportable as JSONL or a
//!   Perfetto-loadable Chrome trace.
//! * [`TelemetryHandle`] — the cheaply-cloneable handle threaded through
//!   `GpuDevice`, `Mesh`, `memsim`, and the campaign layer. Disabled by
//!   default: a no-op handle costs one branch per call site and never
//!   allocates, keeping the simulator's hot paths unaffected unless a run
//!   opts in.

mod flight;
mod handle;
mod hist;
mod registry;
mod trace;

pub use flight::{
    FlightRecorder, HopRecord, MessageRecord, StallBreakdown, StallKind, FABRIC_PORT, PORT_NAMES,
};
pub use handle::{Telemetry, TelemetryHandle};
pub use hist::{LogHistogram, MAX_BUCKETS};
pub use registry::{CounterBank, MetricRegistry, SpanTimer};
pub use trace::{
    parse_jsonl_line, FieldValue, JsonlWriter, MemorySink, NullSink, TraceEvent, TraceSink,
};

/// Subsystem tag for engine-level events (device accesses, placement).
pub const SUBSYSTEM_ENGINE: &str = "engine";
/// Subsystem tag for cycle-level NoC simulator events.
pub const SUBSYSTEM_NOC: &str = "noc";
/// Subsystem tag for campaign/CLI-level events.
pub const SUBSYSTEM_CAMPAIGN: &str = "campaign";
