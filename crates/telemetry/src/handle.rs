//! The shared, cheaply-cloneable telemetry handle threaded through the
//! engine, the NoC simulator, and the campaign layer.

use crate::registry::MetricRegistry;
use crate::trace::{TraceEvent, TraceSink};
use std::sync::{Arc, Mutex};

/// A metric registry plus an optional trace sink — one per enabled run.
#[derive(Debug, Default)]
pub struct Telemetry {
    pub registry: MetricRegistry,
    sink: Option<Box<dyn TraceSink>>,
}

impl Telemetry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Telemetry {
            registry: MetricRegistry::new(),
            sink: Some(sink),
        }
    }

    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    pub fn emit(&mut self, event: &TraceEvent) {
        if let Some(sink) = &mut self.sink {
            sink.emit(event);
        }
    }

    pub fn flush(&mut self) {
        if let Some(sink) = &mut self.sink {
            sink.flush();
        }
    }

    /// Removes and returns the sink (e.g. to recover a `MemorySink`'s
    /// buffered events after a run).
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }
}

/// Handle carried by instrumented components (`GpuDevice`, `Mesh`,
/// campaigns). The default handle is **disabled**: every operation is a
/// single `Option` check with no allocation, locking, or event construction,
/// so the instrumented hot paths cost nothing unless a run opts in. Clones
/// share one underlying [`Telemetry`], so a device, two meshes, and the CLI
/// all feed the same registry and trace.
#[derive(Debug, Clone, Default)]
pub struct TelemetryHandle {
    inner: Option<Arc<Mutex<Telemetry>>>,
}

impl TelemetryHandle {
    /// The disabled (no-op) handle.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle with an empty registry and no trace sink.
    pub fn enabled() -> Self {
        Self::attach(Telemetry::new())
    }

    /// An enabled handle wrapping an existing [`Telemetry`].
    pub fn attach(telemetry: Telemetry) -> Self {
        TelemetryHandle {
            inner: Some(Arc::new(Mutex::new(telemetry))),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Runs `f` against the shared telemetry when enabled.
    pub fn with<R>(&self, f: impl FnOnce(&mut Telemetry) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|t| f(&mut t.lock().expect("telemetry lock")))
    }

    pub fn counter_add(&self, name: &str, delta: u64) {
        self.with(|t| t.registry.counter_add(name, delta));
    }

    pub fn gauge_set(&self, name: &str, value: f64) {
        self.with(|t| t.registry.gauge_set(name, value));
    }

    pub fn gauge_max(&self, name: &str, value: f64) {
        self.with(|t| t.registry.gauge_max(name, value));
    }

    pub fn hist_record(&self, name: &str, value: u64) {
        self.with(|t| t.registry.hist_record(name, value));
    }

    pub fn hist_record_n(&self, name: &str, value: u64, n: u64) {
        self.with(|t| t.registry.hist_record_n(name, value, n));
    }

    /// Emits a trace event, building it lazily: the closure only runs when a
    /// sink is attached, so disabled runs never construct the event.
    pub fn emit_with(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(t) = &self.inner {
            let mut t = t.lock().expect("telemetry lock");
            if t.has_sink() {
                let event = build();
                t.emit(&event);
            }
        }
    }

    /// Whether a trace sink is attached (events would actually be recorded).
    pub fn has_sink(&self) -> bool {
        self.with(|t| t.has_sink()).unwrap_or(false)
    }

    /// Copy of the current registry contents, `None` when disabled.
    pub fn snapshot_registry(&self) -> Option<MetricRegistry> {
        self.with(|t| t.registry.clone())
    }

    pub fn flush(&self) {
        self.with(|t| t.flush());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemorySink;

    #[test]
    fn disabled_handle_is_inert() {
        let h = TelemetryHandle::disabled();
        assert!(!h.is_enabled());
        h.counter_add("x", 1);
        h.emit_with(|| panic!("must not build events when disabled"));
        assert!(h.snapshot_registry().is_none());
    }

    #[test]
    fn clones_share_one_registry() {
        let h = TelemetryHandle::enabled();
        let h2 = h.clone();
        h.counter_add("x", 1);
        h2.counter_add("x", 2);
        assert_eq!(h.snapshot_registry().unwrap().counter("x"), 3);
    }

    #[test]
    fn emit_with_is_lazy_without_sink() {
        let h = TelemetryHandle::enabled();
        // Enabled but no sink: the closure must not run.
        h.emit_with(|| panic!("no sink attached"));

        let sink = MemorySink::new();
        let h = TelemetryHandle::attach(Telemetry::with_sink(Box::new(sink.clone())));
        h.emit_with(|| TraceEvent::new(1, "noc", "test"));
        h.flush();
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.snapshot()[0].event, "test");
    }
}
