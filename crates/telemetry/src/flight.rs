//! Causal per-message flight recorder.
//!
//! Where [`MetricRegistry`](crate::MetricRegistry) aggregates and
//! [`TraceEvent`](crate::TraceEvent) samples, the flight recorder explains:
//! it follows every message through its lifecycle — inject → per-hop
//! {queue wait, arbitration loss, backpressure stall, serialization delay}
//! → deliver/lost — and attributes **every waiting cycle** to exactly one
//! cause. The resulting [`MessageRecord`]s satisfy a hard identity for
//! delivered messages:
//!
//! ```text
//! end − birth = source_wait + Σ_hops (serialization + contention
//!               + backpressure + router_stall + queued) + transit
//! ```
//!
//! where `transit` is one cycle per inter-router link crossed. The identity
//! is what makes the stall-attribution tables in `gnoc-analysis` sum to the
//! measured end-to-end latency instead of being a sampled approximation.
//!
//! All timestamps are **virtual cycles** — never wall clock — so recordings
//! are bit-identical across runs and worker counts. The recorder is driven
//! by the cycle-level simulator via the `on_*`/`charge` hooks; it performs
//! no simulation of its own and (crucially) has no way to influence the
//! simulation, so an instrumented run cannot diverge from a bare one.

use crate::trace::{TraceEvent, TraceSink};
use crate::SUBSYSTEM_NOC;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Port-index → name mapping: `gnoc-noc`'s mesh port layout (local, north,
/// east, south, west) plus the inter-device fabric port (`gnoc-fabric`
/// records fabric-link crossings with port 5 on both ends).
pub const PORT_NAMES: [&str; 6] = ["local", "north", "east", "south", "west", "fabric"];

/// The port index fabric-hop records use for both `in_port` and `out_port`.
pub const FABRIC_PORT: u8 = 5;

fn port_name(port: u8) -> &'static str {
    PORT_NAMES.get(port as usize).copied().unwrap_or("port?")
}

/// Why a queue-head message failed to win its output port this cycle.
/// Exactly one kind is charged per waiting head per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// The output port is still transmitting an earlier packet's flits.
    Serialization,
    /// The message was an eligible candidate but lost arbitration.
    Contention,
    /// No downstream buffer credit (or the ejection port is disabled).
    Backpressure,
    /// The router is stall-faulted, the out-link is dead, or no current
    /// route exists — the message cannot make progress regardless of
    /// arbitration.
    RouterStall,
    /// Cycles spent in the inter-device fabric: waiting for a fabric link,
    /// crossing it (serialization plus propagation beyond the one counted
    /// transit cycle), and residency in the egress/ingress die legs of a
    /// cross-device transfer. Never charged by a single-die mesh.
    FabricHop,
}

/// One hop of a message's journey: residency in one input queue, from
/// arrival to the grant that moved it on (or the drop that ended it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopRecord {
    /// Router holding the queue.
    pub router: u32,
    /// Input port the message sat in ([`PORT_NAMES`] indexing; 0 = local
    /// means this hop is the injection queue).
    pub in_port: u8,
    /// Output port the grant used; meaningless until `grant` is set.
    pub out_port: u8,
    /// Cycle the message became visible to this router's arbitration.
    pub arrive: u64,
    /// Cycle the message won its output port; `None` if it was dropped
    /// while still queued here.
    pub grant: Option<u64>,
    /// Waiting cycles where the head-of-queue message found the output
    /// port busy serializing earlier flits.
    pub serialization: u64,
    /// Waiting cycles lost to arbitration against competing queue heads.
    pub contention: u64,
    /// Waiting cycles with no downstream credit / disabled ejection.
    pub backpressure: u64,
    /// Waiting cycles with a stalled router, dead out-link, or no route.
    pub router_stall: u64,
    /// Waiting cycles attributed to the inter-device fabric (see
    /// [`StallKind::FabricHop`]); always zero for single-die hops.
    pub fabric_hop: u64,
    /// Waiting cycles spent behind other messages in the same queue
    /// (derived: total wait minus the head-of-queue charges).
    pub queued: u64,
}

impl HopRecord {
    fn open(router: u32, in_port: u8, arrive: u64) -> Self {
        HopRecord {
            router,
            in_port,
            out_port: u8::MAX,
            arrive,
            grant: None,
            serialization: 0,
            contention: 0,
            backpressure: 0,
            router_stall: 0,
            fabric_hop: 0,
            queued: 0,
        }
    }

    /// Cycles from arrival to grant (0 when granted immediately; falls back
    /// to the head-of-queue charges for a hop that never got a grant).
    pub fn wait(&self) -> u64 {
        match self.grant {
            Some(g) => g - self.arrive,
            None => self.head_charges() + self.queued,
        }
    }

    /// Sum of the explicitly-attributed head-of-queue stall cycles.
    pub fn head_charges(&self) -> u64 {
        self.serialization
            + self.contention
            + self.backpressure
            + self.router_stall
            + self.fabric_hop
    }
}

/// Per-cause stall totals; the unit is waiting cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// See [`HopRecord::serialization`].
    pub serialization: u64,
    /// See [`HopRecord::contention`].
    pub contention: u64,
    /// See [`HopRecord::backpressure`].
    pub backpressure: u64,
    /// See [`HopRecord::router_stall`].
    pub router_stall: u64,
    /// See [`HopRecord::fabric_hop`].
    pub fabric_hop: u64,
    /// See [`HopRecord::queued`].
    pub queued: u64,
}

impl StallBreakdown {
    /// Total attributed waiting cycles.
    pub fn total(&self) -> u64 {
        self.serialization
            + self.contention
            + self.backpressure
            + self.router_stall
            + self.fabric_hop
            + self.queued
    }

    /// Accumulates another breakdown into this one.
    pub fn add(&mut self, other: &StallBreakdown) {
        self.serialization += other.serialization;
        self.contention += other.contention;
        self.backpressure += other.backpressure;
        self.router_stall += other.router_stall;
        self.fabric_hop += other.fabric_hop;
        self.queued += other.queued;
    }
}

/// The full recorded lifecycle of one message.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageRecord {
    /// Mesh packet id.
    pub id: u64,
    /// Source terminal.
    pub src: u32,
    /// Destination terminal.
    pub dst: u32,
    /// Packet size in flits.
    pub flits: u32,
    /// Generation stamp (retransmissions keep the original transfer's
    /// birth, so their source wait absorbs timeout/backoff time).
    pub birth: u64,
    /// Cycle the packet entered the source's injection queue.
    pub inject: u64,
    /// Cycle of delivery (final grant) or loss.
    pub end: u64,
    /// Whether the message reached its destination.
    pub delivered: bool,
    /// Loss reason (`Debug` form of the simulator's `LossReason`) when not
    /// delivered.
    pub loss: Option<String>,
    /// Hop-by-hop residency records, injection queue first.
    pub hops: Vec<HopRecord>,
}

impl MessageRecord {
    /// End-to-end latency in cycles (birth → delivery/loss).
    pub fn latency(&self) -> u64 {
        self.end - self.birth
    }

    /// Cycles between generation and entering the network (source queueing
    /// plus, for retransmissions, timeout and backoff).
    pub fn source_wait(&self) -> u64 {
        self.inject - self.birth
    }

    /// Pure link-crossing cycles: one per inter-router hop.
    pub fn transit(&self) -> u64 {
        (self.hops.len() as u64).saturating_sub(1)
    }

    /// Summed per-cause stall cycles over all hops.
    pub fn stalls(&self) -> StallBreakdown {
        let mut b = StallBreakdown::default();
        for h in &self.hops {
            b.add(&StallBreakdown {
                serialization: h.serialization,
                contention: h.contention,
                backpressure: h.backpressure,
                router_stall: h.router_stall,
                fabric_hop: h.fabric_hop,
                queued: h.queued,
            });
        }
        b
    }

    /// The decomposition identity: for delivered messages,
    /// `latency() == source_wait() + stalls().total() + transit()` holds
    /// exactly. Exposed so tests and the analysis layer can assert it.
    pub fn components_sum(&self) -> u64 {
        self.source_wait() + self.stalls().total() + self.transit()
    }
}

/// Records every message's causal lifecycle on a cycle-level mesh.
///
/// Attach one via `Mesh::attach_flight_recorder`, run the simulation, then
/// take it back out and feed it to `gnoc-analysis` (stall attribution,
/// critical paths) or export it directly:
/// [`FlightRecorder::stream_to`] for the repo's JSONL schema,
/// [`FlightRecorder::chrome_trace`] for a Perfetto-loadable trace.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    /// In-flight messages (never iterated — determinism is unaffected by
    /// hash order).
    active: HashMap<u64, MessageRecord>,
    /// Finished messages in completion order (a deterministic order: the
    /// simulator's move list is deterministic).
    done: Vec<MessageRecord>,
    /// Out-of-band annotations (retries, corruption, breaker transitions,
    /// oracle violations) stamped in virtual cycles.
    notes: Vec<TraceEvent>,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A message entered the source injection queue.
    pub fn on_inject(&mut self, id: u64, src: u32, dst: u32, flits: u32, birth: u64, cycle: u64) {
        self.active.insert(
            id,
            MessageRecord {
                id,
                src,
                dst,
                flits,
                birth,
                inject: cycle,
                end: cycle,
                delivered: false,
                loss: None,
                hops: vec![HopRecord::open(src, 0, cycle)],
            },
        );
    }

    /// Charges one waiting cycle of `kind` to the message's current hop.
    /// Called once per cycle for each queue head that failed to move.
    pub fn charge(&mut self, id: u64, kind: StallKind) {
        self.charge_n(id, kind, 1);
    }

    /// Charges `n` waiting cycles of `kind` in one call — the event-driven
    /// engine's batched equivalent of `n` per-cycle [`FlightRecorder::charge`]
    /// calls across a span where the stall cause is provably constant. Hop
    /// charges are plain counters, so the emitted records are byte-identical
    /// to charging cycle by cycle.
    pub fn charge_n(&mut self, id: u64, kind: StallKind, n: u64) {
        let Some(m) = self.active.get_mut(&id) else {
            return; // injected before the recorder was attached
        };
        let Some(h) = m.hops.last_mut() else { return };
        match kind {
            StallKind::Serialization => h.serialization += n,
            StallKind::Contention => h.contention += n,
            StallKind::Backpressure => h.backpressure += n,
            StallKind::RouterStall => h.router_stall += n,
            StallKind::FabricHop => h.fabric_hop += n,
        }
    }

    /// The message won `out_port` at `cycle`, closing its current hop. The
    /// hop's `queued` share is derived here: total wait minus the cycles
    /// explicitly charged while it was the queue head.
    pub fn on_grant(&mut self, id: u64, out_port: u8, cycle: u64) {
        let Some(m) = self.active.get_mut(&id) else {
            return;
        };
        let Some(h) = m.hops.last_mut() else { return };
        h.out_port = out_port;
        h.grant = Some(cycle);
        let wait = cycle - h.arrive;
        let charged = h.head_charges();
        debug_assert!(
            charged <= wait,
            "over-charged hop: {charged} stall cycles in a {wait}-cycle wait"
        );
        h.queued = wait.saturating_sub(charged);
    }

    /// The message was forwarded into `router`'s `in_port` queue and becomes
    /// visible to that router's arbitration at `arrive`.
    pub fn on_enqueue(&mut self, id: u64, router: u32, in_port: u8, arrive: u64) {
        let Some(m) = self.active.get_mut(&id) else {
            return;
        };
        m.hops.push(HopRecord::open(router, in_port, arrive));
    }

    /// The message ejected at its destination at `cycle`.
    pub fn on_deliver(&mut self, id: u64, cycle: u64) {
        let Some(mut m) = self.active.remove(&id) else {
            return;
        };
        m.end = cycle;
        m.delivered = true;
        self.done.push(m);
    }

    /// The message was dropped at `cycle` for `reason`.
    pub fn on_lost(&mut self, id: u64, cycle: u64, reason: &str) {
        let Some(mut m) = self.active.remove(&id) else {
            return;
        };
        m.end = cycle;
        m.delivered = false;
        m.loss = Some(reason.to_string());
        self.done.push(m);
    }

    /// Appends an out-of-band annotation (protocol retry, breaker
    /// transition, oracle violation, …) to the recording's timeline.
    pub fn note(&mut self, event: TraceEvent) {
        self.notes.push(event);
    }

    /// Finished messages in completion order.
    pub fn finished(&self) -> &[MessageRecord] {
        &self.done
    }

    /// Timeline annotations recorded via [`FlightRecorder::note`].
    pub fn notes(&self) -> &[TraceEvent] {
        &self.notes
    }

    /// Messages still in flight (nonzero only when the run was cut short).
    pub fn open_count(&self) -> usize {
        self.active.len()
    }

    /// Streams the recording through `sink` in the repo's JSONL schema:
    /// `msg_inject` / `msg_hop` / `msg_deliver` / `msg_lost` events per
    /// finished message (completion order), then the annotations.
    pub fn stream_to(&self, sink: &mut dyn TraceSink) {
        for m in &self.done {
            sink.emit(
                &TraceEvent::new(m.inject, SUBSYSTEM_NOC, "msg_inject")
                    .with("id", m.id)
                    .with("src", u64::from(m.src))
                    .with("dst", u64::from(m.dst))
                    .with("flits", u64::from(m.flits))
                    .with("birth", m.birth),
            );
            for h in &m.hops {
                let mut e = TraceEvent::new(h.grant.unwrap_or(m.end), SUBSYSTEM_NOC, "msg_hop")
                    .with("id", m.id)
                    .with("router", u64::from(h.router))
                    .with("in_port", port_name(h.in_port))
                    .with("arrive", h.arrive)
                    .with("serialization", h.serialization)
                    .with("contention", h.contention)
                    .with("backpressure", h.backpressure)
                    .with("router_stall", h.router_stall)
                    .with("fabric_hop", h.fabric_hop)
                    .with("queued", h.queued);
                if let Some(g) = h.grant {
                    e = e.with("grant", g).with("out_port", port_name(h.out_port));
                }
                sink.emit(&e);
            }
            if m.delivered {
                sink.emit(
                    &TraceEvent::new(m.end, SUBSYSTEM_NOC, "msg_deliver")
                        .with("id", m.id)
                        .with("latency", m.latency()),
                );
            } else {
                sink.emit(
                    &TraceEvent::new(m.end, SUBSYSTEM_NOC, "msg_lost")
                        .with("id", m.id)
                        .with("reason", m.loss.as_deref().unwrap_or("unknown")),
                );
            }
        }
        for n in &self.notes {
            sink.emit(n);
        }
        sink.flush();
    }

    /// Renders the recording as Chrome trace-event JSON (an array of event
    /// objects), loadable in Perfetto / `chrome://tracing`. One track per
    /// router plus a `protocol` track for annotations; one complete (`X`)
    /// slice per hop carrying the stall breakdown in `args`; instant events
    /// for inject / deliver / loss. Timestamps are virtual cycles, reported
    /// as if one cycle were one microsecond.
    pub fn chrome_trace(&self) -> String {
        let mut tids: Vec<u32> = self
            .done
            .iter()
            .flat_map(|m| m.hops.iter().map(|h| h.router))
            .collect();
        tids.sort_unstable();
        tids.dedup();
        let protocol_tid = tids.last().map_or(0, |t| t + 1);

        let mut events: Vec<String> = Vec::new();
        for &tid in &tids {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"router {tid}\"}}}}"
            ));
        }
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{protocol_tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"protocol\"}}}}"
        ));

        for m in &self.done {
            let mut e = String::new();
            let _ = write!(
                e,
                "{{\"name\":\"inject msg{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\
                 \"tid\":{},\"s\":\"t\",\"args\":{{\"src\":{},\"dst\":{},\"flits\":{},\
                 \"birth\":{}}}}}",
                m.id, m.inject, m.src, m.src, m.dst, m.flits, m.birth
            );
            events.push(e);
            for h in &m.hops {
                let grant = h.grant.unwrap_or(m.end);
                let mut e = String::new();
                let _ = write!(
                    e,
                    "{{\"name\":\"msg{} {}\\u2192{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":0,\"tid\":{},\"args\":{{\"msg\":{},\"in\":\"{}\",\
                     \"serialization\":{},\"contention\":{},\"backpressure\":{},\
                     \"router_stall\":{},\"fabric_hop\":{},\"queued\":{}}}}}",
                    m.id,
                    port_name(h.in_port),
                    if h.grant.is_some() {
                        port_name(h.out_port)
                    } else {
                        "lost"
                    },
                    h.arrive,
                    grant - h.arrive + 1,
                    h.router,
                    m.id,
                    port_name(h.in_port),
                    h.serialization,
                    h.contention,
                    h.backpressure,
                    h.router_stall,
                    h.fabric_hop,
                    h.queued
                );
                events.push(e);
            }
            if m.delivered {
                events.push(format!(
                    "{{\"name\":\"deliver msg{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\
                     \"tid\":{},\"s\":\"t\",\"args\":{{\"latency\":{}}}}}",
                    m.id,
                    m.end,
                    m.dst,
                    m.latency()
                ));
            } else {
                events.push(format!(
                    "{{\"name\":\"lost msg{} ({})\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\
                     \"tid\":{},\"s\":\"t\",\"args\":{{}}}}",
                    m.id,
                    m.loss.as_deref().unwrap_or("unknown"),
                    m.end,
                    m.hops.last().map_or(0, |h| h.router)
                ));
            }
        }
        for n in &self.notes {
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\
                 \"s\":\"t\",\"args\":{{}}}}",
                n.event, n.cycle, protocol_tid
            ));
        }
        let mut out = String::from("[\n");
        out.push_str(&events.join(",\n"));
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySink;

    fn record_one(rec: &mut FlightRecorder) {
        rec.on_inject(7, 0, 2, 1, 10, 12); // waited 2 cycles in the source
        rec.charge(7, StallKind::Serialization);
        rec.charge(7, StallKind::Contention);
        rec.on_grant(7, 2, 15); // wait 3: ser 1 + cont 1 + queued 1
        rec.on_enqueue(7, 1, 4, 16);
        rec.on_grant(7, 2, 16); // immediate grant, wait 0
        rec.on_enqueue(7, 2, 4, 17);
        rec.charge(7, StallKind::Backpressure);
        rec.on_grant(7, 0, 18); // wait 1: bp 1
        rec.on_deliver(7, 18);
    }

    #[test]
    fn components_sum_to_latency() {
        let mut rec = FlightRecorder::new();
        record_one(&mut rec);
        let m = &rec.finished()[0];
        assert!(m.delivered);
        assert_eq!(m.latency(), 8); // birth 10 → deliver 18
        assert_eq!(m.source_wait(), 2);
        assert_eq!(m.transit(), 2);
        let s = m.stalls();
        assert_eq!(s.serialization, 1);
        assert_eq!(s.contention, 1);
        assert_eq!(s.backpressure, 1);
        assert_eq!(s.queued, 1);
        assert_eq!(m.components_sum(), m.latency());
    }

    #[test]
    fn lost_message_keeps_open_hop_without_grant() {
        let mut rec = FlightRecorder::new();
        rec.on_inject(3, 0, 8, 2, 0, 0);
        rec.charge(3, StallKind::RouterStall);
        rec.on_lost(3, 4, "DeadLink");
        let m = &rec.finished()[0];
        assert!(!m.delivered);
        assert_eq!(m.loss.as_deref(), Some("DeadLink"));
        assert_eq!(m.hops[0].grant, None);
        assert_eq!(m.stalls().router_stall, 1);
    }

    #[test]
    fn jsonl_stream_has_lifecycle_events_in_order() {
        let mut rec = FlightRecorder::new();
        record_one(&mut rec);
        rec.note(TraceEvent::new(20, SUBSYSTEM_NOC, "retry").with("transfer", 0u64));
        let sink = MemorySink::new();
        let mut boxed: Box<dyn TraceSink> = Box::new(sink.clone());
        rec.stream_to(boxed.as_mut());
        let events = sink.snapshot();
        let kinds: Vec<&str> = events.iter().map(|e| e.event.as_str()).collect();
        assert_eq!(
            kinds,
            [
                "msg_inject",
                "msg_hop",
                "msg_hop",
                "msg_hop",
                "msg_deliver",
                "retry"
            ]
        );
        assert_eq!(events[4].field("latency"), Some(&crate::FieldValue::U64(8)));
    }

    #[test]
    fn chrome_trace_is_valid_json_array() {
        let mut rec = FlightRecorder::new();
        record_one(&mut rec);
        let json = rec.chrome_trace();
        let v: serde::Value = serde_json::from_str(&json).expect("chrome trace parses");
        let serde::Value::Array(events) = v else {
            panic!("chrome trace must be a JSON array");
        };
        // 2 router metadata + protocol metadata + inject + 3 hops + deliver.
        assert!(events.len() >= 7, "got {} events", events.len());
        assert!(json.contains("\"ph\":\"X\""), "complete slices present");
    }
}
