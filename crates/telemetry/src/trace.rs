//! Structured event tracing.
//!
//! A [`TraceEvent`] is one timestamped record: the virtual cycle it happened
//! at, which subsystem emitted it (`engine`, `noc`, `campaign`), an event
//! name, and free-form key/value fields. Events flow into a [`TraceSink`];
//! the [`JsonlWriter`] sink renders one JSON object per line (JSONL), flat so
//! downstream tools can load it without schema knowledge:
//!
//! ```json
//! {"cycle":1412,"subsystem":"noc","event":"queue_depth","router":14,"depth":7}
//! ```

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// A scalar field value on a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time: simulator cycle (NoC sim) or accumulated model cycles
    /// (engine); 0 for wall-clock-only campaign events.
    pub cycle: u64,
    /// Emitting layer: `"engine"`, `"noc"`, or `"campaign"`.
    pub subsystem: String,
    /// Event name, e.g. `"access"`, `"mc_backpressure"`, `"sm_profile"`.
    pub event: String,
    /// Additional key/value payload.
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    pub fn new(cycle: u64, subsystem: &str, event: &str) -> Self {
        TraceEvent {
            cycle,
            subsystem: subsystem.to_string(),
            event: event.to_string(),
            fields: Vec::new(),
        }
    }

    /// Builder-style field append.
    pub fn with(mut self, key: &str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Looks up a payload field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

// The JSONL schema is flat — payload fields sit beside the three fixed keys —
// so Serialize/Deserialize are written by hand against the serde shim's value
// model rather than derived. (If the real serde crate ever replaces the shim,
// these two impls are the only telemetry code that needs porting.)
impl Serialize for FieldValue {
    fn serialize_value(&self) -> Value {
        match self {
            FieldValue::U64(v) => Value::U64(*v),
            FieldValue::I64(v) => v.serialize_value(),
            FieldValue::F64(v) => Value::F64(*v),
            FieldValue::Bool(v) => Value::Bool(*v),
            FieldValue::Str(v) => Value::Str(v.clone()),
        }
    }
}

impl Deserialize for FieldValue {
    fn deserialize_value(value: &Value) -> Result<Self, serde::Error> {
        Ok(match value {
            Value::U64(v) => FieldValue::U64(*v),
            Value::I64(v) => FieldValue::I64(*v),
            Value::F64(v) => FieldValue::F64(*v),
            Value::Bool(v) => FieldValue::Bool(*v),
            Value::Str(v) => FieldValue::Str(v.clone()),
            other => {
                return Err(serde::Error::msg(format!(
                    "trace field must be a scalar, found {other:?}"
                )))
            }
        })
    }
}

impl Serialize for TraceEvent {
    fn serialize_value(&self) -> Value {
        let mut entries = Vec::with_capacity(3 + self.fields.len());
        entries.push(("cycle".to_string(), Value::U64(self.cycle)));
        entries.push(("subsystem".to_string(), Value::Str(self.subsystem.clone())));
        entries.push(("event".to_string(), Value::Str(self.event.clone())));
        for (k, v) in &self.fields {
            entries.push((k.clone(), v.serialize_value()));
        }
        Value::Object(entries)
    }
}

impl Deserialize for TraceEvent {
    fn deserialize_value(value: &Value) -> Result<Self, serde::Error> {
        let entries = match value {
            Value::Object(entries) => entries,
            _ => return Err(serde::Error::msg("trace event must be a JSON object")),
        };
        let mut event = TraceEvent::new(0, "", "");
        let mut seen_subsystem = false;
        let mut seen_event = false;
        for (k, v) in entries {
            match k.as_str() {
                "cycle" => {
                    event.cycle = v
                        .as_u64()
                        .ok_or_else(|| serde::Error::msg("cycle must be a u64"))?;
                }
                "subsystem" => {
                    event.subsystem = String::deserialize_value(v)?;
                    seen_subsystem = true;
                }
                "event" => {
                    event.event = String::deserialize_value(v)?;
                    seen_event = true;
                }
                _ => event
                    .fields
                    .push((k.clone(), FieldValue::deserialize_value(v)?)),
            }
        }
        if !seen_subsystem || !seen_event {
            return Err(serde::Error::msg(
                "trace event needs `subsystem` and `event` keys",
            ));
        }
        Ok(event)
    }
}

/// Destination for trace events.
pub trait TraceSink: fmt::Debug + Send {
    fn emit(&mut self, event: &TraceEvent);

    fn flush(&mut self) {}
}

/// Discards everything (the explicit "tracing off" sink).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _event: &TraceEvent) {}
}

/// Buffers events in memory behind a shared handle: clone the sink, hand one
/// clone to the telemetry layer, and read the events back from the other
/// after the run. Used by tests and by callers that post-process the trace
/// themselves.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    events: std::sync::Arc<std::sync::Mutex<Vec<TraceEvent>>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of the buffered events.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("memory sink lock").clone()
    }

    /// Drains and returns the buffered events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("memory sink lock"))
    }

    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn emit(&mut self, event: &TraceEvent) {
        self.events
            .lock()
            .expect("memory sink lock")
            .push(event.clone());
    }
}

/// Writes one JSON object per event to a buffered writer (JSONL).
pub struct JsonlWriter<W: Write + Send> {
    writer: BufWriter<W>,
}

impl<W: Write + Send> fmt::Debug for JsonlWriter<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JsonlWriter")
    }
}

impl JsonlWriter<File> {
    /// Creates/truncates `path` and streams events into it.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlWriter {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl<W: Write + Send> JsonlWriter<W> {
    pub fn new(writer: W) -> Self {
        JsonlWriter {
            writer: BufWriter::new(writer),
        }
    }
}

impl<W: Write + Send> TraceSink for JsonlWriter<W> {
    fn emit(&mut self, event: &TraceEvent) {
        let line = serde_json::to_string(event).expect("trace event serializes");
        // Trace IO failures must not abort a simulation; drop the event.
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Parses one JSONL line back into a [`TraceEvent`].
pub fn parse_jsonl_line(line: &str) -> Result<TraceEvent, String> {
    serde_json::from_str(line).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_jsonl() {
        let ev = TraceEvent::new(1412, "noc", "queue_depth")
            .with("router", 14usize)
            .with("depth", 7u64)
            .with("util", 0.5)
            .with("stalled", true)
            .with("kind", "reply");
        let line = serde_json::to_string(&ev).unwrap();
        assert!(
            line.starts_with("{\"cycle\":1412,\"subsystem\":\"noc\""),
            "{line}"
        );
        let back = parse_jsonl_line(&line).unwrap();
        assert_eq!(ev, back);
        assert_eq!(back.field("router"), Some(&FieldValue::U64(14)));
    }

    #[test]
    fn memory_sink_buffers_through_clones() {
        let sink = MemorySink::new();
        let mut writer = sink.clone();
        writer.emit(&TraceEvent::new(1, "engine", "access"));
        writer.emit(&TraceEvent::new(2, "engine", "access"));
        assert_eq!(sink.len(), 2);
        let drained = sink.take();
        assert_eq!(drained.len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_writer_streams_lines() {
        let mut sink = JsonlWriter::new(Vec::new());
        sink.emit(&TraceEvent::new(5, "campaign", "probe").with("sm", 3u64));
        sink.emit(&TraceEvent::new(6, "campaign", "probe").with("sm", 4u64));
        sink.flush();
        let bytes = sink.writer.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            parse_jsonl_line(line).unwrap();
        }
    }
}
