//! Log-scale histogram for cycle and latency samples.
//!
//! The paper's measurement methodology reports latency distributions whose
//! interesting structure spans decades (an L2 hit is ~200 cycles, a congested
//! memsim round trip can be tens of thousands), so fixed-width bins either
//! lose the head or truncate the tail. [`LogHistogram`] uses HDR-style
//! log-linear buckets: values below 16 get exact unit buckets, and every
//! power of two above that is split into 16 sub-buckets, bounding relative
//! quantile error at ~6% while covering the whole `u64` domain in 976
//! buckets. Histograms merge losslessly, so per-shard registries can be
//! combined.

use serde::{Deserialize, Serialize};

/// Number of low-order bits used for sub-bucketing: 2^4 = 16 sub-buckets per
/// power of two.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;

/// Total bucket count for the full `u64` domain.
const NUM_BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

/// A mergeable log-linear histogram over `u64` samples.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Sparse tail is left unallocated: the vec only grows to the highest
    /// touched bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = ((v >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    ((exp - SUB_BITS + 1) as usize) * SUB + sub
}

/// Inclusive lower bound of a bucket's value range.
fn bucket_lo(b: usize) -> u64 {
    if b < SUB {
        return b as u64;
    }
    let block = (b / SUB) as u32;
    let sub = (b % SUB) as u64;
    let exp = block + SUB_BITS - 1;
    (1u64 << exp) | (sub << (exp - SUB_BITS))
}

/// Representative value of a bucket: the midpoint of its range.
fn bucket_mid(b: usize) -> u64 {
    if b < SUB {
        return b as u64;
    }
    let block = (b / SUB) as u32;
    let exp = block + SUB_BITS - 1;
    let width = 1u64 << (exp - SUB_BITS);
    bucket_lo(b) + width / 2
}

impl LogHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = bucket_of(value);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        // Saturate everywhere: a histogram that has absorbed ~u64::MAX
        // worth of samples must clamp, not wrap (release) or abort (debug).
        self.counts[b] = self.counts[b].saturating_add(n);
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Value at quantile `q` in `[0, 1]`, approximated by bucket midpoints
    /// and clamped to the recorded `[min, max]`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q=0 -> first, q=1 -> last.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let v = bucket_mid(b) as f64;
                return Some(v.clamp(self.min as f64, self.max as f64));
            }
        }
        Some(self.max as f64)
    }

    /// Adds all of `other`'s samples into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst = dst.saturating_add(src);
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Non-empty `(bucket_lo, count)` pairs, for rendering.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (bucket_lo(b), c))
    }
}

/// Upper bound on bucket count, exposed for tests.
pub const MAX_BUCKETS: usize = NUM_BUCKETS;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for v in [0u64, 1, 5, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket({v}) = {b} < {prev}");
            assert!(b < NUM_BUCKETS);
            assert!(bucket_lo(b) <= v, "lo({b}) = {} > {v}", bucket_lo(b));
            prev = b;
        }
        // Exact unit buckets below SUB.
        for v in 0..16u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_mid(bucket_of(v)), v);
        }
        // Boundary continuity: 16 starts the first log block.
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_lo(bucket_of(16)), 16);
    }

    #[test]
    fn near_max_values_saturate_instead_of_overflowing() {
        // Regression: `count += n` / `sum += value * n` used to wrap in
        // release and panic in debug once the accumulators neared u64::MAX,
        // despite the adjacent saturating_mul.
        let mut h = LogHistogram::new();
        h.record_n(u64::MAX, 3); // sum saturates immediately
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), u64::MAX, "sum clamps at the top");
        assert_eq!(h.max(), Some(u64::MAX));
        assert!(h.mean().unwrap().is_finite());
        assert!(h.quantile(0.5).unwrap().is_finite());

        // Count saturation: two huge batches cannot wrap the total.
        let mut c = LogHistogram::new();
        c.record_n(1, u64::MAX);
        c.record_n(1, u64::MAX);
        assert_eq!(c.count(), u64::MAX);
        assert_eq!(c.sum(), u64::MAX);

        // Merging two saturated histograms saturates too.
        let mut m = h.clone();
        m.merge(&c);
        assert_eq!(m.count(), u64::MAX);
        assert_eq!(m.sum(), u64::MAX);
        assert_eq!(m.min(), Some(1));
        assert_eq!(m.max(), Some(u64::MAX));
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [20u64, 100, 213, 1017, 65_535, 1 << 30, 1 << 50] {
            let mid = bucket_mid(bucket_of(v)) as f64;
            let err = (mid - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 16.0 + 1e-12, "value {v}: mid {mid}, err {err}");
        }
    }
}
