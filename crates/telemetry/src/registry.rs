//! Named metrics: counters, gauges, histograms, and span timers.

use crate::hist::LogHistogram;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::time::Instant;

/// A named collection of counters, gauges, and log-scale histograms — the
/// simulation's stand-in for an `nvprof` counter dump. Registries are plain
/// data: serializable to JSON (`gnoc --metrics`), mergeable across shards,
/// and diffable across runs.
///
/// Wall-clock measurements ([`SpanTimer`] durations) live in a separate
/// `wall` section that is **excluded** from the default JSON export and from
/// equality: everything in the main sections is a pure function of the
/// simulated work, so default metrics files are bit-identical run-to-run.
/// Opt in to the nondeterministic timings with
/// [`MetricRegistry::to_json_pretty_with_wall`].
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
    /// Wall-clock histograms, quarantined from the deterministic sections.
    wall: BTreeMap<String, LogHistogram>,
}

// Equality deliberately ignores the wall section: two runs of the same
// simulation are "equal" even though their wall-clock timings differ.
impl PartialEq for MetricRegistry {
    fn eq(&self, other: &Self) -> bool {
        self.counters == other.counters
            && self.gauges == other.gauges
            && self.histograms == other.histograms
    }
}

impl Serialize for MetricRegistry {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("counters".to_string(), self.counters.serialize_value()),
            ("gauges".to_string(), self.gauges.serialize_value()),
            ("histograms".to_string(), self.histograms.serialize_value()),
        ])
    }
}

impl Deserialize for MetricRegistry {
    fn deserialize_value(value: &Value) -> Result<Self, serde::Error> {
        // The `wall` section is optional: default exports omit it, opt-in
        // exports and older hand-edited files may carry it.
        let wall = match value.field("wall") {
            Ok(v) => Deserialize::deserialize_value(v)?,
            Err(_) => BTreeMap::new(),
        };
        Ok(MetricRegistry {
            counters: Deserialize::deserialize_value(value.field("counters")?)?,
            gauges: Deserialize::deserialize_value(value.field("gauges")?)?,
            histograms: Deserialize::deserialize_value(value.field("histograms")?)?,
            wall,
        })
    }
}

impl MetricRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Sets the named gauge to the max of its current value and `value`.
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let g = self.gauges.entry(name.to_string()).or_insert(f64::MIN);
        if value > *g {
            *g = value;
        }
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records one sample into the named histogram.
    pub fn hist_record(&mut self, name: &str, value: u64) {
        self.hist_record_n(name, value, 1);
    }

    /// Records `n` samples of `value` into the named histogram.
    pub fn hist_record_n(&mut self, name: &str, value: u64, n: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record_n(value, n);
        } else {
            let mut h = LogHistogram::new();
            h.record_n(value, n);
            self.histograms.insert(name.to_string(), h);
        }
    }

    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Records one wall-clock sample into the named `wall` histogram.
    pub fn wall_record(&mut self, name: &str, value: u64) {
        if let Some(h) = self.wall.get_mut(name) {
            h.record(value);
        } else {
            let mut h = LogHistogram::new();
            h.record(value);
            self.wall.insert(name.to_string(), h);
        }
    }

    pub fn wall_hist(&self, name: &str) -> Option<&LogHistogram> {
        self.wall.get(name)
    }

    pub fn wall_hists(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.wall.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, gauges take the latest
    /// (other wins), histograms merge.
    pub fn merge(&mut self, other: &MetricRegistry) {
        for (k, &v) in &other.counters {
            self.counter_add(k, v);
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
        for (k, h) in &other.wall {
            if let Some(mine) = self.wall.get_mut(k) {
                mine.merge(h);
            } else {
                self.wall.insert(k.clone(), h.clone());
            }
        }
    }

    /// Serializes to pretty JSON. The wall-clock section is omitted so the
    /// output is a deterministic function of the simulated work.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("registry serializes")
    }

    /// Serializes to pretty JSON *including* the nondeterministic `wall`
    /// section — opt-in, for runs that want wall-clock timings on disk.
    pub fn to_json_pretty_with_wall(&self) -> String {
        let value = Value::Object(vec![
            ("counters".to_string(), self.counters.serialize_value()),
            ("gauges".to_string(), self.gauges.serialize_value()),
            ("histograms".to_string(), self.histograms.serialize_value()),
            ("wall".to_string(), self.wall.serialize_value()),
        ]);
        serde_json::to_string_pretty(&value).expect("registry serializes")
    }

    /// Parses a registry from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Writes pretty JSON to `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_pretty())
    }

    /// Reads a registry from a JSON file.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(std::io::Error::other)
    }
}

/// A wall-clock span timer. Start one around a campaign or subcommand and
/// [`SpanTimer::finish`] it into a registry: the duration lands in the
/// `span.<name>.us` **wall** histogram (excluded from default exports) and
/// `span.<name>.calls` counts invocations as a normal counter.
#[derive(Debug)]
pub struct SpanTimer {
    name: String,
    started: Instant,
}

impl SpanTimer {
    pub fn start(name: impl Into<String>) -> Self {
        SpanTimer {
            name: name.into(),
            started: Instant::now(),
        }
    }

    /// Elapsed wall-clock seconds so far.
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Records the span into `registry` and returns the elapsed seconds.
    pub fn finish(self, registry: &mut MetricRegistry) -> f64 {
        let secs = self.elapsed_seconds();
        let micros = (secs * 1e6).round().max(0.0) as u64;
        registry.wall_record(&format!("span.{}.us", self.name), micros);
        registry.counter_add(&format!("span.{}.calls", self.name), 1);
        secs
    }
}

/// An indexed bank of counters with a shared name — the registry-backed
/// representation of per-slice `nvprof` counters (`lts__t_requests` per L2
/// slice in the paper's methodology). `gnoc-engine`'s `Profiler` is built on
/// this.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterBank {
    name: String,
    counts: Vec<u64>,
    total: u64,
}

impl CounterBank {
    /// A bank of `n` zeroed counters named `name.0 .. name.{n-1}`.
    pub fn new(name: impl Into<String>, n: usize) -> Self {
        CounterBank {
            name: name.into(),
            counts: vec![0; n],
            total: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    pub fn add(&mut self, index: usize, delta: u64) {
        self.counts[index] += delta;
        self.total += delta;
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum over all indexed counters.
    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }

    /// Index holding the largest count; ties break deterministically to the
    /// **lowest** index. `None` when the bank is empty or all-zero.
    pub fn hottest(&self) -> Option<usize> {
        let (best, &count) = self
            .counts
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))?;
        (count > 0).then_some(best)
    }

    /// Exports the bank into `registry` as `name.<i>` counters plus a
    /// `name.total` sum.
    pub fn export_into(&self, registry: &mut MetricRegistry) {
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                registry.counter_add(&format!("{}.{i}", self.name), c);
            }
        }
        registry.counter_add(&format!("{}.total", self.name), self.total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut r = MetricRegistry::new();
        r.counter_add("noc.flits", 5);
        r.counter_add("noc.flits", 2);
        r.gauge_set("util", 0.75);
        r.hist_record("lat", 200);
        r.hist_record("lat", 210);
        let text = r.to_json_pretty();
        let back = MetricRegistry::from_json(&text).expect("parses");
        assert_eq!(r, back);
        assert_eq!(back.counter("noc.flits"), 7);
        assert_eq!(back.gauge("util"), Some(0.75));
        assert_eq!(back.hist("lat").unwrap().count(), 2);
    }

    #[test]
    fn merge_adds_counters_and_merges_hists() {
        let mut a = MetricRegistry::new();
        a.counter_add("x", 1);
        a.hist_record("h", 10);
        let mut b = MetricRegistry::new();
        b.counter_add("x", 2);
        b.counter_add("y", 5);
        b.hist_record("h", 30);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 5);
        assert_eq!(a.hist("h").unwrap().count(), 2);
    }

    #[test]
    fn gauge_max_keeps_peak() {
        let mut r = MetricRegistry::new();
        r.gauge_max("peak", 3.0);
        r.gauge_max("peak", 1.0);
        assert_eq!(r.gauge("peak"), Some(3.0));
        r.gauge_max("peak", 9.0);
        assert_eq!(r.gauge("peak"), Some(9.0));
    }

    #[test]
    fn counter_bank_tracks_total_and_hottest() {
        let mut bank = CounterBank::new("engine.l2.slice", 4);
        assert_eq!(bank.hottest(), None);
        bank.add(2, 3);
        bank.add(1, 3);
        bank.add(3, 1);
        // Tie between 1 and 2 at 3 accesses: lowest index wins.
        assert_eq!(bank.hottest(), Some(1));
        assert_eq!(bank.total(), 7);
        let mut r = MetricRegistry::new();
        bank.export_into(&mut r);
        assert_eq!(r.counter("engine.l2.slice.1"), 3);
        assert_eq!(r.counter("engine.l2.slice.total"), 7);
        bank.reset();
        assert_eq!(bank.total(), 0);
        assert_eq!(bank.hottest(), None);
    }

    #[test]
    fn span_timer_records_into_wall_section() {
        let mut r = MetricRegistry::new();
        let t = SpanTimer::start("probe");
        let secs = t.finish(&mut r);
        assert!(secs >= 0.0);
        assert_eq!(r.counter("span.probe.calls"), 1);
        // The duration goes to the quarantined wall section, not the
        // deterministic histograms.
        assert!(r.hist("span.probe.us").is_none());
        assert_eq!(r.wall_hist("span.probe.us").unwrap().count(), 1);
    }

    #[test]
    fn default_export_omits_wall_and_equality_ignores_it() {
        let mut a = MetricRegistry::new();
        a.counter_add("x", 1);
        let mut b = a.clone();
        b.wall_record("span.figure.us", 1234);
        // Wall-clock timings never affect the default export or equality.
        assert_eq!(a, b);
        assert_eq!(a.to_json_pretty(), b.to_json_pretty());
        assert!(!b.to_json_pretty().contains("wall"));
        // The opt-in export carries them, and parsing tolerates either form.
        let with = b.to_json_pretty_with_wall();
        assert!(with.contains("span.figure.us"));
        let back = MetricRegistry::from_json(&with).expect("wall form parses");
        assert_eq!(back.wall_hist("span.figure.us").unwrap().count(), 1);
        let plain = MetricRegistry::from_json(&b.to_json_pretty()).expect("plain form parses");
        assert!(plain.wall_hist("span.figure.us").is_none());
    }
}
