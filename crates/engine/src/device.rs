//! The virtual GPU device.
//!
//! [`GpuDevice`] is the stand-in for the real silicon the paper measures: it
//! owns the hierarchy, floorplan, calibration, L2 residency state, per-slice
//! profiler counters and a seeded RNG for measurement jitter, and it exposes
//! exactly the operations the paper's microbenchmarks need — timed reads with
//! `clock()`-like jitter, L2 warm-up, slice-targeted address sets, and a
//! steady-state bandwidth solver.

use crate::cache::{L2Outcome, L2State};
use crate::calib::Calibration;
use crate::fabric::{FabricModel, FlowSolution, FlowSpec};
use crate::hash::{AddressMap, SliceDisableError, LINE_BYTES};
use crate::latency;
use crate::noise;
use crate::profiler::Profiler;
use gnoc_faults::{FaultPlan, FaultPlanError};
use gnoc_telemetry::{TelemetryHandle, TraceEvent, SUBSYSTEM_ENGINE};
use gnoc_topo::{
    BuildHierarchyError, CachePolicy, Floorplan, GpuSpec, Hierarchy, MpId, PartitionId, SliceId,
    SmId, SweepError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Errors creating a [`GpuDevice`].
#[derive(Debug)]
pub enum DeviceError {
    /// The spec's hierarchy failed validation.
    Hierarchy(BuildHierarchyError),
    /// The spec has a non-positive clock or die dimension.
    BadSpec(&'static str),
    /// A fault plan's floorsweep could not be applied to the spec.
    Sweep(SweepError),
    /// A fault plan's disabled-slice set failed validation.
    FaultPlan(FaultPlanError),
    /// The disabled slices leave the device without a usable L2.
    Slices(SliceDisableError),
    /// A preset name passed to [`GpuDevice::try_preset`] is not known.
    UnknownPreset(String),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Hierarchy(e) => write!(f, "invalid hierarchy: {e}"),
            Self::BadSpec(what) => write!(f, "invalid spec: {what}"),
            Self::Sweep(e) => write!(f, "invalid floorsweep: {e}"),
            Self::FaultPlan(e) => write!(f, "invalid fault plan: {e}"),
            Self::Slices(e) => write!(f, "invalid slice disable set: {e}"),
            Self::UnknownPreset(name) => write!(
                f,
                "unknown device preset {name:?} (try v100, a100, a100full, a100fs, h100)"
            ),
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Hierarchy(e) => Some(e),
            Self::BadSpec(_) => None,
            Self::Sweep(e) => Some(e),
            Self::FaultPlan(e) => Some(e),
            Self::Slices(e) => Some(e),
            Self::UnknownPreset(_) => None,
        }
    }
}

impl From<BuildHierarchyError> for DeviceError {
    fn from(e: BuildHierarchyError) -> Self {
        Self::Hierarchy(e)
    }
}

impl From<SweepError> for DeviceError {
    fn from(e: SweepError) -> Self {
        Self::Sweep(e)
    }
}

/// Extra round-trip cycles a read serviced by a latent-faulty L2 slice
/// costs: the ECC-retry / replay storm of a failing SRAM macro. Far outside
/// every preset's calibrated hit band *and* the DRAM miss penalty, so a
/// latency-EWMA health monitor can separate "broken slice" from "cold line"
/// without reading the fault plan.
pub const FAULTY_SLICE_PENALTY_CYCLES: f64 = 900.0;

/// A simulated GPU with deterministic, seeded measurement behaviour.
#[derive(Debug)]
pub struct GpuDevice {
    spec: GpuSpec,
    hierarchy: Hierarchy,
    floorplan: Floorplan,
    calib: Calibration,
    addr_map: AddressMap,
    fabric: FabricModel,
    l2: L2State,
    profiler: Profiler,
    rng: StdRng,
    telemetry: TelemetryHandle,
    virtual_cycles: u64,
    /// Latent per-slice faults (self-healing mode): the address map still
    /// routes traffic to these slices, but every read they service pays
    /// [`FAULTY_SLICE_PENALTY_CYCLES`]. Empty on a healthy or
    /// told-up-front-faulted device, keeping those paths bit-identical.
    latent_faulty_slices: Vec<bool>,
    /// Slices fused off at runtime by the health layer, ascending.
    quarantined_slices: Vec<u32>,
}

impl GpuDevice {
    /// Builds a device from `spec` with measurement seed 0.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] if the spec is inconsistent.
    pub fn new(spec: GpuSpec) -> Result<Self, DeviceError> {
        Self::with_seed(spec, 0)
    }

    /// Builds a device whose measurement jitter stream is seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] if the spec is inconsistent.
    pub fn with_seed(spec: GpuSpec, seed: u64) -> Result<Self, DeviceError> {
        let calib = Calibration::for_spec(&spec);
        Self::with_calibration(spec, calib, seed)
    }

    /// Builds a device with explicit [`Calibration`] constants — the entry
    /// point for ablation studies and what-if exploration (e.g. zeroing the
    /// queueing terms, sweeping the partition-crossing cost).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] if the spec is inconsistent.
    pub fn with_calibration(
        spec: GpuSpec,
        calib: Calibration,
        seed: u64,
    ) -> Result<Self, DeviceError> {
        if spec.clock_ghz <= 0.0 || spec.clock_ghz.is_nan() {
            return Err(DeviceError::BadSpec("clock must be positive"));
        }
        if !(spec.die_width_mm > 0.0 && spec.die_height_mm > 0.0) {
            return Err(DeviceError::BadSpec("die dimensions must be positive"));
        }
        let hierarchy = spec.resolve()?;
        let floorplan = Floorplan::layout(&hierarchy, spec.die_width_mm, spec.die_height_mm);
        let addr_map = AddressMap::new(&hierarchy, spec.cache_policy);
        let capacity_lines = ((spec.l2_mib as u64) << 20) / LINE_BYTES;
        let fabric = FabricModel::new(
            hierarchy.clone(),
            floorplan.clone(),
            calib.clone(),
            spec.clock_ghz,
            calib.dram_gbps_per_mp(&spec),
        );
        let profiler = Profiler::new(hierarchy.num_slices(), spec.per_slice_counters);
        Ok(Self {
            spec,
            hierarchy,
            floorplan,
            calib,
            addr_map,
            fabric,
            l2: L2State::new(capacity_lines.max(1) as usize),
            profiler,
            rng: StdRng::seed_from_u64(seed),
            telemetry: TelemetryHandle::disabled(),
            virtual_cycles: 0,
            latent_faulty_slices: Vec::new(),
            quarantined_slices: Vec::new(),
        })
    }

    /// Builds a degraded device under `plan`: the plan's floorsweep is
    /// applied to the spec first, then the surviving L2 slices in
    /// `plan.disabled_slices` are fused off and the address hash remapped
    /// around them. The NoC-level faults of the plan (links, routers,
    /// transients) are consumed by the mesh layer, not here.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] if the sweep or disable set is invalid for the
    /// device, or if the resulting spec is inconsistent.
    pub fn with_faults(spec: GpuSpec, plan: &FaultPlan, seed: u64) -> Result<Self, DeviceError> {
        let spec = match &plan.sweep {
            Some(sweep) => spec.floorswept(sweep)?,
            None => spec,
        };
        let calib = Calibration::for_spec(&spec);
        let mut dev = Self::with_calibration(spec, calib, seed)?;
        if !plan.disabled_slices.is_empty() {
            plan.validate_for_slices(dev.hierarchy.num_slices() as u32)
                .map_err(DeviceError::FaultPlan)?;
            dev.addr_map = AddressMap::with_disabled(
                &dev.hierarchy,
                dev.spec.cache_policy,
                &plan.disabled_slices,
            )
            .map_err(DeviceError::Slices)?;
        }
        Ok(dev)
    }

    /// Builds a device whose slice faults are *latent*: the plan's
    /// floorsweep is applied (it is known at ship time), but
    /// `plan.disabled_slices` are **not** remapped away — the address hash
    /// still routes traffic to them, and every read they service pays
    /// [`FAULTY_SLICE_PENALTY_CYCLES`]. This is the self-healing scenario:
    /// a health monitor must notice the pathological latencies and call
    /// [`GpuDevice::quarantine_slice`], which performs the remap the plan
    /// would have done up front.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] if the sweep or slice set is invalid for the
    /// device, or if the resulting spec is inconsistent.
    pub fn with_latent_faults(
        spec: GpuSpec,
        plan: &FaultPlan,
        seed: u64,
    ) -> Result<Self, DeviceError> {
        let spec = match &plan.sweep {
            Some(sweep) => spec.floorswept(sweep)?,
            None => spec,
        };
        let calib = Calibration::for_spec(&spec);
        let mut dev = Self::with_calibration(spec, calib, seed)?;
        if !plan.disabled_slices.is_empty() {
            plan.validate_for_slices(dev.hierarchy.num_slices() as u32)
                .map_err(DeviceError::FaultPlan)?;
            dev.latent_faulty_slices = vec![false; dev.hierarchy.num_slices()];
            for &s in &plan.disabled_slices {
                dev.latent_faulty_slices[s as usize] = true;
            }
        }
        Ok(dev)
    }

    /// Whether `slice` carries a latent fault (self-healing mode only).
    fn slice_latent_faulty(&self, slice: SliceId) -> bool {
        self.latent_faulty_slices
            .get(slice.index())
            .copied()
            .unwrap_or(false)
    }

    /// Fuses `slice` off at runtime and remaps the address hash around it —
    /// the health layer's Open-breaker action for an L2 slice, equivalent to
    /// the up-front [`AddressMap::with_disabled`] remap. Idempotent on an
    /// already-quarantined slice.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Slices`] (leaving the current map in place)
    /// when removing the slice would leave no usable L2 — e.g. the last
    /// slice of a partition on a partition-local device.
    pub fn quarantine_slice(&mut self, slice: SliceId) -> Result<(), DeviceError> {
        let s = slice.index() as u32;
        if self.quarantined_slices.contains(&s) {
            return Ok(());
        }
        let mut disabled = self.quarantined_slices.clone();
        disabled.push(s);
        disabled.sort_unstable();
        let map = AddressMap::with_disabled(&self.hierarchy, self.spec.cache_policy, &disabled)
            .map_err(DeviceError::Slices)?;
        self.addr_map = map;
        self.quarantined_slices = disabled;
        self.telemetry.emit_with(|| {
            TraceEvent::new(self.virtual_cycles, SUBSYSTEM_ENGINE, "slice_quarantine")
                .with("slice", slice.index())
        });
        Ok(())
    }

    /// Returns `slice` to service (HalfOpen probe passed) and remaps the
    /// hash back over it. Idempotent on a slice that is not quarantined.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Slices`] if the remaining disable set is
    /// somehow invalid (cannot happen for sets built via
    /// [`GpuDevice::quarantine_slice`]).
    pub fn release_slice(&mut self, slice: SliceId) -> Result<(), DeviceError> {
        let s = slice.index() as u32;
        let Some(pos) = self.quarantined_slices.iter().position(|&q| q == s) else {
            return Ok(());
        };
        let mut disabled = self.quarantined_slices.clone();
        disabled.remove(pos);
        let map = AddressMap::with_disabled(&self.hierarchy, self.spec.cache_policy, &disabled)
            .map_err(DeviceError::Slices)?;
        self.addr_map = map;
        self.quarantined_slices = disabled;
        Ok(())
    }

    /// The slices currently quarantined by the health layer, ascending.
    pub fn quarantined_slices(&self) -> &[u32] {
        &self.quarantined_slices
    }

    /// One timed health-probe read answered directly by the physical
    /// `slice`, bypassing the address remap — how a HalfOpen breaker tests a
    /// quarantined slice that no normal address reaches any more. Returns
    /// warm-hit latency (plus the fault penalty when the slice is latently
    /// broken) with the usual measurement jitter; leaves the L2 residency
    /// and profiler state untouched.
    pub fn probe_slice_latency(&mut self, sm: SmId, slice: SliceId) -> u64 {
        let mut mean =
            latency::l2_hit_cycles(&self.hierarchy, &self.floorplan, &self.calib, sm, slice);
        if self.slice_latent_faulty(slice) {
            mean += FAULTY_SLICE_PENALTY_CYCLES;
        }
        let cycles = noise::jittered_cycles(&mut self.rng, mean, self.calib.jitter_sigma_cycles);
        self.virtual_cycles += cycles;
        cycles
    }

    /// Builds a preset device from a runtime name, with a typed error for
    /// unknown names — the constructor user-supplied or fuzzed preset
    /// strings must go through. The static shorthands below keep their
    /// infallible signatures because their specs are compile-time constants
    /// that always validate.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownPreset`] for an unrecognised name, or
    /// any [`DeviceError`] from spec validation.
    pub fn try_preset(name: &str, seed: u64) -> Result<Self, DeviceError> {
        let spec = match name {
            "v100" => GpuSpec::v100(),
            "a100" => GpuSpec::a100(),
            "a100full" => GpuSpec::a100_full(),
            "a100fs" => GpuSpec::a100_floorswept(),
            "h100" => GpuSpec::h100(),
            other => return Err(DeviceError::UnknownPreset(other.to_string())),
        };
        Self::with_seed(spec, seed)
    }

    /// Shorthand for a seeded V100 device.
    pub fn v100(seed: u64) -> Self {
        Self::with_seed(GpuSpec::v100(), seed).expect("preset is valid")
    }

    /// Shorthand for a seeded floor-swept A100: the full GA100 die harvested
    /// down to the shipping 108-SM part.
    pub fn a100_floorswept(seed: u64) -> Self {
        Self::with_seed(GpuSpec::a100_floorswept(), seed).expect("preset is valid")
    }

    /// Shorthand for a seeded A100 device.
    pub fn a100(seed: u64) -> Self {
        Self::with_seed(GpuSpec::a100(), seed).expect("preset is valid")
    }

    /// Shorthand for a seeded H100 device.
    pub fn h100(seed: u64) -> Self {
        Self::with_seed(GpuSpec::h100(), seed).expect("preset is valid")
    }

    /// The device spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The resolved hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The floorplan.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// The calibration constants in effect.
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// The address→slice map.
    pub fn address_map(&self) -> &AddressMap {
        &self.addr_map
    }

    /// The profiler counters (per-slice availability mirrors the real GPUs).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Resets profiler counters.
    pub fn reset_profiler(&mut self) {
        self.profiler.reset();
    }

    /// Attaches a telemetry handle; the device records access counters,
    /// latency histograms, and (when a sink is present) per-access trace
    /// events through it. The default handle is disabled and costs nothing.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// The device's telemetry handle (disabled unless one was attached).
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// Accumulated virtual time: the sum of all timed-read round-trip cycles
    /// issued so far. This is the `cycle` timestamp on engine trace events —
    /// the model's analogue of the paper's per-SM `clock()` register.
    pub fn virtual_cycle(&self) -> u64 {
        self.virtual_cycles
    }

    /// Flushes the L2 (between experiments).
    pub fn flush_l2(&mut self) {
        self.l2.flush();
    }

    // ------------------------------------------------------------ timing ---

    /// The residency key of `line` as seen from `requester`'s partition:
    /// partition-local devices keep one copy per partition.
    fn residency_key(&self, line: u64, requester: PartitionId) -> (u32, u64) {
        match self.spec.cache_policy {
            CachePolicy::GloballyShared => (0, line),
            CachePolicy::PartitionLocal => (requester.index() as u32, line),
        }
    }

    /// Warms `line` into the L2 visible from `requester_sm` (the warm-up loop
    /// of Algorithm 1).
    pub fn warm_line(&mut self, requester_sm: SmId, line: u64) {
        let p = self.hierarchy.sm(requester_sm).partition;
        self.l2.warm(self.residency_key(line, p));
    }

    /// Issues one timed, L1-bypassing read of `line` from `sm`, returning
    /// measured round-trip cycles including jitter — the model equivalent of
    /// the paper's `clock()`-bracketed `__ldcg` (Algorithm 1).
    ///
    /// Updates L2 residency and profiler counters.
    pub fn timed_read(&mut self, sm: SmId, line: u64) -> u64 {
        let p = self.hierarchy.sm(sm).partition;
        let slice = self.addr_map.effective_slice(line, p);
        self.profiler.record(slice);
        let outcome = self.l2.access(self.residency_key(line, p));
        let mut mean = match outcome {
            L2Outcome::Hit => {
                latency::l2_hit_cycles(&self.hierarchy, &self.floorplan, &self.calib, sm, slice)
            }
            L2Outcome::Miss => latency::l2_miss_cycles(
                &self.hierarchy,
                &self.floorplan,
                &self.calib,
                sm,
                slice,
                self.addr_map.home_mp(line),
            ),
        };
        if self.slice_latent_faulty(slice) {
            mean += FAULTY_SLICE_PENALTY_CYCLES;
        }
        let cycles = noise::jittered_cycles(&mut self.rng, mean, self.calib.jitter_sigma_cycles);
        self.virtual_cycles += cycles;
        if self.telemetry.is_enabled() {
            self.telemetry.with(|t| {
                t.registry.counter_add("engine.reads", 1);
                t.registry.counter_add(
                    match outcome {
                        L2Outcome::Hit => "engine.l2.hits",
                        L2Outcome::Miss => "engine.l2.misses",
                    },
                    1,
                );
                t.registry.hist_record("engine.read_cycles", cycles);
            });
            self.telemetry.emit_with(|| {
                // Fabric-hop decomposition of the request path: physical wire
                // length and whether the central interconnect was crossed.
                let wire_mm = self.floorplan.wire_distance(sm, slice);
                let crossed = self.hierarchy.crosses_partition(sm, slice);
                TraceEvent::new(self.virtual_cycles, SUBSYSTEM_ENGINE, "access")
                    .with("sm", sm.index())
                    .with("line", line)
                    .with("slice", slice.index())
                    .with(
                        "outcome",
                        match outcome {
                            L2Outcome::Hit => "hit",
                            L2Outcome::Miss => "miss",
                        },
                    )
                    .with("cycles", cycles)
                    .with("wire_mm", wire_mm)
                    .with("crossed_partition", crossed)
            });
        }
        cycles
    }

    /// Mean (jitter-free) L2-*hit* round-trip cycles from `sm` to `slice` —
    /// the model's ground truth, useful for calibration checks.
    pub fn hit_cycles_mean(&self, sm: SmId, slice: SliceId) -> f64 {
        latency::l2_hit_cycles(&self.hierarchy, &self.floorplan, &self.calib, sm, slice)
    }

    /// Mean L2-*miss* round-trip cycles for a line served by `slice` whose
    /// home is `home_mp`.
    pub fn miss_cycles_mean(&self, sm: SmId, slice: SliceId, home_mp: MpId) -> f64 {
        latency::l2_miss_cycles(
            &self.hierarchy,
            &self.floorplan,
            &self.calib,
            sm,
            slice,
            home_mp,
        )
    }

    /// Issues one timed remote-shared-memory read from `src` to `dst`'s
    /// shared memory over the SM-to-SM network, or `None` when unsupported
    /// (non-Hopper device or different GPCs).
    pub fn timed_sm2sm_read(&mut self, src: SmId, dst: SmId) -> Option<u64> {
        let mean = latency::sm2sm_cycles(&self.hierarchy, &self.floorplan, &self.calib, src, dst)?;
        let cycles = noise::jittered_cycles(&mut self.rng, mean, self.calib.jitter_sigma_cycles);
        self.virtual_cycles += cycles;
        if self.telemetry.is_enabled() {
            self.telemetry.with(|t| {
                t.registry.counter_add("engine.sm2sm_reads", 1);
                t.registry.hist_record("engine.sm2sm_cycles", cycles);
            });
            self.telemetry.emit_with(|| {
                TraceEvent::new(self.virtual_cycles, SUBSYSTEM_ENGINE, "sm2sm_access")
                    .with("src_sm", src.index())
                    .with("dst_sm", dst.index())
                    .with("cycles", cycles)
            });
        }
        Some(cycles)
    }

    // --------------------------------------------------------- bandwidth ---

    /// Solves the steady-state bandwidth of `flows` (Algorithm 2's measured
    /// regime). Deterministic; does not touch L2/profiler state.
    pub fn solve_bandwidth(&self, flows: &[FlowSpec]) -> FlowSolution {
        self.fabric.solve(flows)
    }

    /// Gaussian bandwidth measurement noise with `sigma` GB/s, drawn from the
    /// device's seeded jitter stream.
    pub fn bandwidth_jitter(&mut self, sigma: f64) -> f64 {
        noise::gaussian(&mut self.rng, sigma)
    }

    /// `n` line addresses that (for `sm`) are serviced by `slice` — the
    /// `M[s]` table of Algorithms 1 and 2.
    pub fn addresses_for_slice(&self, sm: SmId, slice: SliceId, n: usize) -> Vec<u64> {
        let p = self.hierarchy.sm(sm).partition;
        self.addr_map.addresses_for_slice(slice, p, n, 0)
    }

    /// Whether `slice` survived floorsweeping / fault disabling: only
    /// enabled slices can be the effective slice of any address.
    pub fn slice_enabled(&self, slice: SliceId) -> bool {
        self.addr_map.is_enabled(slice)
    }

    /// The slice that services `line` for `sm`.
    pub fn effective_slice(&self, sm: SmId, line: u64) -> SliceId {
        let p = self.hierarchy.sm(sm).partition;
        self.addr_map.effective_slice(line, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnoc_topo::GpcId;

    #[test]
    fn timed_reads_hit_after_warmup() {
        let mut dev = GpuDevice::v100(1);
        let sm = SmId::new(24);
        let line = 12345u64;
        dev.warm_line(sm, line);
        let slice = dev.effective_slice(sm, line);
        let mean = dev.hit_cycles_mean(sm, slice);
        let samples: Vec<u64> = (0..64).map(|_| dev.timed_read(sm, line)).collect();
        let avg = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!(
            (avg - mean).abs() < 2.0,
            "measured {avg} vs model mean {mean}"
        );
    }

    #[test]
    fn cold_read_costs_more_than_warm() {
        let mut dev = GpuDevice::v100(2);
        let sm = SmId::new(0);
        let cold = dev.timed_read(sm, 999); // miss, installs
        let warm = dev.timed_read(sm, 999); // hit
        assert!(
            cold > warm + 100,
            "miss {cold} should exceed hit {warm} by the DRAM penalty"
        );
    }

    #[test]
    fn profiler_sees_slice_traffic_on_v100_only() {
        let mut v = GpuDevice::v100(0);
        v.timed_read(SmId::new(0), 7);
        assert!(v.profiler().per_slice_counts().is_some());
        assert_eq!(v.profiler().total(), 1);

        let mut a = GpuDevice::a100(0);
        a.timed_read(SmId::new(0), 7);
        assert!(a.profiler().per_slice_counts().is_none());
        assert_eq!(a.profiler().total(), 1);
    }

    #[test]
    fn hottest_slice_pins_tie_break_and_availability_per_device() {
        // V100: per-slice counters exist, and a tie between two slices must
        // deterministically report the lowest index regardless of the order
        // the traffic arrived in.
        let mut v = GpuDevice::v100(0);
        let sm = SmId::new(0);
        let lo = dev_line(&v, sm, 3);
        let hi = dev_line(&v, sm, 9);
        v.warm_line(sm, hi);
        v.warm_line(sm, lo);
        v.timed_read(sm, hi);
        v.timed_read(sm, lo);
        assert_eq!(v.profiler().hottest_slice(), Some(SliceId::new(3)));

        // A100/H100 (paper footnote 1): the non-aggregated counters were
        // removed, so the hottest-slice query answers None even with traffic
        // recorded — only the aggregate remains.
        for mut dev in [GpuDevice::a100(0), GpuDevice::h100(0)] {
            dev.timed_read(sm, 7);
            assert_eq!(dev.profiler().hottest_slice(), None);
            assert_eq!(dev.profiler().per_slice_counts(), None);
            assert!(dev.profiler().total() > 0);
        }
    }

    /// A line address serviced by `slice` for `sm`.
    fn dev_line(dev: &GpuDevice, sm: SmId, slice: u32) -> u64 {
        dev.addresses_for_slice(sm, SliceId::new(slice), 1)[0]
    }

    #[test]
    fn addresses_for_slice_round_trip() {
        let dev = GpuDevice::h100(0);
        let sm = SmId::new(0);
        let slice = dev
            .hierarchy()
            .slices_in_partition(dev.hierarchy().sm(sm).partition)[3];
        for line in dev.addresses_for_slice(sm, slice, 16) {
            assert_eq!(dev.effective_slice(sm, line), slice);
        }
    }

    #[test]
    fn seeds_make_measurements_reproducible() {
        let run = |seed: u64| -> Vec<u64> {
            let mut dev = GpuDevice::v100(seed);
            let sm = SmId::new(5);
            dev.warm_line(sm, 1);
            (0..16).map(|_| dev.timed_read(sm, 1)).collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn sm2sm_reads_work_only_on_hopper_same_gpc() {
        let mut v = GpuDevice::v100(0);
        assert!(v.timed_sm2sm_read(SmId::new(0), SmId::new(6)).is_none());

        let mut h = GpuDevice::h100(0);
        let sms = h.hierarchy().sms_in_gpc(GpcId::new(0)).to_vec();
        assert!(h.timed_sm2sm_read(sms[0], sms[1]).is_some());
    }

    #[test]
    fn bad_specs_are_rejected() {
        let mut spec = GpuSpec::v100();
        spec.clock_ghz = 0.0;
        assert!(matches!(GpuDevice::new(spec), Err(DeviceError::BadSpec(_))));

        let mut spec = GpuSpec::v100();
        spec.hierarchy.gpc_partition.pop();
        assert!(matches!(
            GpuDevice::new(spec),
            Err(DeviceError::Hierarchy(_))
        ));
    }

    #[test]
    fn custom_calibration_is_honoured() {
        let mut calib = Calibration::volta();
        calib.base_hit_cycles = 500.0;
        calib.jitter_sigma_cycles = 0.0;
        let dev = GpuDevice::with_calibration(GpuSpec::v100(), calib, 0).unwrap();
        assert!(dev.hit_cycles_mean(SmId::new(0), gnoc_topo::SliceId::new(0)) >= 500.0);
    }

    #[test]
    fn flush_l2_forgets_residency() {
        let mut dev = GpuDevice::v100(0);
        let sm = SmId::new(0);
        dev.warm_line(sm, 55);
        dev.flush_l2();
        let cold = dev.timed_read(sm, 55);
        assert!(cold > 300, "read after flush should miss: {cold}");
    }

    #[test]
    fn telemetry_captures_reads_and_events() {
        use gnoc_telemetry::{MemorySink, Telemetry};

        let mut dev = GpuDevice::v100(0);
        let sink = MemorySink::new();
        dev.set_telemetry(TelemetryHandle::attach(Telemetry::with_sink(Box::new(
            sink.clone(),
        ))));
        let sm = SmId::new(3);
        dev.warm_line(sm, 42);
        dev.timed_read(sm, 42); // hit
        dev.timed_read(sm, 43); // miss
        assert!(dev.virtual_cycle() > 0);

        let reg = dev.telemetry().snapshot_registry().unwrap();
        assert_eq!(reg.counter("engine.reads"), 2);
        assert_eq!(reg.counter("engine.l2.hits"), 1);
        assert_eq!(reg.counter("engine.l2.misses"), 1);
        assert_eq!(reg.hist("engine.read_cycles").unwrap().count(), 2);

        let events = sink.snapshot();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.subsystem == "engine"));
        assert_eq!(events[0].event, "access");
        assert!(events[0].field("wire_mm").is_some());
        assert!(events[1].cycle > events[0].cycle);
    }

    #[test]
    fn disabled_telemetry_leaves_reads_identical() {
        // The instrumented path must not perturb the seeded jitter stream.
        let run = |instrument: bool| -> Vec<u64> {
            let mut dev = GpuDevice::v100(7);
            if instrument {
                dev.set_telemetry(TelemetryHandle::enabled());
            }
            let sm = SmId::new(5);
            (0..16).map(|i| dev.timed_read(sm, i)).collect()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn floorswept_a100_reads_bit_identical_to_shipping_a100() {
        // The harvested GA100 die and the shipping A100 preset are the same
        // hierarchy with the same Ampere calibration, so the whole seeded
        // measurement stream — not just summary statistics — must match.
        let run = |mut dev: GpuDevice| -> Vec<u64> {
            let sm = SmId::new(13);
            (0..64).map(|i| dev.timed_read(sm, i)).collect()
        };
        assert_eq!(run(GpuDevice::a100_floorswept(5)), run(GpuDevice::a100(5)));
    }

    #[test]
    fn with_faults_applies_sweep_and_slice_disable() {
        let mut plan = FaultPlan::none();
        plan.sweep = Some(gnoc_faults::FloorSweep::a100_sku());
        plan.disabled_slices = vec![4, 40];
        let mut dev = GpuDevice::with_faults(GpuSpec::a100_full(), &plan, 0).unwrap();
        assert_eq!(dev.hierarchy().num_sms(), 108);
        assert_eq!(dev.hierarchy().num_slices(), 80);
        assert_eq!(dev.address_map().num_enabled(), 78);
        for line in 0..2_048 {
            let s = dev.effective_slice(SmId::new(0), line);
            assert!(s != SliceId::new(4) && s != SliceId::new(40));
            dev.timed_read(SmId::new(0), line);
        }
        // Disabled slices never accumulate profiler traffic.
        assert_eq!(dev.profiler().total(), 2_048);
    }

    #[test]
    fn with_faults_rejects_bad_plans() {
        let mut plan = FaultPlan::none();
        plan.disabled_slices = vec![999];
        assert!(matches!(
            GpuDevice::with_faults(GpuSpec::a100(), &plan, 0),
            Err(DeviceError::FaultPlan(_))
        ));

        let mut plan = FaultPlan::none();
        plan.sweep = Some(gnoc_faults::FloorSweep {
            disabled_gpcs: vec![42],
            ..gnoc_faults::FloorSweep::none()
        });
        assert!(matches!(
            GpuDevice::with_faults(GpuSpec::a100(), &plan, 0),
            Err(DeviceError::Sweep(_))
        ));
    }

    #[test]
    fn benign_plan_device_is_bit_identical_to_pristine() {
        let run = |faulted: bool| -> Vec<u64> {
            let mut dev = if faulted {
                GpuDevice::with_faults(GpuSpec::v100(), &FaultPlan::none(), 3).unwrap()
            } else {
                GpuDevice::v100(3)
            };
            (0..32).map(|i| dev.timed_read(SmId::new(7), i)).collect()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn partition_local_residency_is_per_partition() {
        let mut dev = GpuDevice::h100(0);
        let h = dev.hierarchy();
        let left = h.sms_in_partition(PartitionId::new(0))[0];
        let right = h.sms_in_partition(PartitionId::new(1))[0];
        dev.warm_line(left, 77);
        let hit = dev.timed_read(left, 77);
        let miss = dev.timed_read(right, 77); // other partition: own copy, cold
        assert!(miss > hit + 100, "hit {hit}, remote-partition miss {miss}");
    }
}
