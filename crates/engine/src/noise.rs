//! Deterministic measurement noise.
//!
//! Real `clock()`-based measurements jitter by a few cycles (counter
//! granularity, replay, unrelated traffic). The model adds Gaussian jitter so
//! histograms and correlation analyses behave like measured data, while
//! staying bit-reproducible under a fixed seed.

use rand::Rng;

/// Draws one sample from `N(0, sigma²)` using the Box–Muller transform.
///
/// Returns `0.0` for `sigma <= 0`, so noise can be disabled by calibration.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 0.0;
    }
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let mag = (-2.0 * u1.ln()).sqrt();
    sigma * mag * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Adds Gaussian jitter to a mean number of cycles and rounds to whole cycles
/// (the hardware counter has cycle granularity), clamping at 1.
pub fn jittered_cycles<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> u64 {
    let v = mean + gaussian(rng, sigma);
    v.round().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_is_noiseless() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gaussian(&mut rng, 0.0), 0.0);
        assert_eq!(jittered_cycles(&mut rng, 212.4, 0.0), 212);
    }

    #[test]
    fn samples_have_roughly_requested_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let sigma = 3.0;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng, sigma)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.15, "sd {}", var.sqrt());
    }

    #[test]
    fn jitter_is_deterministic_under_a_seed() {
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..32)
                .map(|_| jittered_cycles(&mut rng, 200.0, 2.0))
                .collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..32)
                .map(|_| jittered_cycles(&mut rng, 200.0, 2.0))
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn jittered_cycles_never_returns_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(jittered_cycles(&mut rng, 1.0, 5.0) >= 1);
        }
    }
}
