//! Hierarchical on-chip bandwidth model.
//!
//! Bandwidth in the paper's GPUs is shaped by three mechanisms:
//!
//! 1. **Hierarchical link capacities** — SM port, TPC port, (CPC port), GPC
//!    ports and aggregate, partition crossbars, the central inter-partition
//!    link, MP input ports, L2 slice service and per-MP DRAM. Reads are
//!    limited on the *reply* direction, writes on the *request* direction
//!    (Section IV-A and Fig. 11).
//! 2. **Little's law** — an SM can only keep a bounded number of bytes in
//!    flight, so a longer round-trip latency means less bandwidth; this is
//!    what makes far-partition slice bandwidth drop (Fig. 14).
//! 3. **Queueing** — as a slice or GPC port approaches saturation its service
//!    delay grows, which feeds back into (2). This produces the gradual
//!    saturation curves of Fig. 14 rather than hard kinks.
//!
//! [`FabricModel::solve`] resolves a set of concurrent flows against all three
//! mechanisms: it iterates a damped fixed point between queueing delays and a
//! progressive-filling **max-min fair** allocation over the link capacities.

use crate::calib::{Calibration, UNLIMITED};
use crate::latency;
use gnoc_topo::{CpcId, Floorplan, GpcId, Hierarchy, MpId, PartitionId, SliceId, SmId, TpcId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a flow does at the L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Streaming reads that hit in L2 — the paper's "L2 fabric bandwidth".
    ReadHit,
    /// Streaming reads that miss in L2 and stream from DRAM — the paper's
    /// "global memory bandwidth".
    ReadMiss,
    /// Streaming writes.
    Write,
}

impl AccessKind {
    /// Whether this flow's payload moves on the reply network (L2 → SM).
    pub fn is_reply_limited(self) -> bool {
        matches!(self, AccessKind::ReadHit | AccessKind::ReadMiss)
    }
}

/// One steady-state traffic flow from an SM to an L2 slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Source SM.
    pub sm: SmId,
    /// Destination (effective) L2 slice.
    pub slice: SliceId,
    /// Access kind.
    pub kind: AccessKind,
}

/// A capacity-bearing element of the fabric, for bottleneck introspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// An SM's aggregate in-flight-bytes budget (Little's law).
    SmLittle(SmId),
    /// An SM's reply or request port.
    SmPort(SmId),
    /// A TPC's shared output.
    Tpc(TpcId),
    /// A CPC-level port (H100 only).
    Cpc(CpcId),
    /// One GPC↔MP port (the "speedup in space").
    GpcPort(GpcId, MpId),
    /// A GPC's aggregate output (the "speedup in time").
    GpcTotal(GpcId),
    /// One die partition's crossbar.
    PartitionFabric(PartitionId),
    /// The central link between two partitions, per direction.
    InterPartition(PartitionId, PartitionId),
    /// A memory partition's NoC-side port.
    MpPort(MpId),
    /// One L2 slice's service capacity.
    Slice(SliceId),
    /// One memory partition's DRAM channel.
    Dram(MpId),
}

/// Direction a resource instance serves; reads and writes consume distinct
/// capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// L2 → SM payload (read data).
    Reply,
    /// SM → L2 payload (write data).
    Request,
}

/// Result of solving a flow set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSolution {
    /// Achieved payload rate of each flow, GB/s, in input order.
    pub rates_gbps: Vec<f64>,
    /// Effective round-trip latency of each flow in cycles, including
    /// queueing delay.
    pub latencies_cycles: Vec<f64>,
    /// Sum of all flow rates, GB/s.
    pub total_gbps: f64,
    /// Resources with utilisation ≥ 99 %, most-utilised first.
    pub bottlenecks: Vec<(ResourceKind, Direction, f64)>,
}

impl FlowSolution {
    /// Total rate of the flows selected by `pred`, GB/s.
    pub fn total_where(&self, flows: &[FlowSpec], pred: impl Fn(&FlowSpec) -> bool) -> f64 {
        flows
            .iter()
            .zip(&self.rates_gbps)
            .filter(|(f, _)| pred(f))
            .map(|(_, r)| r)
            .sum()
    }
}

/// Number of damped fixed-point iterations between queueing delays and the
/// max-min allocation.
const FIXED_POINT_ITERS: usize = 36;
/// Damping factor for delay updates (new = λ·target + (1-λ)·old).
const DELAY_DAMPING: f64 = 0.35;
/// Utilisation clamp when evaluating the queueing-delay curve.
const RHO_CLAMP: f64 = 0.95;
/// Iterations whose rates are averaged to produce the reported solution.
const AVERAGE_TAIL: usize = 6;

struct Resource {
    kind: ResourceKind,
    direction: Direction,
    capacity: f64,
    queue_cycles: f64,
    members: Vec<usize>,
}

/// The bandwidth model of one device.
#[derive(Debug, Clone)]
pub struct FabricModel {
    hierarchy: Hierarchy,
    floorplan: Floorplan,
    calib: Calibration,
    clock_ghz: f64,
    dram_gbps_per_mp: f64,
}

impl FabricModel {
    /// Builds the model. `dram_gbps_per_mp` is the streaming DRAM bandwidth of
    /// one memory partition (see [`Calibration::dram_gbps_per_mp`]).
    pub fn new(
        hierarchy: Hierarchy,
        floorplan: Floorplan,
        calib: Calibration,
        clock_ghz: f64,
        dram_gbps_per_mp: f64,
    ) -> Self {
        Self {
            hierarchy,
            floorplan,
            calib,
            clock_ghz,
            dram_gbps_per_mp,
        }
    }

    /// Unloaded round-trip latency of a flow, cycles.
    fn base_latency(&self, flow: &FlowSpec) -> f64 {
        match flow.kind {
            AccessKind::ReadHit | AccessKind::Write => latency::l2_hit_cycles(
                &self.hierarchy,
                &self.floorplan,
                &self.calib,
                flow.sm,
                flow.slice,
            ),
            AccessKind::ReadMiss => {
                let home_mp = self.hierarchy.slice(flow.slice).mp;
                latency::l2_miss_cycles(
                    &self.hierarchy,
                    &self.floorplan,
                    &self.calib,
                    flow.sm,
                    flow.slice,
                    home_mp,
                )
            }
        }
    }

    /// Static capacity of a resource in a given direction, or `None` when it
    /// is effectively unlimited and need not be modelled.
    fn capacity(&self, kind: ResourceKind, direction: Direction) -> Option<f64> {
        let c = &self.calib;
        let cap = match (kind, direction) {
            (ResourceKind::SmLittle(_), _) => f64::INFINITY, // dynamic, set per iteration
            (ResourceKind::SmPort(_), Direction::Reply) => c.sm_read_port_gbps,
            (ResourceKind::SmPort(_), Direction::Request) => c.sm_write_port_gbps,
            (ResourceKind::Tpc(_), Direction::Reply) => c.tpc_read_speedup * c.sm_read_port_gbps,
            (ResourceKind::Tpc(_), Direction::Request) => {
                c.tpc_write_speedup * c.sm_write_port_gbps
            }
            (ResourceKind::Cpc(_), Direction::Reply) => c.cpc_read_speedup * c.sm_read_port_gbps,
            (ResourceKind::Cpc(_), Direction::Request) => {
                c.cpc_write_speedup * c.sm_write_port_gbps
            }
            (ResourceKind::GpcPort(..), _) => c.gpc_port_gbps,
            (ResourceKind::GpcTotal(_), Direction::Reply) => c.gpc_total_gbps,
            (ResourceKind::GpcTotal(_), Direction::Request) => c.gpc_total_write_gbps,
            (ResourceKind::PartitionFabric(_), _) => c.partition_fabric_gbps,
            (ResourceKind::InterPartition(..), _) => c.inter_partition_gbps,
            (ResourceKind::MpPort(_), _) => c.mp_port_gbps,
            (ResourceKind::Slice(_), _) => c.slice_gbps,
            (ResourceKind::Dram(_), _) => self.dram_gbps_per_mp,
        };
        (cap.is_finite() && cap < UNLIMITED).then_some(cap)
    }

    fn queue_cycles(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Slice(_) => self.calib.slice_queue_cycles,
            ResourceKind::GpcPort(..) => self.calib.gpc_port_queue_cycles,
            _ => 0.0,
        }
    }

    /// The ordered resource kinds a flow traverses (excluding its dynamic
    /// per-SM Little resource, which is added separately).
    fn path(&self, flow: &FlowSpec) -> Vec<ResourceKind> {
        let sm = self.hierarchy.sm(flow.sm);
        let slice = self.hierarchy.slice(flow.slice);
        let mut path = vec![ResourceKind::SmPort(flow.sm), ResourceKind::Tpc(sm.tpc)];
        if self.hierarchy.has_cpc_level() {
            path.push(ResourceKind::Cpc(sm.cpc));
        }
        path.push(ResourceKind::GpcTotal(sm.gpc));
        path.push(ResourceKind::GpcPort(sm.gpc, slice.mp));
        path.push(ResourceKind::PartitionFabric(sm.partition));
        if sm.partition != slice.partition {
            path.push(ResourceKind::InterPartition(sm.partition, slice.partition));
            path.push(ResourceKind::PartitionFabric(slice.partition));
        }
        path.push(ResourceKind::MpPort(slice.mp));
        path.push(ResourceKind::Slice(flow.slice));
        if flow.kind == AccessKind::ReadMiss {
            path.push(ResourceKind::Dram(slice.mp));
        }
        path
    }

    /// Solves the steady-state rates of `flows` under max-min fairness with
    /// Little's-law and queueing feedback.
    ///
    /// The result is deterministic. Duplicate `(sm, slice, kind)` entries are
    /// legal and act as independent warps sharing the same path.
    pub fn solve(&self, flows: &[FlowSpec]) -> FlowSolution {
        if flows.is_empty() {
            return FlowSolution {
                rates_gbps: Vec::new(),
                latencies_cycles: Vec::new(),
                total_gbps: 0.0,
                bottlenecks: Vec::new(),
            };
        }

        // ---- Build the resource table. -------------------------------------
        let mut index: HashMap<(ResourceKind, Direction), usize> = HashMap::new();
        let mut resources: Vec<Resource> = Vec::new();
        let mut flow_paths: Vec<Vec<usize>> = Vec::with_capacity(flows.len());
        let mut sm_little: HashMap<(SmId, Direction), usize> = HashMap::new();

        for (fi, flow) in flows.iter().enumerate() {
            let dir = if flow.kind.is_reply_limited() {
                Direction::Reply
            } else {
                Direction::Request
            };
            let mut rids = Vec::new();
            // Dynamic per-SM Little's-law budget.
            let little_id = *sm_little.entry((flow.sm, dir)).or_insert_with(|| {
                resources.push(Resource {
                    kind: ResourceKind::SmLittle(flow.sm),
                    direction: dir,
                    capacity: f64::INFINITY,
                    queue_cycles: 0.0,
                    members: Vec::new(),
                });
                resources.len() - 1
            });
            resources[little_id].members.push(fi);
            rids.push(little_id);

            for kind in self.path(flow) {
                let Some(cap) = self.capacity(kind, dir) else {
                    continue;
                };
                let rid = *index.entry((kind, dir)).or_insert_with(|| {
                    resources.push(Resource {
                        kind,
                        direction: dir,
                        capacity: cap,
                        queue_cycles: self.queue_cycles(kind),
                        members: Vec::new(),
                    });
                    resources.len() - 1
                });
                resources[rid].members.push(fi);
                rids.push(rid);
            }
            flow_paths.push(rids);
        }

        let base_lat: Vec<f64> = flows.iter().map(|f| self.base_latency(f)).collect();
        let byte_cycles = |bytes: f64| bytes * self.clock_ghz; // GB/s per (1/cycles)

        // ---- Damped fixed point between delays and max-min rates. ----------
        let mut delays = vec![0.0f64; resources.len()];
        let mut rate_history: Vec<Vec<f64>> = Vec::new();
        let mut lat = vec![0.0f64; flows.len()];

        for iter in 0..FIXED_POINT_ITERS {
            // Effective latency per flow.
            for (fi, path) in flow_paths.iter().enumerate() {
                lat[fi] = base_lat[fi] + path.iter().map(|&r| delays[r]).sum::<f64>();
            }
            // Per-flow caps (flat service cap + per-destination Little).
            let flow_cap: Vec<f64> = lat
                .iter()
                .map(|&l| {
                    self.calib
                        .flow_port_gbps
                        .min(byte_cycles(self.calib.flow_mlp_bytes) / l)
                })
                .collect();
            // Per-SM Little budgets: MLP bytes spread across that SM's flows.
            for res in resources.iter_mut() {
                if let ResourceKind::SmLittle(_) = res.kind {
                    // MLP bytes shared across the SM's flows: total rate is
                    // MLP × mean(1/latency) — the multi-destination form of
                    // Little's law with an even in-flight split.
                    let inv_lat_sum: f64 = res.members.iter().map(|&fi| 1.0 / lat[fi]).sum();
                    let n = res.members.len() as f64;
                    res.capacity = byte_cycles(self.calib.sm_mlp_bytes) * (inv_lat_sum / n);
                }
            }

            let rates = water_fill(&resources, &flow_paths, &flow_cap);

            // Update queueing delays from utilisation.
            for (ri, res) in resources.iter().enumerate() {
                if res.queue_cycles == 0.0 {
                    continue;
                }
                let load: f64 = res.members.iter().map(|&fi| rates[fi]).sum();
                let rho = (load / res.capacity).min(RHO_CLAMP);
                let target = res.queue_cycles * rho / (1.0 - rho);
                delays[ri] = DELAY_DAMPING * target + (1.0 - DELAY_DAMPING) * delays[ri];
            }

            if iter + AVERAGE_TAIL >= FIXED_POINT_ITERS {
                rate_history.push(rates);
            }
        }

        // Average the tail iterations to smooth any residual oscillation.
        let n_tail = rate_history.len().max(1) as f64;
        let mut rates = vec![0.0f64; flows.len()];
        for snapshot in &rate_history {
            for (fi, r) in snapshot.iter().enumerate() {
                rates[fi] += r / n_tail;
            }
        }

        let mut bottlenecks: Vec<(ResourceKind, Direction, f64)> = resources
            .iter()
            .filter(|r| !matches!(r.kind, ResourceKind::SmLittle(_)))
            .filter_map(|r| {
                let load: f64 = r.members.iter().map(|&fi| rates[fi]).sum();
                let util = load / r.capacity;
                (util >= 0.99).then_some((r.kind, r.direction, util))
            })
            .collect();
        bottlenecks.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite utilisation"));

        let total_gbps = rates.iter().sum();
        FlowSolution {
            rates_gbps: rates,
            latencies_cycles: lat,
            total_gbps,
            bottlenecks,
        }
    }
}

/// Progressive-filling max-min fair allocation: all active flows grow at the
/// same rate until a resource (or per-flow cap) saturates, which freezes the
/// flows it carries; repeat until every flow is frozen.
fn water_fill(resources: &[Resource], flow_paths: &[Vec<usize>], flow_cap: &[f64]) -> Vec<f64> {
    let nf = flow_cap.len();
    let mut rate = vec![0.0f64; nf];
    let mut active = vec![true; nf];
    let mut n_active = nf;
    let mut rem: Vec<f64> = resources.iter().map(|r| r.capacity).collect();
    let mut cnt: Vec<usize> = vec![0; resources.len()];
    for path in flow_paths {
        for &r in path {
            cnt[r] += 1;
        }
    }

    const EPS: f64 = 1e-9;
    while n_active > 0 {
        // Smallest equal increment any constraint allows.
        let mut inc = f64::INFINITY;
        for ri in 0..resources.len() {
            if cnt[ri] > 0 {
                inc = inc.min(rem[ri] / cnt[ri] as f64);
            }
        }
        for fi in 0..nf {
            if active[fi] {
                inc = inc.min(flow_cap[fi] - rate[fi]);
            }
        }
        let inc = inc.max(0.0);

        for fi in 0..nf {
            if active[fi] {
                rate[fi] += inc;
            }
        }
        for (ri, c) in cnt.iter().enumerate() {
            if *c > 0 {
                rem[ri] -= inc * *c as f64;
            }
        }

        // Freeze flows that hit their own cap or sit on an exhausted resource.
        let mut froze_any = false;
        for fi in 0..nf {
            if !active[fi] {
                continue;
            }
            let capped = rate[fi] + EPS >= flow_cap[fi];
            let exhausted = flow_paths[fi]
                .iter()
                .any(|&r| rem[r] <= EPS * resources[r].capacity.max(1.0));
            if capped || exhausted {
                active[fi] = false;
                n_active -= 1;
                froze_any = true;
                for &r in &flow_paths[fi] {
                    cnt[r] -= 1;
                }
            }
        }
        if !froze_any {
            // Numerical safety: freeze everything rather than spin.
            break;
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnoc_topo::GpuSpec;

    fn model(spec: &GpuSpec) -> FabricModel {
        let h = spec.hierarchy();
        let f = spec.floorplan();
        let c = Calibration::for_spec(spec);
        let dram = c.dram_gbps_per_mp(spec);
        FabricModel::new(h, f, c, spec.clock_ghz, dram)
    }

    fn read_hit(sm: u32, slice: u32) -> FlowSpec {
        FlowSpec {
            sm: SmId::new(sm),
            slice: SliceId::new(slice),
            kind: AccessKind::ReadHit,
        }
    }

    #[test]
    fn empty_flow_set_is_trivial() {
        let m = model(&GpuSpec::v100());
        let sol = m.solve(&[]);
        assert_eq!(sol.total_gbps, 0.0);
        assert!(sol.rates_gbps.is_empty());
    }

    #[test]
    fn single_sm_to_single_slice_matches_paper_v100() {
        // Paper Fig. 9b: ≈ 34 GB/s from one SM to one slice.
        let m = model(&GpuSpec::v100());
        let sol = m.solve(&[read_hit(0, 0)]);
        assert!(
            (31.0..36.0).contains(&sol.total_gbps),
            "got {}",
            sol.total_gbps
        );
    }

    #[test]
    fn v100_slice_saturates_near_85_gbps() {
        // Paper Fig. 9c: a GPC driving one slice reaches ≈ 85 GB/s.
        let m = model(&GpuSpec::v100());
        let h = GpuSpec::v100().hierarchy();
        let sms = h.sms_in_gpc(GpcId::new(0));
        let flows: Vec<FlowSpec> = sms
            .iter()
            .map(|&sm| FlowSpec {
                sm,
                slice: SliceId::new(5),
                kind: AccessKind::ReadHit,
            })
            .collect();
        let sol = m.solve(&flows);
        assert!(
            (78.0..87.0).contains(&sol.total_gbps),
            "got {}",
            sol.total_gbps
        );
    }

    #[test]
    fn slice_saturation_needs_about_four_sms_on_v100() {
        // Paper Section IV-A: a minimum of 4 SMs saturates one slice.
        let m = model(&GpuSpec::v100());
        let h = GpuSpec::v100().hierarchy();
        let sms = h.sms_in_gpc(GpcId::new(0));
        let bw = |n: usize| -> f64 {
            let flows: Vec<FlowSpec> = sms[..n]
                .iter()
                .map(|&sm| FlowSpec {
                    sm,
                    slice: SliceId::new(3),
                    kind: AccessKind::ReadHit,
                })
                .collect();
            m.solve(&flows).total_gbps
        };
        let b1 = bw(1);
        let b2 = bw(2);
        let b3 = bw(3);
        let b4 = bw(4);
        assert!(b2 > 1.8 * b1, "2 SMs should nearly double: {b1} -> {b2}");
        assert!(b3 < 85.0, "3 SMs should not fully saturate: {b3}");
        assert!(b4 > 0.92 * 85.0, "4 SMs should approach saturation: {b4}");
    }

    #[test]
    fn aggregate_l2_fabric_exceeds_memory_bandwidth() {
        // Observation #7: aggregate fabric BW ≈ 2.4–3.5 × memory BW.
        for spec in GpuSpec::paper_presets() {
            let m = model(&spec);
            let h = spec.hierarchy();
            let hit_flows: Vec<FlowSpec> = h
                .sms()
                .iter()
                .flat_map(|sm| {
                    // Every SM streams from every local-or-global slice; use
                    // a strided subset to bound the flow count.
                    h.slices()
                        .iter()
                        .filter(move |s| {
                            spec.cache_policy == gnoc_topo::CachePolicy::GloballyShared
                                || s.partition == sm.partition
                        })
                        .map(move |s| FlowSpec {
                            sm: sm.sm,
                            slice: s.slice,
                            kind: AccessKind::ReadHit,
                        })
                })
                .collect();
            let fabric = m.solve(&hit_flows).total_gbps;
            let miss_flows: Vec<FlowSpec> = hit_flows
                .iter()
                .map(|f| FlowSpec {
                    kind: AccessKind::ReadMiss,
                    ..*f
                })
                .collect();
            let mem = m.solve(&miss_flows).total_gbps;
            let ratio = fabric / mem;
            assert!(
                (2.0..4.0).contains(&ratio),
                "{}: fabric {fabric:.0} mem {mem:.0} ratio {ratio:.2}",
                spec.name
            );
            // Memory streaming reaches 85–90 % of peak.
            let mem_frac = mem / spec.mem_peak_gbps;
            assert!(
                (0.80..0.95).contains(&mem_frac),
                "{}: mem fraction {mem_frac:.2}",
                spec.name
            );
        }
    }

    #[test]
    fn a100_far_partition_flow_is_slower_for_few_sms() {
        // Paper Fig. 12/14: one SM gets ≈ 40 GB/s near, ≈ 26–30 far.
        let spec = GpuSpec::a100();
        let m = model(&spec);
        let h = spec.hierarchy();
        let sm = h.sms_in_partition(PartitionId::new(0))[0];
        let near_slice = h.slices_in_partition(PartitionId::new(0))[0];
        let far_slice = h.slices_in_partition(PartitionId::new(1))[0];
        let near = m
            .solve(&[FlowSpec {
                sm,
                slice: near_slice,
                kind: AccessKind::ReadHit,
            }])
            .total_gbps;
        let far = m
            .solve(&[FlowSpec {
                sm,
                slice: far_slice,
                kind: AccessKind::ReadHit,
            }])
            .total_gbps;
        assert!((37.0..42.0).contains(&near), "near {near}");
        assert!((24.0..32.0).contains(&far), "far {far}");
        assert!(far < 0.8 * near);
    }

    #[test]
    fn a100_slice_bandwidth_converges_by_eight_sms() {
        // Paper Fig. 14: near and far converge once ≈ 8 SMs drive the slice.
        let spec = GpuSpec::a100();
        let m = model(&spec);
        let h = spec.hierarchy();
        let near_sms = h.sms_in_partition(PartitionId::new(0));
        let far_sms = h.sms_in_partition(PartitionId::new(1));
        let slice = h.slices_in_partition(PartitionId::new(0))[0];
        let bw = |sms: &[SmId], n: usize| -> f64 {
            let flows: Vec<FlowSpec> = sms[..n]
                .iter()
                .map(|&sm| FlowSpec {
                    sm,
                    slice,
                    kind: AccessKind::ReadHit,
                })
                .collect();
            m.solve(&flows).total_gbps
        };
        let near8 = bw(near_sms, 8);
        let far8 = bw(far_sms, 8);
        assert!(
            (far8 - near8).abs() / near8 < 0.1,
            "8-SM near {near8} vs far {far8} should converge"
        );
        let near1 = bw(near_sms, 1);
        let far1 = bw(far_sms, 1);
        assert!(far1 < 0.8 * near1, "1-SM far {far1} vs near {near1}");
    }

    #[test]
    fn tpc_write_speedup_is_constrained_on_v100() {
        // Paper Fig. 10: V100 TPC write speedup ≈ 1.09.
        let spec = GpuSpec::v100();
        let m = model(&spec);
        let h = spec.hierarchy();
        let tpc_sms = h.sms_in_tpc(TpcId::new(0));
        let slices: Vec<SliceId> = SliceId::range(h.num_slices()).collect();
        let writes = |sms: &[SmId]| -> f64 {
            let flows: Vec<FlowSpec> = sms
                .iter()
                .flat_map(|&sm| {
                    slices.iter().map(move |&slice| FlowSpec {
                        sm,
                        slice,
                        kind: AccessKind::Write,
                    })
                })
                .collect();
            m.solve(&flows).total_gbps
        };
        let one = writes(&tpc_sms[..1]);
        let two = writes(tpc_sms);
        let speedup = two / one;
        assert!(
            (1.0..1.3).contains(&speedup),
            "V100 TPC write speedup {speedup} (one {one}, two {two})"
        );
        // Reads get the full 2× speedup.
        let reads = |sms: &[SmId]| -> f64 {
            let flows: Vec<FlowSpec> = sms
                .iter()
                .flat_map(|&sm| {
                    slices.iter().map(move |&slice| FlowSpec {
                        sm,
                        slice,
                        kind: AccessKind::ReadHit,
                    })
                })
                .collect();
            m.solve(&flows).total_gbps
        };
        let r_speedup = reads(tpc_sms) / reads(&tpc_sms[..1]);
        assert!(r_speedup > 1.9, "TPC read speedup {r_speedup}");
    }

    #[test]
    fn bottleneck_reporting_identifies_slice() {
        let m = model(&GpuSpec::v100());
        let h = GpuSpec::v100().hierarchy();
        let flows: Vec<FlowSpec> = h
            .sms_in_gpc(GpcId::new(0))
            .iter()
            .map(|&sm| FlowSpec {
                sm,
                slice: SliceId::new(0),
                kind: AccessKind::ReadHit,
            })
            .collect();
        let sol = m.solve(&flows);
        // A full GPC into one slice saturates the GPC↔MP port (≈ 85 GB/s on
        // V100 — the Fig. 9c value); the report must identify it.
        assert!(
            sol.bottlenecks.iter().any(|(k, _, _)| matches!(
                k,
                ResourceKind::GpcPort(g, mp) if g.index() == 0 && mp.index() == 0
            )),
            "bottlenecks: {:?}",
            sol.bottlenecks
        );
    }

    #[test]
    fn solution_is_deterministic() {
        let m = model(&GpuSpec::a100());
        let flows = vec![read_hit(0, 0), read_hit(1, 40), read_hit(2, 7)];
        let a = m.solve(&flows);
        let b = m.solve(&flows);
        assert_eq!(a.rates_gbps, b.rates_gbps);
    }

    #[test]
    fn rates_never_exceed_flow_port() {
        let m = model(&GpuSpec::v100());
        let flows = vec![read_hit(0, 0)];
        let sol = m.solve(&flows);
        assert!(sol.rates_gbps[0] <= Calibration::volta().flow_port_gbps + 1e-6);
    }
}
