//! Placement-derived NoC latency model.
//!
//! The paper's central latency finding (Observations #1–#6) is that round-trip
//! L2 access latency decomposes into a fixed part (SM pipeline + L2 access)
//! and a wire part proportional to the physical distance between the SM and
//! the L2 slice, plus a large penalty whenever the central inter-partition
//! interconnect is crossed. These functions compute the *mean* latency in
//! cycles; measurement jitter is added by the device layer.

use crate::calib::Calibration;
use gnoc_topo::{Floorplan, Hierarchy, MpId, SliceId, SmId};

/// Mean round-trip cycles of a load that misses L1 and **hits** in the L2
/// slice `slice` (paper Algorithm 1).
///
/// `slice` must be the *effective* slice actually servicing the request
/// (see [`crate::AddressMap::effective_slice`]).
pub fn l2_hit_cycles(
    hierarchy: &Hierarchy,
    floorplan: &Floorplan,
    calib: &Calibration,
    sm: SmId,
    slice: SliceId,
) -> f64 {
    let wire = floorplan.wire_distance(sm, slice);
    let crossings = if hierarchy.crosses_partition(sm, slice) {
        2.0 // request + reply each traverse the central interconnect once
    } else {
        0.0
    };
    calib.base_hit_cycles
        + 2.0 * calib.cycles_per_mm * wire
        + crossings * calib.partition_crossing_cycles
        + calib.slice_chain_cycles * f64::from(hierarchy.slice(slice).index_in_mp)
}

/// Mean round-trip cycles of a load that misses L1 **and** L2: the servicing
/// slice must fetch the line from its home memory partition's DRAM.
///
/// On globally-shared devices the home MP is the slice's own MP, so the miss
/// penalty is a constant on top of the hit latency (paper Fig. 8d,e). On
/// partition-local devices (H100) the servicing slice is local but the home
/// MP may be on the far partition, making the penalty variable (Fig. 8f).
pub fn l2_miss_cycles(
    hierarchy: &Hierarchy,
    floorplan: &Floorplan,
    calib: &Calibration,
    sm: SmId,
    slice: SliceId,
    home_mp: MpId,
) -> f64 {
    let hit = l2_hit_cycles(hierarchy, floorplan, calib, sm, slice);
    let slice_pos = floorplan.slice_pos(slice);
    let mp_pos = floorplan.mp_rect(home_mp).center();
    let fetch_wire = slice_pos.manhattan(mp_pos);
    let fetch_crossings = if hierarchy.slice(slice).partition != hierarchy.partition_of_mp(home_mp)
    {
        2.0
    } else {
        0.0
    };
    hit + calib.dram_miss_cycles
        + 2.0 * calib.cycles_per_mm * fetch_wire
        + fetch_crossings * calib.partition_crossing_cycles
}

/// Mean round-trip cycles of a remote-shared-memory load over the SM-to-SM
/// (distributed shared memory) network, or `None` when the device has no such
/// network or the SMs are in different GPCs (the H100 network is per-GPC,
/// paper Fig. 7a).
pub fn sm2sm_cycles(
    hierarchy: &Hierarchy,
    floorplan: &Floorplan,
    calib: &Calibration,
    src: SmId,
    dst: SmId,
) -> Option<f64> {
    if calib.sm2sm_base_cycles <= 0.0 {
        return None;
    }
    let gpc = hierarchy.sm(src).gpc;
    if hierarchy.sm(dst).gpc != gpc {
        return None;
    }
    let wire = floorplan.sm_sm_distance(src, dst, gpc);
    Some(calib.sm2sm_base_cycles + 2.0 * calib.sm2sm_cycles_per_mm * wire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnoc_topo::{GpuSpec, PartitionId};

    struct Ctx {
        hierarchy: Hierarchy,
        floorplan: Floorplan,
        calib: Calibration,
    }

    fn ctx(spec: GpuSpec) -> Ctx {
        let hierarchy = spec.hierarchy();
        let floorplan = spec.floorplan();
        let calib = Calibration::for_spec(&spec);
        Ctx {
            hierarchy,
            floorplan,
            calib,
        }
    }

    #[test]
    fn v100_hit_latency_lands_in_paper_range() {
        // Paper Fig. 1: 175–248 cycles, mean ≈ 212.
        let c = ctx(GpuSpec::v100());
        let mut all = Vec::new();
        for sm in SmId::range(c.hierarchy.num_sms()) {
            for slice in SliceId::range(c.hierarchy.num_slices()) {
                all.push(l2_hit_cycles(
                    &c.hierarchy,
                    &c.floorplan,
                    &c.calib,
                    sm,
                    slice,
                ));
            }
        }
        let min = all.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = all.iter().cloned().fold(0.0, f64::max);
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        assert!((170.0..185.0).contains(&min), "min {min}");
        assert!((235.0..265.0).contains(&max), "max {max}");
        assert!((200.0..225.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn latency_is_nonuniform_per_sm() {
        // Observation #1: one SM sees different latencies to different slices.
        let c = ctx(GpuSpec::v100());
        let sm = SmId::new(24);
        let lats: Vec<f64> = SliceId::range(c.hierarchy.num_slices())
            .map(|s| l2_hit_cycles(&c.hierarchy, &c.floorplan, &c.calib, sm, s))
            .collect();
        let min = lats.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lats.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 30.0, "span {}..{} too narrow", min, max);
    }

    #[test]
    fn a100_far_partition_hits_cost_roughly_400_cycles() {
        let c = ctx(GpuSpec::a100());
        let sm = c.hierarchy.sms_in_partition(PartitionId::new(0))[0];
        let far: Vec<f64> = c
            .hierarchy
            .slices_in_partition(PartitionId::new(1))
            .iter()
            .map(|&s| l2_hit_cycles(&c.hierarchy, &c.floorplan, &c.calib, sm, s))
            .collect();
        let mean = far.iter().sum::<f64>() / far.len() as f64;
        assert!((360.0..440.0).contains(&mean), "far mean {mean}");
        let near: Vec<f64> = c
            .hierarchy
            .slices_in_partition(PartitionId::new(0))
            .iter()
            .map(|&s| l2_hit_cycles(&c.hierarchy, &c.floorplan, &c.calib, sm, s))
            .collect();
        let near_mean = near.iter().sum::<f64>() / near.len() as f64;
        assert!((190.0..235.0).contains(&near_mean), "near mean {near_mean}");
    }

    #[test]
    fn miss_penalty_is_constant_on_globally_shared_devices() {
        // Fig. 8d,e: V100/A100 miss penalty ≈ constant. The home MP of the
        // servicing slice is its own MP, so the extra wire is ≈ 0.
        let c = ctx(GpuSpec::v100());
        let sm = SmId::new(0);
        let penalties: Vec<f64> = SliceId::range(c.hierarchy.num_slices())
            .map(|s| {
                let mp = c.hierarchy.slice(s).mp;
                l2_miss_cycles(&c.hierarchy, &c.floorplan, &c.calib, sm, s, mp)
                    - l2_hit_cycles(&c.hierarchy, &c.floorplan, &c.calib, sm, s)
            })
            .collect();
        let min = penalties.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = penalties.iter().cloned().fold(0.0, f64::max);
        assert!(max - min < 12.0, "penalty span {min}..{max}");
    }

    #[test]
    fn hopper_miss_penalty_varies_with_home_mp() {
        // Fig. 8f: on H100 the penalty depends on where the home MP lives.
        let c = ctx(GpuSpec::h100());
        let sm = c.hierarchy.sms_in_partition(PartitionId::new(0))[0];
        let local_slice = c.hierarchy.slices_in_partition(PartitionId::new(0))[0];
        let local_mp = c.hierarchy.mps_in_partition(PartitionId::new(0))[0];
        let remote_mp = c.hierarchy.mps_in_partition(PartitionId::new(1))[0];
        let near = l2_miss_cycles(
            &c.hierarchy,
            &c.floorplan,
            &c.calib,
            sm,
            local_slice,
            local_mp,
        );
        let far = l2_miss_cycles(
            &c.hierarchy,
            &c.floorplan,
            &c.calib,
            sm,
            local_slice,
            remote_mp,
        );
        assert!(far > near + 100.0, "far {far} near {near}");
    }

    #[test]
    fn sm2sm_requires_hopper_and_same_gpc() {
        let v = ctx(GpuSpec::v100());
        let a = SmId::new(0);
        let b = SmId::new(6);
        assert!(sm2sm_cycles(&v.hierarchy, &v.floorplan, &v.calib, a, b).is_none());

        let h = ctx(GpuSpec::h100());
        let gpc0 = h.hierarchy.sms_in_gpc(gnoc_topo::GpcId::new(0));
        let gpc1 = h.hierarchy.sms_in_gpc(gnoc_topo::GpcId::new(1));
        assert!(sm2sm_cycles(&h.hierarchy, &h.floorplan, &h.calib, gpc0[0], gpc0[1]).is_some());
        assert!(sm2sm_cycles(&h.hierarchy, &h.floorplan, &h.calib, gpc0[0], gpc1[0]).is_none());
    }

    #[test]
    fn h100_sm2sm_latency_matches_fig7_range() {
        // Fig. 7b: 196 (intra-CPC0) to ≈ 213 (intra-CPC2) cycles.
        let c = ctx(GpuSpec::h100());
        let gpc = gnoc_topo::GpcId::new(0);
        let cpcs = c.hierarchy.cpcs_in_gpc(gpc);
        let mean_pair = |cpc_a: gnoc_topo::CpcId, cpc_b: gnoc_topo::CpcId| -> f64 {
            let mut acc = 0.0;
            let mut n = 0.0;
            for &a in c.hierarchy.sms_in_cpc(cpc_a) {
                for &b in c.hierarchy.sms_in_cpc(cpc_b) {
                    if a != b {
                        acc += sm2sm_cycles(&c.hierarchy, &c.floorplan, &c.calib, a, b)
                            .expect("same gpc");
                        n += 1.0;
                    }
                }
            }
            acc / n
        };
        let c00 = mean_pair(cpcs[0], cpcs[0]);
        let c22 = mean_pair(cpcs[2], cpcs[2]);
        let c02 = mean_pair(cpcs[0], cpcs[2]);
        assert!(c00 < c22, "CPC0 should be closest to the hub");
        assert!((190.0..205.0).contains(&c00), "c00 {c00}");
        assert!((205.0..225.0).contains(&c22), "c22 {c22}");
        assert!(c02 > c00 && c02 < c22 + 10.0, "c02 {c02}");
    }

    #[test]
    fn crossing_penalty_applies_both_ways() {
        let c = ctx(GpuSpec::a100());
        let sm_left = c.hierarchy.sms_in_partition(PartitionId::new(0))[0];
        let sm_right = c.hierarchy.sms_in_partition(PartitionId::new(1))[0];
        let slice_left = c.hierarchy.slices_in_partition(PartitionId::new(0))[0];
        let slice_right = c.hierarchy.slices_in_partition(PartitionId::new(1))[0];
        let ll = l2_hit_cycles(&c.hierarchy, &c.floorplan, &c.calib, sm_left, slice_left);
        let lr = l2_hit_cycles(&c.hierarchy, &c.floorplan, &c.calib, sm_left, slice_right);
        let rl = l2_hit_cycles(&c.hierarchy, &c.floorplan, &c.calib, sm_right, slice_left);
        let rr = l2_hit_cycles(&c.hierarchy, &c.floorplan, &c.calib, sm_right, slice_right);
        assert!(lr > ll + 100.0);
        assert!(rl > rr + 100.0);
    }
}
