//! Per-L2-slice traffic counters, mirroring the profiler capabilities the
//! paper relies on.
//!
//! On V100, `nvprof` in non-aggregated mode exposes per-slice counters, which
//! the paper uses to learn the address→slice mapping. On A100/H100 those
//! counters were removed (paper footnote 1), forcing a contention-probing
//! workaround. [`Profiler::per_slice_counts`] reflects that: it returns
//! `None` on devices whose spec says per-slice counters are unavailable,
//! while the aggregate count remains readable everywhere.
//!
//! The counter storage is a [`gnoc_telemetry::CounterBank`], so a profiler
//! dump can be exported into a [`gnoc_telemetry::MetricRegistry`] alongside
//! the rest of a run's metrics.

use gnoc_telemetry::{CounterBank, MetricRegistry};
use gnoc_topo::SliceId;
use serde::{Deserialize, Serialize};

/// Name of the underlying counter bank; per-slice counters export as
/// `engine.l2.slice.<i>`.
const BANK_NAME: &str = "engine.l2.slice";

/// Slice-level traffic counters for one device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profiler {
    bank: CounterBank,
    per_slice_available: bool,
}

impl Profiler {
    /// Creates counters for `num_slices` slices; `per_slice_available`
    /// mirrors [`gnoc_topo::GpuSpec::per_slice_counters`].
    pub fn new(num_slices: usize, per_slice_available: bool) -> Self {
        Self {
            bank: CounterBank::new(BANK_NAME, num_slices),
            per_slice_available,
        }
    }

    /// Records one L2 access to `slice`.
    pub fn record(&mut self, slice: SliceId) {
        self.bank.add(slice.index(), 1);
    }

    /// Total L2 accesses since the last reset — always available (recent GPUs
    /// still expose aggregate counters).
    pub fn total(&self) -> u64 {
        self.bank.total()
    }

    /// Per-slice access counts, or `None` when the device does not expose
    /// non-aggregated counters (A100/H100).
    pub fn per_slice_counts(&self) -> Option<&[u64]> {
        self.per_slice_available.then(|| self.bank.counts())
    }

    /// The slice with the highest count, if per-slice counters are available
    /// and any traffic was recorded. This is how the paper's V100 methodology
    /// identifies the target slice of a probe address. Ties break
    /// deterministically to the lowest slice index, so repeated runs of the
    /// same probe always report the same slice.
    pub fn hottest_slice(&self) -> Option<SliceId> {
        if !self.per_slice_available {
            return None;
        }
        self.bank.hottest().map(|idx| SliceId::new(idx as u32))
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.bank.reset();
    }

    /// Exports the counters into `registry`: the aggregate always, the
    /// per-slice breakdown only where the hardware exposes it (the registry
    /// honours the same `None`-on-A100/H100 contract as
    /// [`Profiler::per_slice_counts`]).
    pub fn export_metrics(&self, registry: &mut MetricRegistry) {
        if self.per_slice_available {
            self.bank.export_into(registry);
        } else {
            registry.counter_add(&format!("{BANK_NAME}.total"), self.total());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_per_slice() {
        let mut p = Profiler::new(4, true);
        p.record(SliceId::new(2));
        p.record(SliceId::new(2));
        p.record(SliceId::new(0));
        assert_eq!(p.total(), 3);
        assert_eq!(p.per_slice_counts().unwrap(), &[1, 0, 2, 0]);
        assert_eq!(p.hottest_slice(), Some(SliceId::new(2)));
    }

    #[test]
    fn per_slice_counters_hidden_on_recent_gpus() {
        let mut p = Profiler::new(4, false);
        p.record(SliceId::new(1));
        assert_eq!(p.per_slice_counts(), None);
        assert_eq!(p.hottest_slice(), None);
        // Aggregate stays visible.
        assert_eq!(p.total(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = Profiler::new(2, true);
        p.record(SliceId::new(0));
        p.reset();
        assert_eq!(p.total(), 0);
        assert_eq!(p.per_slice_counts().unwrap(), &[0, 0]);
        assert_eq!(p.hottest_slice(), None);
    }

    #[test]
    fn hottest_slice_requires_traffic() {
        let p = Profiler::new(2, true);
        assert_eq!(p.hottest_slice(), None);
    }

    #[test]
    fn hottest_slice_tie_breaks_to_lowest_index() {
        // Slices 1 and 3 tie; the report must deterministically pick 1.
        let mut p = Profiler::new(4, true);
        p.record(SliceId::new(3));
        p.record(SliceId::new(1));
        p.record(SliceId::new(3));
        p.record(SliceId::new(1));
        assert_eq!(p.hottest_slice(), Some(SliceId::new(1)));
        // And recording the tied slices in the opposite order agrees.
        let mut q = Profiler::new(4, true);
        q.record(SliceId::new(1));
        q.record(SliceId::new(3));
        assert_eq!(q.hottest_slice(), p.hottest_slice());
    }

    #[test]
    fn exports_into_registry_respecting_availability() {
        let mut p = Profiler::new(3, true);
        p.record(SliceId::new(1));
        p.record(SliceId::new(1));
        let mut reg = MetricRegistry::new();
        p.export_metrics(&mut reg);
        assert_eq!(reg.counter("engine.l2.slice.1"), 2);
        assert_eq!(reg.counter("engine.l2.slice.total"), 2);

        let mut hidden = Profiler::new(3, false);
        hidden.record(SliceId::new(1));
        let mut reg2 = MetricRegistry::new();
        hidden.export_metrics(&mut reg2);
        assert_eq!(reg2.counter("engine.l2.slice.1"), 0);
        assert_eq!(reg2.counter("engine.l2.slice.total"), 1);
    }
}
