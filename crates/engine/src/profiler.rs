//! Per-L2-slice traffic counters, mirroring the profiler capabilities the
//! paper relies on.
//!
//! On V100, `nvprof` in non-aggregated mode exposes per-slice counters, which
//! the paper uses to learn the address→slice mapping. On A100/H100 those
//! counters were removed (paper footnote 1), forcing a contention-probing
//! workaround. [`Profiler::per_slice_counts`] reflects that: it returns
//! `None` on devices whose spec says per-slice counters are unavailable,
//! while the aggregate count remains readable everywhere.

use gnoc_topo::SliceId;
use serde::{Deserialize, Serialize};

/// Slice-level traffic counters for one device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profiler {
    per_slice: Vec<u64>,
    total: u64,
    per_slice_available: bool,
}

impl Profiler {
    /// Creates counters for `num_slices` slices; `per_slice_available`
    /// mirrors [`gnoc_topo::GpuSpec::per_slice_counters`].
    pub fn new(num_slices: usize, per_slice_available: bool) -> Self {
        Self {
            per_slice: vec![0; num_slices],
            total: 0,
            per_slice_available,
        }
    }

    /// Records one L2 access to `slice`.
    pub fn record(&mut self, slice: SliceId) {
        self.per_slice[slice.index()] += 1;
        self.total += 1;
    }

    /// Total L2 accesses since the last reset — always available (recent GPUs
    /// still expose aggregate counters).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-slice access counts, or `None` when the device does not expose
    /// non-aggregated counters (A100/H100).
    pub fn per_slice_counts(&self) -> Option<&[u64]> {
        self.per_slice_available.then_some(self.per_slice.as_slice())
    }

    /// The slice with the highest count, if per-slice counters are available
    /// and any traffic was recorded. This is how the paper's V100 methodology
    /// identifies the target slice of a probe address.
    pub fn hottest_slice(&self) -> Option<SliceId> {
        if !self.per_slice_available || self.total == 0 {
            return None;
        }
        let (idx, _) = self
            .per_slice
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)?;
        Some(SliceId::new(idx as u32))
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.per_slice.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_per_slice() {
        let mut p = Profiler::new(4, true);
        p.record(SliceId::new(2));
        p.record(SliceId::new(2));
        p.record(SliceId::new(0));
        assert_eq!(p.total(), 3);
        assert_eq!(p.per_slice_counts().unwrap(), &[1, 0, 2, 0]);
        assert_eq!(p.hottest_slice(), Some(SliceId::new(2)));
    }

    #[test]
    fn per_slice_counters_hidden_on_recent_gpus() {
        let mut p = Profiler::new(4, false);
        p.record(SliceId::new(1));
        assert_eq!(p.per_slice_counts(), None);
        assert_eq!(p.hottest_slice(), None);
        // Aggregate stays visible.
        assert_eq!(p.total(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = Profiler::new(2, true);
        p.record(SliceId::new(0));
        p.reset();
        assert_eq!(p.total(), 0);
        assert_eq!(p.per_slice_counts().unwrap(), &[0, 0]);
        assert_eq!(p.hottest_slice(), None);
    }

    #[test]
    fn hottest_slice_requires_traffic() {
        let p = Profiler::new(2, true);
        assert_eq!(p.hottest_slice(), None);
    }
}
