//! Calibration constants for the virtual GPU devices.
//!
//! The paper reports absolute latency and bandwidth figures for V100, A100
//! and H100 (Sections III and IV); the constants here are fitted so that the
//! *mechanistic* model in this crate — wire distance × cycles/mm, partition
//! crossings, hierarchical link capacities, Little's-law injection limits —
//! lands on those figures. DESIGN.md §4 lists the paper targets.
//!
//! All bandwidth figures are in GB/s of *payload* (cache-line data), all
//! latencies in SM clock cycles.

use gnoc_topo::{Generation, GpuSpec};
use serde::{Deserialize, Serialize};

/// Sentinel capacity meaning "effectively unlimited / not modelled".
///
/// Finite (unlike `f64::INFINITY`) so calibrations serialize cleanly to
/// JSON; anything at or above this value is treated as absent by the fabric
/// model.
pub const UNLIMITED: f64 = 1.0e9;

/// Calibration constants for one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    // ------------------------------------------------------------ latency --
    /// Fixed round-trip cost of an L1-missing, L2-hitting load: SM pipeline,
    /// NoC injection/ejection and the L2 slice access itself.
    pub base_hit_cycles: f64,
    /// One-way wire delay per millimetre of Manhattan distance. A round trip
    /// pays this twice.
    pub cycles_per_mm: f64,
    /// Extra one-way cycles for each traversal of the central inter-partition
    /// interconnect (A100/H100); a round trip to the far partition pays it
    /// twice.
    pub partition_crossing_cycles: f64,
    /// Additional round-trip cycles on an L2 miss whose home memory partition
    /// is on the requesting SM's die partition (DRAM access time).
    pub dram_miss_cycles: f64,
    /// Fixed round-trip cost of a remote-shared-memory (SM-to-SM) load on
    /// devices with the distributed-shared-memory network.
    pub sm2sm_base_cycles: f64,
    /// One-way wire delay per mm on the SM-to-SM network.
    pub sm2sm_cycles_per_mm: f64,
    /// Extra round-trip cycles per position in an MP's internal slice chain:
    /// slice `k` of an MP is `k` steps deeper behind the MP port. This makes
    /// the within-MP latency *order* a property of the slice itself — the
    /// paper's Fig. 3/5 finding that the sorted slice order is identical
    /// from every SM.
    pub slice_chain_cycles: f64,
    /// Standard deviation of measurement jitter, in cycles (clock-counter
    /// granularity, replay interference, …).
    pub jitter_sigma_cycles: f64,

    // ---------------------------------------------------------- bandwidth --
    /// Maximum bytes a single SM keeps in flight across *all* destinations
    /// (MSHR / LSU queue depth × line size). Little's law turns this into a
    /// latency-dependent rate cap.
    pub sm_mlp_bytes: f64,
    /// Maximum bytes one SM keeps in flight towards a *single* L2 slice.
    /// Bounds per-(SM, slice) throughput at high latency — this is what makes
    /// far-partition slice bandwidth drop on A100 (paper Fig. 12/14,
    /// "Little's Law" discussion).
    pub flow_mlp_bytes: f64,
    /// Flat per-(SM, slice) service cap, GB/s: the slice's per-requester
    /// service rate. On V100 this is what makes single-SM-to-slice bandwidth
    /// almost latency-independent (paper Fig. 9b, σ ≈ 0.15 GB/s).
    pub flow_port_gbps: f64,
    /// Reply-direction port cap of one SM (read-data delivery), GB/s.
    pub sm_read_port_gbps: f64,
    /// Request-direction payload cap of one SM (write data), GB/s.
    pub sm_write_port_gbps: f64,
    /// TPC output cap for read replies, as a multiple of the SM read port.
    pub tpc_read_speedup: f64,
    /// TPC output cap for write payloads, as a multiple of the SM write port
    /// (the paper measures ≈1.09 on V100 — the one under-provisioned link).
    pub tpc_write_speedup: f64,
    /// CPC-level read cap, as a multiple of the SM read port (H100 only; the
    /// paper finds reads unaffected, writes capped at ≈4.6× of 6 needed).
    pub cpc_read_speedup: f64,
    /// CPC-level write cap, as a multiple of the SM write port.
    pub cpc_write_speedup: f64,
    /// Capacity of one GPC↔MP port, GB/s (the "speedup in space": each GPC
    /// owns a port per memory partition).
    pub gpc_port_gbps: f64,
    /// Aggregate GPC output cap across all its ports, GB/s ("speedup in
    /// time").
    pub gpc_total_gbps: f64,
    /// Write-direction aggregate GPC cap, GB/s (under-provisioned on V100:
    /// GPC_l write speedup ≈ 50 % of the 7 needed).
    pub gpc_total_write_gbps: f64,
    /// Per-partition crossbar capacity, GB/s.
    pub partition_fabric_gbps: f64,
    /// Central inter-partition link capacity per direction, GB/s.
    pub inter_partition_gbps: f64,
    /// Reply-direction capacity of one L2 slice, GB/s.
    pub slice_gbps: f64,
    /// Input port capacity of one memory partition, GB/s. Near the sum of its
    /// slice caps — the paper finds L2 *input* speedup near-ideal (Fig. 15a).
    pub mp_port_gbps: f64,
    /// Fraction of peak DRAM bandwidth achievable by streaming (the paper
    /// measures 85–90 %).
    pub mem_efficiency: f64,

    // ----------------------------------------------------------- queueing --
    /// Queueing-delay constant of an L2 slice: the delay added at utilisation
    /// ρ is `k · ρ/(1-ρ)` cycles (capped). Produces the gradual saturation of
    /// Fig. 14.
    pub slice_queue_cycles: f64,
    /// Queueing-delay constant of a GPC↔MP port.
    pub gpc_port_queue_cycles: f64,
}

impl Calibration {
    /// Calibration for `spec`, chosen by its generation. `Custom` devices get
    /// Volta constants; override fields afterwards for what-if studies.
    pub fn for_spec(spec: &GpuSpec) -> Self {
        match spec.generation {
            Generation::Volta | Generation::Custom => Self::volta(),
            Generation::Ampere => Self::ampere(),
            Generation::Hopper => Self::hopper(),
        }
    }

    /// V100 constants: L2 hits 175–248 cycles (mean ≈ 212), 34 GB/s per SM to
    /// a slice, 85 GB/s slice saturation, aggregate fabric ≈ 2.4× memory BW.
    pub fn volta() -> Self {
        Self {
            base_hit_cycles: 170.0,
            cycles_per_mm: 0.93,
            partition_crossing_cycles: 0.0, // single-partition die
            dram_miss_cycles: 190.0,
            sm2sm_base_cycles: 0.0, // no SM-to-SM network
            sm2sm_cycles_per_mm: 0.0,
            slice_chain_cycles: 5.5,
            jitter_sigma_cycles: 1.8,
            sm_mlp_bytes: 10_500.0,
            flow_mlp_bytes: 8_500.0,
            flow_port_gbps: 34.2,
            sm_read_port_gbps: 70.0,
            sm_write_port_gbps: 32.0,
            tpc_read_speedup: 2.0,
            tpc_write_speedup: 1.09,
            cpc_read_speedup: UNLIMITED,
            cpc_write_speedup: UNLIMITED,
            gpc_port_gbps: 85.0,
            gpc_total_gbps: 320.0,
            gpc_total_write_gbps: 113.0, // ≈ 3.5 × sm_write (50 % of 7 needed)
            partition_fabric_gbps: 2400.0,
            inter_partition_gbps: UNLIMITED,
            slice_gbps: 105.0,
            mp_port_gbps: 420.0,
            mem_efficiency: 0.88,
            slice_queue_cycles: 8.0,
            gpc_port_queue_cycles: 12.0,
        }
    }

    /// A100 constants: near-partition latency V100-like, far ≈ 400 cycles;
    /// 39.5 GB/s near / ≈ 28 GB/s far per SM; slice saturation ≈ 8 SMs.
    pub fn ampere() -> Self {
        Self {
            base_hit_cycles: 168.0,
            cycles_per_mm: 1.0,
            partition_crossing_cycles: 80.0,
            dram_miss_cycles: 210.0,
            sm2sm_base_cycles: 0.0,
            sm2sm_cycles_per_mm: 0.0,
            slice_chain_cycles: 4.5,
            jitter_sigma_cycles: 2.0,
            sm_mlp_bytes: 8_300.0,
            flow_mlp_bytes: 7_000.0,
            flow_port_gbps: 40.0,
            sm_read_port_gbps: 39.7,
            sm_write_port_gbps: 37.5,
            tpc_read_speedup: 2.0,
            tpc_write_speedup: 2.0,
            cpc_read_speedup: UNLIMITED,
            cpc_write_speedup: UNLIMITED,
            gpc_port_gbps: 80.0,
            gpc_total_gbps: 560.0,
            gpc_total_write_gbps: 210.0, // ≈ 5.6 × sm_write (~70 % of 8)
            partition_fabric_gbps: 2600.0,
            inter_partition_gbps: 1700.0,
            slice_gbps: 105.0,
            mp_port_gbps: 820.0,
            mem_efficiency: 0.87,
            slice_queue_cycles: 9.0,
            gpc_port_queue_cycles: 12.0,
        }
    }

    /// H100 constants: uniform (partition-local) hit latency, variable miss
    /// penalty, CPC SM-to-SM network at 196–213 cycles, highest per-slice and
    /// aggregate bandwidth.
    pub fn hopper() -> Self {
        Self {
            base_hit_cycles: 192.0,
            cycles_per_mm: 1.0,
            partition_crossing_cycles: 85.0,
            dram_miss_cycles: 260.0,
            sm2sm_base_cycles: 188.0,
            sm2sm_cycles_per_mm: 0.55,
            slice_chain_cycles: 3.0,
            jitter_sigma_cycles: 2.2,
            sm_mlp_bytes: 8_600.0,
            flow_mlp_bytes: 8_600.0,
            flow_port_gbps: 62.0,
            sm_read_port_gbps: 68.0,
            sm_write_port_gbps: 57.0,
            tpc_read_speedup: 2.0,
            tpc_write_speedup: 2.0,
            cpc_read_speedup: 7.0,
            cpc_write_speedup: 4.6,
            gpc_port_gbps: 300.0,
            gpc_total_gbps: 1100.0,
            gpc_total_write_gbps: 440.0, // ≈ 7.7 × sm_write (~85 % of 9)
            partition_fabric_gbps: 4200.0,
            inter_partition_gbps: 2500.0,
            slice_gbps: 130.0,
            mp_port_gbps: 1300.0,
            mem_efficiency: 0.89,
            slice_queue_cycles: 9.0,
            gpc_port_queue_cycles: 12.0,
        }
    }

    /// Per-MP streaming DRAM bandwidth for `spec`, GB/s.
    pub fn dram_gbps_per_mp(&self, spec: &GpuSpec) -> f64 {
        self.mem_efficiency * spec.mem_peak_gbps / spec.hierarchy.num_mps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_pick_matching_calibration() {
        assert_eq!(
            Calibration::for_spec(&GpuSpec::v100()),
            Calibration::volta()
        );
        assert_eq!(
            Calibration::for_spec(&GpuSpec::a100()),
            Calibration::ampere()
        );
        assert_eq!(
            Calibration::for_spec(&GpuSpec::h100()),
            Calibration::hopper()
        );
    }

    #[test]
    fn custom_devices_default_to_volta() {
        let spec = GpuSpec::custom("toy", GpuSpec::v100().hierarchy.clone());
        assert_eq!(Calibration::for_spec(&spec), Calibration::volta());
    }

    #[test]
    fn single_partition_devices_have_no_crossing_cost() {
        assert_eq!(Calibration::volta().partition_crossing_cycles, 0.0);
        assert!(Calibration::ampere().partition_crossing_cycles > 0.0);
    }

    #[test]
    fn tpc_write_is_underprovisioned_only_on_volta() {
        assert!(Calibration::volta().tpc_write_speedup < 1.2);
        assert_eq!(Calibration::ampere().tpc_write_speedup, 2.0);
        assert_eq!(Calibration::hopper().tpc_write_speedup, 2.0);
    }

    #[test]
    fn dram_bandwidth_splits_across_mps() {
        let spec = GpuSpec::v100();
        let calib = Calibration::volta();
        let per_mp = calib.dram_gbps_per_mp(&spec);
        assert!((per_mp * 8.0 - 0.88 * 900.0).abs() < 1e-9);
    }

    #[test]
    fn hopper_has_sm2sm_network_constants() {
        let h = Calibration::hopper();
        assert!(h.sm2sm_base_cycles > 0.0);
        assert!(h.cpc_write_speedup < h.cpc_read_speedup);
    }

    #[test]
    fn unlimited_sentinel_is_finite_and_serializable() {
        assert!(UNLIMITED.is_finite());
        let volta = Calibration::volta();
        assert!(volta.cpc_read_speedup >= UNLIMITED);
        assert!(volta.inter_partition_gbps >= UNLIMITED);
    }
}
