//! Thread-block (CTA) schedulers.
//!
//! The paper (Section V-C) observes that the hardware thread-block scheduler
//! is effectively *static*: every launch of the same kernel lands on the same
//! SMs, so the non-uniform NoC latency is never observed by an attacker as
//! noise. The proposed defense is *random-seed* scheduling: blocks are still
//! assigned round-robin, but starting from a random SM each launch, which
//! randomises each block's NoC latency between runs at zero hardware cost.

use gnoc_telemetry::{TelemetryHandle, TraceEvent, SUBSYSTEM_ENGINE};
use gnoc_topo::SmId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A thread-block scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CtaScheduler {
    /// Deterministic round-robin from SM 0 — models the observed hardware
    /// behaviour.
    Static,
    /// Round-robin starting from a random SM drawn per launch — the paper's
    /// proposed defense (Implication #3).
    RandomSeed,
    /// Round-robin starting from a random SM within the first `span`
    /// positions — a partial-entropy defense used for ablation: `span = 1`
    /// degenerates to [`CtaScheduler::Static`], `span ≥ #SMs` to
    /// [`CtaScheduler::RandomSeed`].
    RandomWindow {
        /// Number of distinct start positions the seed is drawn from.
        span: u32,
    },
}

impl CtaScheduler {
    /// Assigns `num_blocks` thread blocks onto `sms`, returning the SM of
    /// each block in launch order.
    ///
    /// `rng` is consulted only by the randomised policies; a `Static`
    /// schedule never draws from it, so the policies can share a seed
    /// stream in experiments.
    ///
    /// # Panics
    ///
    /// Panics if `sms` is empty.
    pub fn assign<R: Rng + ?Sized>(
        self,
        num_blocks: usize,
        sms: &[SmId],
        rng: &mut R,
    ) -> Vec<SmId> {
        assert!(!sms.is_empty(), "cannot schedule onto zero SMs");
        let start = match self {
            CtaScheduler::Static => 0,
            CtaScheduler::RandomSeed => rng.gen_range(0..sms.len()),
            CtaScheduler::RandomWindow { span } => {
                rng.gen_range(0..(span as usize).clamp(1, sms.len()))
            }
        };
        (0..num_blocks)
            .map(|b| sms[(start + b) % sms.len()])
            .collect()
    }

    /// Like [`CtaScheduler::assign`], but records the placement decision on
    /// `telemetry`: one `engine.sched.launches` count plus a `placement`
    /// trace event naming the policy and the rotation start it drew.
    ///
    /// # Panics
    ///
    /// Panics if `sms` is empty.
    pub fn assign_traced<R: Rng + ?Sized>(
        self,
        num_blocks: usize,
        sms: &[SmId],
        rng: &mut R,
        telemetry: &TelemetryHandle,
    ) -> Vec<SmId> {
        let assignment = self.assign(num_blocks, sms, rng);
        telemetry.counter_add("engine.sched.launches", 1);
        telemetry.emit_with(|| {
            TraceEvent::new(0, SUBSYSTEM_ENGINE, "placement")
                .with("policy", format!("{self:?}"))
                .with("blocks", num_blocks)
                .with("start_sm", assignment.first().map_or(0, |sm| sm.index()))
        });
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sms(n: u32) -> Vec<SmId> {
        (0..n).map(SmId::new).collect()
    }

    #[test]
    fn static_schedule_is_repeatable() {
        let mut rng = StdRng::seed_from_u64(0);
        let sms = sms(8);
        let a = CtaScheduler::Static.assign(16, &sms, &mut rng);
        let b = CtaScheduler::Static.assign(16, &sms, &mut rng);
        assert_eq!(a, b);
        assert_eq!(a[0], SmId::new(0));
        assert_eq!(a[9], SmId::new(1));
    }

    #[test]
    fn random_seed_varies_across_launches() {
        let mut rng = StdRng::seed_from_u64(1);
        let sms = sms(32);
        let starts: Vec<SmId> = (0..64)
            .map(|_| CtaScheduler::RandomSeed.assign(1, &sms, &mut rng)[0])
            .collect();
        let distinct: std::collections::HashSet<_> = starts.iter().collect();
        assert!(
            distinct.len() > 10,
            "random seeds should spread: {distinct:?}"
        );
    }

    #[test]
    fn random_seed_is_still_round_robin_within_a_launch() {
        let mut rng = StdRng::seed_from_u64(2);
        let sms = sms(8);
        let assignment = CtaScheduler::RandomSeed.assign(8, &sms, &mut rng);
        // All SMs used exactly once: the seed rotates, it does not shuffle.
        let mut sorted = assignment.clone();
        sorted.sort();
        assert_eq!(sorted, sms);
        let start = assignment[0].index();
        for (b, sm) in assignment.iter().enumerate() {
            assert_eq!(sm.index(), (start + b) % 8);
        }
    }

    #[test]
    fn random_window_bounds_the_start() {
        let mut rng = StdRng::seed_from_u64(9);
        let sms = sms(32);
        for _ in 0..100 {
            let start = CtaScheduler::RandomWindow { span: 4 }.assign(1, &sms, &mut rng)[0];
            assert!(start.index() < 4, "start {start}");
        }
        // span 1 is static; huge spans clamp to the SM count.
        assert_eq!(
            CtaScheduler::RandomWindow { span: 1 }.assign(1, &sms, &mut rng)[0],
            SmId::new(0)
        );
        let wide = CtaScheduler::RandomWindow { span: 10_000 }.assign(1, &sms, &mut rng)[0];
        assert!(wide.index() < 32);
    }

    #[test]
    fn traced_assign_records_placement() {
        use gnoc_telemetry::{MemorySink, Telemetry, TelemetryHandle};

        let sink = MemorySink::new();
        let telemetry = TelemetryHandle::attach(Telemetry::with_sink(Box::new(sink.clone())));
        let mut rng = StdRng::seed_from_u64(11);
        let sms = sms(8);
        let traced = CtaScheduler::RandomSeed.assign_traced(4, &sms, &mut rng, &telemetry);
        // Same rng seed, untraced path: identical placement.
        let mut rng2 = StdRng::seed_from_u64(11);
        assert_eq!(traced, CtaScheduler::RandomSeed.assign(4, &sms, &mut rng2));

        let reg = telemetry.snapshot_registry().unwrap();
        assert_eq!(reg.counter("engine.sched.launches"), 1);
        let events = sink.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event, "placement");
        assert_eq!(
            events[0].field("start_sm").map(|f| f.to_string()),
            Some(traced[0].index().to_string())
        );
    }

    #[test]
    fn more_blocks_than_sms_wrap_around() {
        let mut rng = StdRng::seed_from_u64(3);
        let sms = sms(4);
        let assignment = CtaScheduler::Static.assign(10, &sms, &mut rng);
        assert_eq!(assignment.len(), 10);
        assert_eq!(assignment[4], assignment[0]);
    }

    #[test]
    #[should_panic(expected = "zero SMs")]
    fn empty_sm_list_is_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = CtaScheduler::Static.assign(1, &[], &mut rng);
    }
}
