//! Address → L2-slice hashing.
//!
//! Modern GPUs hash physical addresses across all L2 slices to avoid *memory
//! camping* (paper Section IV-C, Observation #12): any realistic access
//! stream is spread near-uniformly over the slices. [`AddressMap`] implements
//! a deterministic mixing hash plus the inverse operation the paper's
//! methodology needs — finding sets of addresses that all map to one target
//! slice (the `M[s]` tables of Algorithms 1 and 2).

use gnoc_topo::{CachePolicy, Hierarchy, MpId, PartitionId, SliceId};
use serde::{Deserialize, Serialize};

/// Cache-line size in bytes; addresses handled by the map are line addresses.
pub const LINE_BYTES: u64 = 128;

/// SplitMix64 finaliser — a high-quality 64-bit mixing function.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Errors disabling L2 slices in an [`AddressMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceDisableError {
    /// A disabled slice id is out of range for the device.
    OutOfRange {
        /// The offending slice index.
        slice: u32,
        /// Slices on the device.
        num_slices: u32,
    },
    /// The same slice is disabled twice.
    Duplicate(u32),
    /// Every slice is disabled.
    AllDisabled,
    /// A partition-local device lost every slice of one partition, leaving
    /// its SMs with no local L2 to cache into.
    PartitionEmptied(PartitionId),
}

impl std::fmt::Display for SliceDisableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OutOfRange { slice, num_slices } => {
                write!(
                    f,
                    "disabled slice {slice} out of range ({num_slices} slices)"
                )
            }
            Self::Duplicate(s) => write!(f, "slice {s} disabled twice"),
            Self::AllDisabled => write!(f, "every L2 slice is disabled"),
            Self::PartitionEmptied(p) => {
                write!(f, "partition {p} has no enabled L2 slice left")
            }
        }
    }
}

impl std::error::Error for SliceDisableError {}

/// Deterministic address-to-slice mapping for one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddressMap {
    num_slices: u32,
    slices_per_mp: u32,
    policy: CachePolicy,
    /// Enabled slice ids per die partition, for partition-local lookup.
    partition_slices: Vec<Vec<SliceId>>,
    /// MP of each slice.
    slice_mp: Vec<MpId>,
    /// Enabled slice ids in ascending order. On a pristine device this is
    /// every slice, and indexing it with the hash is the identity remap, so
    /// the fault-free path is bit-identical to a map without the field.
    enabled: Vec<SliceId>,
}

impl AddressMap {
    /// Builds the map for `hierarchy` under cache `policy`.
    pub fn new(hierarchy: &Hierarchy, policy: CachePolicy) -> Self {
        Self::with_disabled(hierarchy, policy, &[]).expect("empty disable set is valid")
    }

    /// Builds the map with the given L2 slices fused off: the hash is taken
    /// over the *enabled* slice list, so traffic redistributes uniformly over
    /// the survivors and a disabled slice is never the effective slice of any
    /// address. With no disabled slices this is exactly [`AddressMap::new`].
    ///
    /// # Errors
    ///
    /// Returns [`SliceDisableError`] on out-of-range or duplicate ids, when
    /// all slices are disabled, or when a [`CachePolicy::PartitionLocal`]
    /// device loses every slice of one partition.
    pub fn with_disabled(
        hierarchy: &Hierarchy,
        policy: CachePolicy,
        disabled: &[u32],
    ) -> Result<Self, SliceDisableError> {
        let num_slices = hierarchy.num_slices() as u32;
        let mut off = vec![false; num_slices as usize];
        for &s in disabled {
            if s >= num_slices {
                return Err(SliceDisableError::OutOfRange {
                    slice: s,
                    num_slices,
                });
            }
            if off[s as usize] {
                return Err(SliceDisableError::Duplicate(s));
            }
            off[s as usize] = true;
        }
        let enabled: Vec<SliceId> = (0..num_slices)
            .filter(|&s| !off[s as usize])
            .map(SliceId::new)
            .collect();
        if enabled.is_empty() {
            return Err(SliceDisableError::AllDisabled);
        }
        let partition_slices: Vec<Vec<SliceId>> = (0..hierarchy.num_partitions())
            .map(|p| {
                hierarchy
                    .slices_in_partition(PartitionId::new(p as u32))
                    .iter()
                    .copied()
                    .filter(|s| !off[s.index()])
                    .collect()
            })
            .collect();
        if policy == CachePolicy::PartitionLocal {
            for (p, slices) in partition_slices.iter().enumerate() {
                if slices.is_empty() {
                    return Err(SliceDisableError::PartitionEmptied(PartitionId::new(
                        p as u32,
                    )));
                }
            }
        }
        Ok(Self {
            num_slices,
            slices_per_mp: hierarchy.spec().slices_per_mp,
            policy,
            partition_slices,
            slice_mp: hierarchy.slices().iter().map(|s| s.mp).collect(),
            enabled,
        })
    }

    /// The cache policy this map implements.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Number of enabled (surviving) slices.
    pub fn num_enabled(&self) -> usize {
        self.enabled.len()
    }

    /// Whether `slice` can be the effective slice of any address.
    pub fn is_enabled(&self, slice: SliceId) -> bool {
        self.enabled.binary_search(&slice).is_ok()
    }

    /// The *home* slice of a line address under the global hash. On
    /// globally-shared devices this is where the line is cached; on
    /// partition-local devices it determines the home memory partition only.
    /// With fused-off slices the hash runs over the enabled list, so homes
    /// land only on survivors.
    pub fn home_slice(&self, line: u64) -> SliceId {
        self.enabled[(mix64(line) % self.enabled.len() as u64) as usize]
    }

    /// The home memory partition of a line address (where its DRAM lives).
    pub fn home_mp(&self, line: u64) -> MpId {
        self.slice_mp[self.home_slice(line).index()]
    }

    /// The slice that actually services a request for `line` issued from die
    /// partition `requester`.
    ///
    /// Under [`CachePolicy::GloballyShared`] this is the home slice; under
    /// [`CachePolicy::PartitionLocal`] (H100) the line is cached in a slice of
    /// the requester's own partition, so hit latency stays partition-local
    /// (paper Observation #6).
    pub fn effective_slice(&self, line: u64, requester: PartitionId) -> SliceId {
        match self.policy {
            CachePolicy::GloballyShared => self.home_slice(line),
            CachePolicy::PartitionLocal => {
                let local = &self.partition_slices[requester.index()];
                // Salt so the local spread is independent of the global hash.
                let idx = mix64(line ^ 0xa5a5_5a5a_dead_beef) % local.len() as u64;
                local[idx as usize]
            }
        }
    }

    /// Finds `n` distinct line addresses whose *effective* slice (for
    /// `requester`) is `slice` — the `M[s]` table of the paper's algorithms.
    /// Searches line addresses upward from `start`.
    pub fn addresses_for_slice(
        &self,
        slice: SliceId,
        requester: PartitionId,
        n: usize,
        start: u64,
    ) -> Vec<u64> {
        // A slice that can never service this requester — fused off, or
        // outside the requester's partition under partition-local caching —
        // has no such addresses, and the open-ended search below would never
        // terminate.
        let servable = match self.policy {
            CachePolicy::GloballyShared => self.is_enabled(slice),
            CachePolicy::PartitionLocal => {
                self.partition_slices[requester.index()].contains(&slice)
            }
        };
        if !servable {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(n);
        let mut line = start;
        while out.len() < n {
            if self.effective_slice(line, requester) == slice {
                out.push(line);
            }
            line += 1;
        }
        out
    }

    /// Histogram of effective-slice hits for an address stream — used to
    /// check hashing load balance (paper Fig. 16).
    pub fn slice_histogram<I>(&self, lines: I, requester: PartitionId) -> Vec<u64>
    where
        I: IntoIterator<Item = u64>,
    {
        let mut histogram = vec![0u64; self.num_slices as usize];
        for line in lines {
            histogram[self.effective_slice(line, requester).index()] += 1;
        }
        histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnoc_topo::GpuSpec;

    fn v100_map() -> AddressMap {
        let h = GpuSpec::v100().hierarchy();
        AddressMap::new(&h, CachePolicy::GloballyShared)
    }

    fn h100_map() -> (AddressMap, Hierarchy) {
        let h = GpuSpec::h100().hierarchy();
        (AddressMap::new(&h, CachePolicy::PartitionLocal), h)
    }

    #[test]
    fn hash_is_deterministic() {
        let m = v100_map();
        assert_eq!(m.home_slice(42), m.home_slice(42));
    }

    #[test]
    fn hash_balances_sequential_addresses() {
        // Observation #12: sequential traffic is load-balanced across slices.
        let m = v100_map();
        let hist = m.slice_histogram(0..32_000u64, PartitionId::new(0));
        let mean = 32_000.0 / hist.len() as f64;
        for (s, &count) in hist.iter().enumerate() {
            let dev = (count as f64 - mean).abs() / mean;
            assert!(dev < 0.15, "slice {s} imbalanced: {count} vs mean {mean}");
        }
    }

    #[test]
    fn addresses_for_unservable_slice_are_empty_not_a_hang() {
        // Fused-off slice: no address can hash to it, so the search must
        // return empty instead of scanning the address space forever.
        let h = GpuSpec::v100().hierarchy();
        let m = AddressMap::with_disabled(&h, CachePolicy::GloballyShared, &[7]).unwrap();
        assert!(!m.is_enabled(SliceId::new(7)));
        assert!(m
            .addresses_for_slice(SliceId::new(7), PartitionId::new(0), 4, 0)
            .is_empty());
        // Survivors still resolve.
        assert_eq!(
            m.addresses_for_slice(SliceId::new(8), PartitionId::new(0), 4, 0)
                .len(),
            4
        );

        // Partition-local: a remote slice can never serve this requester.
        let (m, h) = h100_map();
        let remote = h.slices_in_partition(PartitionId::new(1))[0];
        assert!(m
            .addresses_for_slice(remote, PartitionId::new(0), 4, 0)
            .is_empty());
    }

    #[test]
    fn addresses_for_slice_map_back() {
        let m = v100_map();
        let p = PartitionId::new(0);
        let target = SliceId::new(7);
        let addrs = m.addresses_for_slice(target, p, 64, 0);
        assert_eq!(addrs.len(), 64);
        for a in addrs {
            assert_eq!(m.effective_slice(a, p), target);
        }
    }

    #[test]
    fn globally_shared_ignores_requester() {
        let h = GpuSpec::a100().hierarchy();
        let m = AddressMap::new(&h, CachePolicy::GloballyShared);
        for line in 0..256 {
            assert_eq!(
                m.effective_slice(line, PartitionId::new(0)),
                m.effective_slice(line, PartitionId::new(1))
            );
        }
    }

    #[test]
    fn partition_local_keeps_hits_local() {
        let (m, h) = h100_map();
        for line in 0..512 {
            for p in 0..2u32 {
                let slice = m.effective_slice(line, PartitionId::new(p));
                assert_eq!(
                    h.slice(slice).partition,
                    PartitionId::new(p),
                    "line {line} served by remote slice on partition-local device"
                );
            }
        }
    }

    #[test]
    fn partition_local_home_mp_spans_both_partitions() {
        let (m, h) = h100_map();
        let mut seen = [false; 2];
        for line in 0..256 {
            seen[h.partition_of_mp(m.home_mp(line)).index()] = true;
        }
        assert!(seen[0] && seen[1], "home MPs should span both partitions");
    }

    #[test]
    fn disabled_slices_never_service_traffic() {
        let h = GpuSpec::a100().hierarchy();
        let disabled = [0u32, 17, 42, 79];
        let m = AddressMap::with_disabled(&h, CachePolicy::GloballyShared, &disabled).unwrap();
        assert_eq!(m.num_enabled(), 76);
        for line in 0..8_192u64 {
            let s = m.effective_slice(line, PartitionId::new(0));
            assert!(m.is_enabled(s));
            assert!(!disabled.contains(&(s.index() as u32)));
        }
    }

    #[test]
    fn disabled_slices_keep_the_hash_balanced() {
        let h = GpuSpec::v100().hierarchy();
        let m = AddressMap::with_disabled(&h, CachePolicy::GloballyShared, &[3, 9]).unwrap();
        let hist = m.slice_histogram(0..30_000u64, PartitionId::new(0));
        assert_eq!(hist[3], 0);
        assert_eq!(hist[9], 0);
        let mean = 30_000.0 / 30.0;
        for (s, &count) in hist.iter().enumerate() {
            if s == 3 || s == 9 {
                continue;
            }
            let dev = (count as f64 - mean).abs() / mean;
            assert!(dev < 0.15, "slice {s} imbalanced after remap: {count}");
        }
    }

    #[test]
    fn empty_disable_set_is_bit_identical_to_new() {
        let h = GpuSpec::a100().hierarchy();
        let pristine = AddressMap::new(&h, CachePolicy::GloballyShared);
        for line in 0..4_096u64 {
            // The enabled-list remap is the identity on a pristine device.
            assert_eq!(
                pristine.home_slice(line).index() as u64,
                super::mix64(line) % h.num_slices() as u64
            );
        }
    }

    #[test]
    fn partition_local_rejects_emptied_partition() {
        let h = GpuSpec::h100().hierarchy();
        // Disable every slice of partition 0 (slices are partition-major).
        let disabled: Vec<u32> = (0..40).collect();
        assert_eq!(
            AddressMap::with_disabled(&h, CachePolicy::PartitionLocal, &disabled),
            Err(SliceDisableError::PartitionEmptied(PartitionId::new(0)))
        );
        // The same disable set is fine on a globally-shared device.
        AddressMap::with_disabled(&h, CachePolicy::GloballyShared, &disabled).unwrap();
    }

    #[test]
    fn disable_validation_errors() {
        let h = GpuSpec::v100().hierarchy();
        assert_eq!(
            AddressMap::with_disabled(&h, CachePolicy::GloballyShared, &[99]),
            Err(SliceDisableError::OutOfRange {
                slice: 99,
                num_slices: 32
            })
        );
        assert_eq!(
            AddressMap::with_disabled(&h, CachePolicy::GloballyShared, &[1, 1]),
            Err(SliceDisableError::Duplicate(1))
        );
        let all: Vec<u32> = (0..32).collect();
        assert_eq!(
            AddressMap::with_disabled(&h, CachePolicy::GloballyShared, &all),
            Err(SliceDisableError::AllDisabled)
        );
    }

    #[test]
    fn home_mp_agrees_with_home_slice() {
        let m = v100_map();
        let h = GpuSpec::v100().hierarchy();
        for line in 0..128 {
            assert_eq!(m.home_mp(line), h.slice(m.home_slice(line)).mp);
        }
    }
}
