//! Address → L2-slice hashing.
//!
//! Modern GPUs hash physical addresses across all L2 slices to avoid *memory
//! camping* (paper Section IV-C, Observation #12): any realistic access
//! stream is spread near-uniformly over the slices. [`AddressMap`] implements
//! a deterministic mixing hash plus the inverse operation the paper's
//! methodology needs — finding sets of addresses that all map to one target
//! slice (the `M[s]` tables of Algorithms 1 and 2).

use gnoc_topo::{CachePolicy, Hierarchy, MpId, PartitionId, SliceId};
use serde::{Deserialize, Serialize};

/// Cache-line size in bytes; addresses handled by the map are line addresses.
pub const LINE_BYTES: u64 = 128;

/// SplitMix64 finaliser — a high-quality 64-bit mixing function.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic address-to-slice mapping for one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddressMap {
    num_slices: u32,
    slices_per_mp: u32,
    policy: CachePolicy,
    /// Slice ids per die partition, for partition-local lookup.
    partition_slices: Vec<Vec<SliceId>>,
    /// MP of each slice.
    slice_mp: Vec<MpId>,
}

impl AddressMap {
    /// Builds the map for `hierarchy` under cache `policy`.
    pub fn new(hierarchy: &Hierarchy, policy: CachePolicy) -> Self {
        let partition_slices = (0..hierarchy.num_partitions())
            .map(|p| {
                hierarchy
                    .slices_in_partition(PartitionId::new(p as u32))
                    .to_vec()
            })
            .collect();
        Self {
            num_slices: hierarchy.num_slices() as u32,
            slices_per_mp: hierarchy.spec().slices_per_mp,
            policy,
            partition_slices,
            slice_mp: hierarchy.slices().iter().map(|s| s.mp).collect(),
        }
    }

    /// The cache policy this map implements.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// The *home* slice of a line address under the global hash. On
    /// globally-shared devices this is where the line is cached; on
    /// partition-local devices it determines the home memory partition only.
    pub fn home_slice(&self, line: u64) -> SliceId {
        SliceId::new((mix64(line) % u64::from(self.num_slices)) as u32)
    }

    /// The home memory partition of a line address (where its DRAM lives).
    pub fn home_mp(&self, line: u64) -> MpId {
        self.slice_mp[self.home_slice(line).index()]
    }

    /// The slice that actually services a request for `line` issued from die
    /// partition `requester`.
    ///
    /// Under [`CachePolicy::GloballyShared`] this is the home slice; under
    /// [`CachePolicy::PartitionLocal`] (H100) the line is cached in a slice of
    /// the requester's own partition, so hit latency stays partition-local
    /// (paper Observation #6).
    pub fn effective_slice(&self, line: u64, requester: PartitionId) -> SliceId {
        match self.policy {
            CachePolicy::GloballyShared => self.home_slice(line),
            CachePolicy::PartitionLocal => {
                let local = &self.partition_slices[requester.index()];
                // Salt so the local spread is independent of the global hash.
                let idx = mix64(line ^ 0xa5a5_5a5a_dead_beef) % local.len() as u64;
                local[idx as usize]
            }
        }
    }

    /// Finds `n` distinct line addresses whose *effective* slice (for
    /// `requester`) is `slice` — the `M[s]` table of the paper's algorithms.
    /// Searches line addresses upward from `start`.
    pub fn addresses_for_slice(
        &self,
        slice: SliceId,
        requester: PartitionId,
        n: usize,
        start: u64,
    ) -> Vec<u64> {
        let mut out = Vec::with_capacity(n);
        let mut line = start;
        while out.len() < n {
            if self.effective_slice(line, requester) == slice {
                out.push(line);
            }
            line += 1;
        }
        out
    }

    /// Histogram of effective-slice hits for an address stream — used to
    /// check hashing load balance (paper Fig. 16).
    pub fn slice_histogram<I>(&self, lines: I, requester: PartitionId) -> Vec<u64>
    where
        I: IntoIterator<Item = u64>,
    {
        let mut histogram = vec![0u64; self.num_slices as usize];
        for line in lines {
            histogram[self.effective_slice(line, requester).index()] += 1;
        }
        histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnoc_topo::GpuSpec;

    fn v100_map() -> AddressMap {
        let h = GpuSpec::v100().hierarchy();
        AddressMap::new(&h, CachePolicy::GloballyShared)
    }

    fn h100_map() -> (AddressMap, Hierarchy) {
        let h = GpuSpec::h100().hierarchy();
        (AddressMap::new(&h, CachePolicy::PartitionLocal), h)
    }

    #[test]
    fn hash_is_deterministic() {
        let m = v100_map();
        assert_eq!(m.home_slice(42), m.home_slice(42));
    }

    #[test]
    fn hash_balances_sequential_addresses() {
        // Observation #12: sequential traffic is load-balanced across slices.
        let m = v100_map();
        let hist = m.slice_histogram(0..32_000u64, PartitionId::new(0));
        let mean = 32_000.0 / hist.len() as f64;
        for (s, &count) in hist.iter().enumerate() {
            let dev = (count as f64 - mean).abs() / mean;
            assert!(dev < 0.15, "slice {s} imbalanced: {count} vs mean {mean}");
        }
    }

    #[test]
    fn addresses_for_slice_map_back() {
        let m = v100_map();
        let p = PartitionId::new(0);
        let target = SliceId::new(7);
        let addrs = m.addresses_for_slice(target, p, 64, 0);
        assert_eq!(addrs.len(), 64);
        for a in addrs {
            assert_eq!(m.effective_slice(a, p), target);
        }
    }

    #[test]
    fn globally_shared_ignores_requester() {
        let h = GpuSpec::a100().hierarchy();
        let m = AddressMap::new(&h, CachePolicy::GloballyShared);
        for line in 0..256 {
            assert_eq!(
                m.effective_slice(line, PartitionId::new(0)),
                m.effective_slice(line, PartitionId::new(1))
            );
        }
    }

    #[test]
    fn partition_local_keeps_hits_local() {
        let (m, h) = h100_map();
        for line in 0..512 {
            for p in 0..2u32 {
                let slice = m.effective_slice(line, PartitionId::new(p));
                assert_eq!(
                    h.slice(slice).partition,
                    PartitionId::new(p),
                    "line {line} served by remote slice on partition-local device"
                );
            }
        }
    }

    #[test]
    fn partition_local_home_mp_spans_both_partitions() {
        let (m, h) = h100_map();
        let mut seen = [false; 2];
        for line in 0..256 {
            seen[h.partition_of_mp(m.home_mp(line)).index()] = true;
        }
        assert!(seen[0] && seen[1], "home MPs should span both partitions");
    }

    #[test]
    fn home_mp_agrees_with_home_slice() {
        let m = v100_map();
        let h = GpuSpec::v100().hierarchy();
        for line in 0..128 {
            assert_eq!(m.home_mp(line), h.slice(m.home_slice(line)).mp);
        }
    }
}
