//! Minimal L2 residency model.
//!
//! The paper's latency methodology only needs to distinguish *L2 hit* from
//! *L2 miss*: Algorithm 1 warms the working set so every measured access hits,
//! and the miss-penalty experiments use cold lines. [`L2State`] tracks which
//! (partition, line) pairs are resident, with FIFO replacement bounded by the
//! device's L2 capacity.

use std::collections::{HashMap, VecDeque};

/// Key identifying one cached copy: the die partition whose L2 holds it plus
/// the line address. Globally-shared devices use partition 0 for every line.
pub type ResidencyKey = (u32, u64);

/// Outcome of an L2 lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Outcome {
    /// The line was resident.
    Hit,
    /// The line was not resident; it is resident after the access.
    Miss,
}

/// FIFO-replacement residency tracker for the device's L2.
#[derive(Debug, Clone, Default)]
pub struct L2State {
    resident: HashMap<ResidencyKey, ()>,
    order: VecDeque<ResidencyKey>,
    capacity_lines: usize,
}

impl L2State {
    /// Creates a tracker bounded to `capacity_lines` resident lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` is zero.
    pub fn new(capacity_lines: usize) -> Self {
        assert!(capacity_lines > 0, "L2 capacity must be non-zero");
        Self {
            resident: HashMap::new(),
            order: VecDeque::new(),
            capacity_lines,
        }
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }

    /// Whether `key` is currently resident, without touching state.
    pub fn contains(&self, key: ResidencyKey) -> bool {
        self.resident.contains_key(&key)
    }

    /// Performs an access: returns [`L2Outcome::Hit`] if resident, otherwise
    /// installs the line (evicting FIFO if full) and returns
    /// [`L2Outcome::Miss`].
    pub fn access(&mut self, key: ResidencyKey) -> L2Outcome {
        if self.resident.contains_key(&key) {
            L2Outcome::Hit
        } else {
            self.install(key);
            L2Outcome::Miss
        }
    }

    /// Warms `key` without reporting an outcome (the warm-up loop of
    /// Algorithm 1).
    pub fn warm(&mut self, key: ResidencyKey) {
        if !self.resident.contains_key(&key) {
            self.install(key);
        }
    }

    /// Drops all residency state (e.g. between experiments).
    pub fn flush(&mut self) {
        self.resident.clear();
        self.order.clear();
    }

    fn install(&mut self, key: ResidencyKey) {
        if self.resident.len() == self.capacity_lines {
            if let Some(victim) = self.order.pop_front() {
                self.resident.remove(&victim);
            }
        }
        self.resident.insert(key, ());
        self.order.push_back(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut l2 = L2State::new(4);
        assert_eq!(l2.access((0, 1)), L2Outcome::Miss);
        assert_eq!(l2.access((0, 1)), L2Outcome::Hit);
    }

    #[test]
    fn warm_makes_accesses_hit() {
        let mut l2 = L2State::new(4);
        l2.warm((0, 9));
        assert_eq!(l2.access((0, 9)), L2Outcome::Hit);
    }

    #[test]
    fn partition_copies_are_independent() {
        // On H100 each partition caches its own copy of a line.
        let mut l2 = L2State::new(4);
        l2.warm((0, 5));
        assert_eq!(l2.access((1, 5)), L2Outcome::Miss);
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut l2 = L2State::new(2);
        l2.warm((0, 1));
        l2.warm((0, 2));
        l2.warm((0, 3)); // evicts line 1
        assert!(!l2.contains((0, 1)));
        assert!(l2.contains((0, 2)));
        assert!(l2.contains((0, 3)));
        assert_eq!(l2.len(), 2);
    }

    #[test]
    fn warm_is_idempotent() {
        let mut l2 = L2State::new(2);
        l2.warm((0, 1));
        l2.warm((0, 1));
        l2.warm((0, 2));
        // Line 1 must still be resident: double-warm must not double-insert.
        l2.warm((0, 3));
        assert!(!l2.contains((0, 1)) || l2.len() <= 2);
        assert_eq!(l2.len(), 2);
    }

    #[test]
    fn flush_empties_state() {
        let mut l2 = L2State::new(4);
        l2.warm((0, 1));
        l2.flush();
        assert!(l2.is_empty());
        assert_eq!(l2.access((0, 1)), L2Outcome::Miss);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_is_rejected() {
        let _ = L2State::new(0);
    }
}
