//! # gnoc-engine
//!
//! The virtual GPU device behind the `gnoc` reproduction of *Uncovering Real
//! GPU NoC Characteristics* (MICRO 2024).
//!
//! Real silicon is replaced by a mechanistic model with the same observable
//! structure:
//!
//! - **Latency** ([`mod@latency`]) — round-trip cycles derived from floorplan wire
//!   distance, partition crossings and cache policy;
//! - **Bandwidth** ([`FabricModel`]) — hierarchical link capacities resolved
//!   by a max-min fair solver with Little's-law and queueing feedback;
//! - **State** ([`GpuDevice`]) — L2 residency, address hashing, profiler
//!   counters and seeded measurement jitter.
//!
//! ```
//! use gnoc_engine::GpuDevice;
//! use gnoc_topo::{SmId, SliceId};
//!
//! let mut gpu = GpuDevice::v100(42);
//! // Warm a line, then time a read — Algorithm 1 of the paper.
//! gpu.warm_line(SmId::new(24), 1000);
//! let cycles = gpu.timed_read(SmId::new(24), 1000);
//! assert!(cycles > 150 && cycles < 300);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod calib;
mod device;
mod fabric;
mod hash;
pub mod latency;
mod noise;
mod profiler;
mod scheduler;

pub use cache::{L2Outcome, L2State, ResidencyKey};
pub use calib::{Calibration, UNLIMITED};
pub use device::{DeviceError, GpuDevice, FAULTY_SLICE_PENALTY_CYCLES};
pub use fabric::{AccessKind, Direction, FabricModel, FlowSolution, FlowSpec, ResourceKind};
pub use hash::{AddressMap, SliceDisableError, LINE_BYTES};
pub use noise::{gaussian, jittered_cycles};
pub use profiler::Profiler;
pub use scheduler::CtaScheduler;
