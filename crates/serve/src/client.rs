//! The thin client side: connect, send one request line, collect response
//! envelopes, and extract payloads *textually* so the daemon's exact bytes
//! survive (parsing and re-serializing JSON could reformat numbers, which
//! would break the bit-identity contract `gnoc submit` asserts).

use crate::engine::ServeError;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Sends one request line over the daemon socket and returns all response
/// envelopes, in order (an `accepted` line followed by the terminal line,
/// or a single terminal line).
///
/// # Errors
///
/// [`ServeError::Io`] on connect/write/read failures (daemon not running,
/// bad socket path) and [`ServeError::Config`] when the daemon hangs up
/// without a terminal envelope.
pub fn request_over_socket(socket: &Path, line: &str) -> Result<Vec<String>, ServeError> {
    let mut stream = UnixStream::connect(socket)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut envelopes = Vec::new();
    for envelope in reader.lines() {
        let envelope = envelope?;
        let kind = envelope_type(&envelope).unwrap_or_default();
        let terminal = kind != "accepted";
        envelopes.push(envelope);
        if terminal {
            return Ok(envelopes);
        }
    }
    Err(ServeError::Config(
        "daemon closed the connection without a terminal response".into(),
    ))
}

/// Extracts the `type` field of a response envelope (`accepted`, `done`,
/// `failed`, `rejected`, `health`, `bye`), or `None` for malformed lines.
pub fn envelope_type(envelope: &str) -> Option<String> {
    let value: serde::Value = serde_json::from_str(envelope).ok()?;
    Some(value.field("type").ok()?.as_str()?.to_string())
}

/// Extracts the raw `payload` object from a `done`/`health` envelope
/// *textually*: the payload starts right after the `"payload":` marker and
/// runs to the envelope's closing brace. Envelopes are built with the
/// payload as the final field precisely so this slice is well-defined.
pub fn extract_payload(envelope: &str) -> Option<&str> {
    let marker = "\"payload\":";
    let start = envelope.find(marker)? + marker.len();
    let end = envelope.rfind('}')?;
    if end <= start {
        return None;
    }
    Some(&envelope[start..end])
}

/// Convenience accessors for envelope fields clients branch on.
pub fn envelope_field_bool(envelope: &str, field: &str) -> Option<bool> {
    let value: serde::Value = serde_json::from_str(envelope).ok()?;
    value.field(field).ok()?.as_bool()
}

/// String field accessor (e.g. `reason` on a rejection, `error` on a
/// failure).
pub fn envelope_field_str(envelope: &str, field: &str) -> Option<String> {
    let value: serde::Value = serde_json::from_str(envelope).ok()?;
    Some(value.field(field).ok()?.as_str()?.to_string())
}

/// Extracts a result payload's `summary` field — the one-line human text
/// that matches the equivalent one-shot subcommand's output.
pub fn payload_summary(payload: &str) -> Option<String> {
    let value: serde::Value = serde_json::from_str(payload).ok()?;
    Some(value.field("summary").ok()?.as_str()?.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{envelope_done, envelope_rejected};

    #[test]
    fn payload_extraction_is_byte_exact() {
        let payload = "{\"kind\":\"mesh\",\"mean_latency\":12.500000,\"summary\":\"x}y\"}";
        let envelope = envelope_done(7, true, 0, payload);
        assert_eq!(extract_payload(&envelope), Some(payload));
        assert_eq!(envelope_type(&envelope).as_deref(), Some("done"));
        assert_eq!(envelope_field_bool(&envelope, "cached"), Some(true));
    }

    #[test]
    fn rejection_reason_round_trips() {
        let envelope = envelope_rejected("queue full (4 pending, cap 4)");
        assert_eq!(envelope_type(&envelope).as_deref(), Some("rejected"));
        assert_eq!(
            envelope_field_str(&envelope, "reason").as_deref(),
            Some("queue full (4 pending, cap 4)")
        );
    }
}
