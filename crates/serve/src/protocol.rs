//! The versioned JSON line protocol `gnoc serve` speaks.
//!
//! One request per line in, one or more response envelopes per line out.
//! Every request carries `"schema": 1`; a request with a different (or
//! missing) schema is rejected, never guessed at. Responses are emitted as
//! single-line JSON envelopes whose `"type"` field is one of `accepted`,
//! `rejected`, `done`, `failed`, `health`, or `bye`.
//!
//! ## Canonical form and the cache key
//!
//! Each job kind has a *canonical* serialization produced by
//! [`JobSpec::canonical_json`]: every field explicit (defaults filled in),
//! fields in a fixed order, numbers rendered by Rust's `{}`/`{:.6}`
//! formatting. The content-address of a job is the FNV-1a 64-bit hash of
//! those canonical bytes ([`JobSpec::cache_key`]), so two requests that
//! normalize to the same job — regardless of field order or omitted
//! defaults on the wire — share a cache entry, and any change to device,
//! fault plan, probe config, or seed changes the key.
//!
//! Result *payloads* are also canonical single-line JSON built by the job
//! runners with fixed formatting; byte-identity of payloads is the
//! determinism contract the daemon, cache, and journal all preserve.

use gnoc_core::FaultPlan;
use gnoc_core::LatencyProbe;
use serde::{Deserialize, Value};

/// The protocol schema version every request must declare.
pub const SCHEMA: u64 = 1;

/// A job request the daemon can queue and execute.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// A checkpointed latency campaign on a device preset.
    Campaign {
        /// Device preset name (`v100`, `a100`, `a100full`, `a100fs`, `h100`).
        device: String,
        /// Campaign seed; every SM row derives from `row_seed(seed, sm)`.
        seed: u64,
        /// Probe working-set lines.
        lines: usize,
        /// Probe samples per (SM, slice) pair.
        samples: usize,
        /// Optional row budget: measure at most this many rows this job and
        /// salvage a degraded result (the `--deadline-rows` semantics).
        deadline_rows: Option<usize>,
        /// Optional fault plan applied to the device.
        plan: Option<FaultPlan>,
    },
    /// A reliable-mesh soak on the paper's 6x6 mesh.
    Mesh {
        /// Traffic seed (splitmix64 stream).
        seed: u64,
        /// Transfers to submit.
        transfers: usize,
        /// Optional fault plan applied to the mesh.
        plan: Option<FaultPlan>,
    },
    /// A NoC-only chaos soak over a contiguous seed range.
    Chaos {
        /// First seed.
        seed_start: u64,
        /// Number of seeds.
        seed_count: u64,
        /// Transfers per iteration.
        transfers: u32,
    },
    /// A multi-device fabric soak.
    Fabric {
        /// Device count.
        devices: u32,
        /// Inter-device topology name (normalized to lowercase).
        topology: String,
        /// Traffic seed.
        seed: u64,
        /// Transfers to submit.
        transfers: usize,
    },
    /// A recorded-trace replay: re-drive the captured run and verify the
    /// final-state digest against the trace footer.
    Replay {
        /// The whole trace artifact, hex-encoded (normalized to lowercase).
        trace_hex: String,
        /// Optional fault plan; its digest must match the trace header's.
        plan: Option<FaultPlan>,
    },
}

/// A parsed protocol request: a job, or one of the two control verbs.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Queue (or serve from cache) a measurement job.
    Job(Box<JobSpec>),
    /// Report queue depth, cache hit rate, and overload state.
    Health,
    /// Begin draining: reject new jobs, finish queued ones, then exit.
    Shutdown,
}

fn get_u64(v: &Value, name: &str, default: u64) -> Result<u64, String> {
    match v.field(name) {
        Ok(f) => f
            .as_u64()
            .ok_or_else(|| format!("field `{name}` must be a non-negative integer")),
        Err(_) => Ok(default),
    }
}

fn get_usize(v: &Value, name: &str, default: usize) -> Result<usize, String> {
    Ok(get_u64(v, name, default as u64)? as usize)
}

fn get_plan(v: &Value) -> Result<Option<FaultPlan>, String> {
    match v.field("plan") {
        Ok(Value::Null) | Err(_) => Ok(None),
        Ok(f) => FaultPlan::deserialize_value(f)
            .map(Some)
            .map_err(|e| format!("field `plan` is not a fault plan: {e}")),
    }
}

impl Request {
    /// Parses one request line. The error string is human-readable and is
    /// surfaced verbatim in the daemon's `rejected` envelope (prefixed with
    /// `invalid: `), so it names the offending field.
    pub fn parse(line: &str) -> Result<Self, String> {
        let value: Value =
            serde_json::from_str(line).map_err(|e| format!("request is not JSON: {e:?}"))?;
        match value.field("schema").ok().and_then(Value::as_u64) {
            Some(SCHEMA) => {}
            Some(other) => {
                return Err(format!(
                    "unsupported schema {other} (this daemon speaks {SCHEMA})"
                ))
            }
            None => return Err(format!("missing \"schema\": {SCHEMA} field")),
        }
        let op = value
            .field("op")
            .ok()
            .and_then(Value::as_str)
            .ok_or_else(|| "missing \"op\" field".to_string())?;
        match op {
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            "campaign" => {
                let device = value
                    .field("device")
                    .ok()
                    .and_then(Value::as_str)
                    .ok_or_else(|| "campaign needs a \"device\" preset name".to_string())?
                    .to_ascii_lowercase();
                gnoc_core::spec_for_preset(&device)
                    .map_err(|_| format!("unknown device preset {device:?}"))?;
                let probe = LatencyProbe::default();
                let lines = get_usize(&value, "lines", probe.working_set_lines)?;
                let samples = get_usize(&value, "samples", probe.samples)?;
                if lines == 0 || samples == 0 {
                    return Err("campaign needs lines >= 1 and samples >= 1".to_string());
                }
                let deadline_rows = match value.field("deadline_rows") {
                    Ok(Value::Null) | Err(_) => None,
                    Ok(f) => Some(f.as_u64().ok_or_else(|| {
                        "field `deadline_rows` must be a non-negative integer".to_string()
                    })? as usize),
                };
                if deadline_rows == Some(0) {
                    return Err("deadline_rows must be >= 1 when given".to_string());
                }
                Ok(Request::Job(Box::new(JobSpec::Campaign {
                    device,
                    seed: get_u64(&value, "seed", 0)?,
                    lines,
                    samples,
                    deadline_rows,
                    plan: get_plan(&value)?,
                })))
            }
            "mesh" => {
                let transfers = get_usize(&value, "transfers", 200)?;
                if transfers == 0 {
                    return Err("mesh needs transfers >= 1".to_string());
                }
                Ok(Request::Job(Box::new(JobSpec::Mesh {
                    seed: get_u64(&value, "seed", 0)?,
                    transfers,
                    plan: get_plan(&value)?,
                })))
            }
            "chaos" => {
                let seed_count = get_u64(&value, "seed_count", 4)?;
                let transfers = get_u64(&value, "transfers", 64)? as u32;
                if seed_count == 0 || transfers == 0 {
                    return Err("chaos needs seed_count >= 1 and transfers >= 1".to_string());
                }
                Ok(Request::Job(Box::new(JobSpec::Chaos {
                    seed_start: get_u64(&value, "seed_start", 0)?,
                    seed_count,
                    transfers,
                })))
            }
            "fabric" => {
                let devices = get_u64(&value, "devices", 2)? as u32;
                let topology = match value.field("topology") {
                    Ok(f) => f
                        .as_str()
                        .ok_or_else(|| "field `topology` must be a string".to_string())?
                        .to_ascii_lowercase(),
                    Err(_) => "ring".to_string(),
                };
                let parsed = gnoc_core::FabricTopology::parse(&topology)
                    .ok_or_else(|| format!("unknown fabric topology {topology:?}"))?;
                if devices < 2 {
                    return Err("fabric needs devices >= 2".to_string());
                }
                if !parsed.supports_devices(devices) {
                    return Err(format!(
                        "topology {topology:?} does not support {devices} devices"
                    ));
                }
                let transfers = get_usize(&value, "transfers", 64)?;
                if transfers == 0 {
                    return Err("fabric needs transfers >= 1".to_string());
                }
                Ok(Request::Job(Box::new(JobSpec::Fabric {
                    devices,
                    topology,
                    seed: get_u64(&value, "seed", 0)?,
                    transfers,
                })))
            }
            "replay" => {
                let trace_hex = value
                    .field("trace")
                    .ok()
                    .and_then(Value::as_str)
                    .ok_or_else(|| "replay needs a hex \"trace\" field".to_string())?
                    .to_ascii_lowercase();
                if trace_hex.is_empty()
                    || trace_hex.len() % 2 != 0
                    || !trace_hex.bytes().all(|b| b.is_ascii_hexdigit())
                {
                    return Err(
                        "field `trace` must be a non-empty even-length hex string".to_string()
                    );
                }
                Ok(Request::Job(Box::new(JobSpec::Replay {
                    trace_hex,
                    plan: get_plan(&value)?,
                })))
            }
            other => Err(format!(
                "unknown op {other:?} (known: campaign, mesh, chaos, fabric, replay, health, shutdown)"
            )),
        }
    }
}

/// Escapes `s` as a JSON string literal (with the surrounding quotes).
pub fn json_str(s: &str) -> String {
    serde_json::to_string(&s.to_string()).expect("strings always serialize")
}

impl JobSpec {
    /// Short job-kind label (used in envelopes, journal lines, and logs).
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Campaign { .. } => "campaign",
            JobSpec::Mesh { .. } => "mesh",
            JobSpec::Chaos { .. } => "chaos",
            JobSpec::Fabric { .. } => "fabric",
            JobSpec::Replay { .. } => "replay",
        }
    }

    /// The canonical single-line serialization: every field explicit, fixed
    /// order, schema included. This is what gets hashed for the cache key
    /// and embedded in journal `submitted` records — re-parsing it with
    /// [`Request::parse`] round-trips to an equal `JobSpec`.
    pub fn canonical_json(&self) -> String {
        match self {
            JobSpec::Campaign {
                device,
                seed,
                lines,
                samples,
                deadline_rows,
                plan,
            } => {
                let dr = match deadline_rows {
                    Some(n) => n.to_string(),
                    None => "null".to_string(),
                };
                let plan_json = match plan {
                    Some(p) => serde_json::to_string(p).expect("fault plans always serialize"),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"schema\":{SCHEMA},\"op\":\"campaign\",\"device\":{},\"seed\":{seed},\"lines\":{lines},\"samples\":{samples},\"deadline_rows\":{dr},\"plan\":{plan_json}}}",
                    json_str(device)
                )
            }
            JobSpec::Mesh {
                seed,
                transfers,
                plan,
            } => {
                let plan_json = match plan {
                    Some(p) => serde_json::to_string(p).expect("fault plans always serialize"),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"schema\":{SCHEMA},\"op\":\"mesh\",\"seed\":{seed},\"transfers\":{transfers},\"plan\":{plan_json}}}"
                )
            }
            JobSpec::Chaos {
                seed_start,
                seed_count,
                transfers,
            } => format!(
                "{{\"schema\":{SCHEMA},\"op\":\"chaos\",\"seed_start\":{seed_start},\"seed_count\":{seed_count},\"transfers\":{transfers}}}"
            ),
            JobSpec::Fabric {
                devices,
                topology,
                seed,
                transfers,
            } => format!(
                "{{\"schema\":{SCHEMA},\"op\":\"fabric\",\"devices\":{devices},\"topology\":{},\"seed\":{seed},\"transfers\":{transfers}}}",
                json_str(topology)
            ),
            JobSpec::Replay { trace_hex, plan } => {
                let plan_json = match plan {
                    Some(p) => serde_json::to_string(p).expect("fault plans always serialize"),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"schema\":{SCHEMA},\"op\":\"replay\",\"trace\":{},\"plan\":{plan_json}}}",
                    json_str(trace_hex)
                )
            }
        }
    }

    /// The content-address of this job: FNV-1a 64 over the canonical bytes,
    /// as 16 lowercase hex digits. Covers the device spec (via its preset
    /// name), the full fault plan, the probe/traffic config, and the seed —
    /// everything the result is a function of.
    pub fn cache_key(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical_json().as_bytes()))
    }
}

/// FNV-1a 64-bit: the workspace is offline (no hashing crates), and a fast
/// non-cryptographic content hash is exactly what a local result cache
/// needs — corruption detection, not adversarial collision resistance.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ----------------------------------------------------------- envelopes ----

/// `{"schema":1,"type":"accepted","job":N}` — the job cleared admission and
/// is queued; a terminal `done`/`failed` envelope follows on this session.
pub fn envelope_accepted(job: u64) -> String {
    format!("{{\"schema\":{SCHEMA},\"type\":\"accepted\",\"job\":{job}}}")
}

/// `{"schema":1,"type":"rejected","reason":"..."}` — admission refused the
/// request (overload, caps, draining) or it was malformed (`invalid: ...`).
pub fn envelope_rejected(reason: &str) -> String {
    format!(
        "{{\"schema\":{SCHEMA},\"type\":\"rejected\",\"reason\":{}}}",
        json_str(reason)
    )
}

/// `{"schema":1,"type":"done",...}` — the job's canonical result payload.
/// `payload` must already be canonical single-line JSON; it is embedded
/// verbatim so its bytes survive the trip. `resumed_rows` is > 0 only when
/// a journal-recovered campaign resumed from its checkpoint.
pub fn envelope_done(job: u64, cached: bool, resumed_rows: usize, payload: &str) -> String {
    format!(
        "{{\"schema\":{SCHEMA},\"type\":\"done\",\"job\":{job},\"cached\":{cached},\"resumed_rows\":{resumed_rows},\"payload\":{payload}}}"
    )
}

/// `{"schema":1,"type":"failed","job":N,"error":"..."}` — the job ran and
/// failed (including a contained worker panic). The daemon stays up.
pub fn envelope_failed(job: u64, error: &str) -> String {
    format!(
        "{{\"schema\":{SCHEMA},\"type\":\"failed\",\"job\":{job},\"error\":{}}}",
        json_str(error)
    )
}

/// `{"schema":1,"type":"health","payload":{...}}`.
pub fn envelope_health(payload: &str) -> String {
    format!("{{\"schema\":{SCHEMA},\"type\":\"health\",\"payload\":{payload}}}")
}

/// `{"schema":1,"type":"bye","pending":N}` — drain acknowledged; `pending`
/// jobs will still be finished before the daemon exits.
pub fn envelope_bye(pending: usize) -> String {
    format!("{{\"schema\":{SCHEMA},\"type\":\"bye\",\"pending\":{pending}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_requires_schema_and_op() {
        assert!(Request::parse("not json").unwrap_err().contains("not JSON"));
        assert!(Request::parse("{\"op\":\"health\"}")
            .unwrap_err()
            .contains("missing \"schema\""));
        assert!(Request::parse("{\"schema\":2,\"op\":\"health\"}")
            .unwrap_err()
            .contains("unsupported schema 2"));
        assert!(Request::parse("{\"schema\":1}")
            .unwrap_err()
            .contains("missing \"op\""));
        assert!(Request::parse("{\"schema\":1,\"op\":\"frobnicate\"}")
            .unwrap_err()
            .contains("unknown op"));
    }

    #[test]
    fn canonical_json_round_trips() {
        let specs = [
            JobSpec::Campaign {
                device: "v100".into(),
                seed: 7,
                lines: 2,
                samples: 3,
                deadline_rows: Some(5),
                plan: None,
            },
            JobSpec::Mesh {
                seed: 1,
                transfers: 50,
                plan: None,
            },
            JobSpec::Chaos {
                seed_start: 4,
                seed_count: 2,
                transfers: 32,
            },
            JobSpec::Fabric {
                devices: 3,
                topology: "ring".into(),
                seed: 9,
                transfers: 16,
            },
            JobSpec::Replay {
                trace_hex: "deadbeef".into(),
                plan: None,
            },
        ];
        for spec in specs {
            let json = spec.canonical_json();
            match Request::parse(&json).expect("canonical json parses") {
                Request::Job(back) => assert_eq!(*back, spec),
                other => panic!("expected a job, got {other:?}"),
            }
            // Canonical form is a fixed point: re-canonicalizing the parsed
            // spec reproduces the same bytes.
            match Request::parse(&json).unwrap() {
                Request::Job(back) => assert_eq!(back.canonical_json(), json),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn defaults_are_filled_and_shared_with_explicit_form() {
        // A minimal wire request and its fully-explicit twin hash equal.
        let short = match Request::parse("{\"schema\":1,\"op\":\"chaos\"}").unwrap() {
            Request::Job(s) => s,
            _ => unreachable!(),
        };
        let long = match Request::parse(
            "{\"schema\":1,\"op\":\"chaos\",\"seed_start\":0,\"seed_count\":4,\"transfers\":64}",
        )
        .unwrap()
        {
            Request::Job(s) => s,
            _ => unreachable!(),
        };
        assert_eq!(short, long);
        assert_eq!(short.cache_key(), long.cache_key());
    }

    #[test]
    fn unknown_device_and_topology_are_invalid() {
        assert!(
            Request::parse("{\"schema\":1,\"op\":\"campaign\",\"device\":\"b200\"}")
                .unwrap_err()
                .contains("unknown device preset")
        );
        assert!(Request::parse(
            "{\"schema\":1,\"op\":\"fabric\",\"devices\":2,\"topology\":\"moebius\"}"
        )
        .unwrap_err()
        .contains("unknown fabric topology"));
    }

    #[test]
    fn replay_requires_well_formed_hex() {
        assert!(Request::parse("{\"schema\":1,\"op\":\"replay\"}")
            .unwrap_err()
            .contains("needs a hex"));
        assert!(
            Request::parse("{\"schema\":1,\"op\":\"replay\",\"trace\":\"xyz\"}")
                .unwrap_err()
                .contains("hex string")
        );
        assert!(
            Request::parse("{\"schema\":1,\"op\":\"replay\",\"trace\":\"abc\"}")
                .unwrap_err()
                .contains("even-length")
        );
        // Hex is normalized to lowercase so equivalent requests share a key.
        let a = Request::parse("{\"schema\":1,\"op\":\"replay\",\"trace\":\"DEADBEEF\"}").unwrap();
        let b = Request::parse("{\"schema\":1,\"op\":\"replay\",\"trace\":\"deadbeef\"}").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fnv_vector() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
