//! `gnoc-serve`: a crash-safe, admission-controlled campaign daemon with a
//! content-addressed result cache.
//!
//! The one-shot `gnoc` subcommands re-pay the full cost of every campaign,
//! soak, or chaos sweep on every invocation. This crate turns the same
//! deterministic engines into a long-running service:
//!
//! - [`protocol`] — the versioned JSON line protocol (requests in, response
//!   envelopes out) and the canonical-form/cache-key derivation.
//! - [`engine`] — the bounded queue, admission control, per-job panic
//!   containment, and the scheduler that multiplexes jobs onto a
//!   [`gnoc_core::WorkerPool`].
//! - [`journal`] — the fsynced append-only log that lets a killed daemon
//!   restart and resume exactly the jobs it owed.
//! - [`cache`] — the content-addressed result store with integrity
//!   verification on read.
//! - [`server`] — the Unix-socket and stdin front ends, SIGTERM draining.
//! - [`client`] — the thin `gnoc submit` side: one request, byte-exact
//!   payload extraction.
//!
//! The contract that everything here serves: **a given request produces
//! bit-identical payload bytes** whether it is computed cold, served from
//! cache, resumed after a mid-job `kill -9`, or run at a different
//! `--jobs` count.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod journal;
pub mod protocol;
pub mod run;
pub mod server;

pub use cache::{MissReason, ResultCache};
pub use client::{envelope_type, extract_payload, request_over_socket};
pub use engine::{
    Admission, Engine, EngineHandle, HealthSnapshot, JobOutcome, ServeConfig, ServeError,
};
pub use journal::{Journal, Replay};
pub use protocol::{JobSpec, Request, SCHEMA};
pub use server::{install_termination_flag, serve_stdin, SocketServer};
