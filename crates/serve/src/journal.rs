//! The append-only job journal that makes the daemon crash-safe.
//!
//! Every admitted job appends a `submitted` record *before* it is queued;
//! its terminal state appends a `done` or `failed` record. Records are
//! single JSON lines:
//!
//! ```json
//! {"v":1,"event":"submitted","job":3,"key":"<16 hex>","request":"{...}"}
//! {"v":1,"event":"done","job":3,"key":"<16 hex>"}
//! {"v":1,"event":"failed","job":3,"key":"<16 hex>","error":"..."}
//! ```
//!
//! The `request` field embeds the job's canonical JSON as an escaped
//! string, so replay reconstructs the exact spec (and therefore the exact
//! cache key) without any re-normalization.
//!
//! **Durability model.** Appends are flushed and fsynced line-by-line: a
//! kill -9 can lose at most the line being written, and a torn final line
//! is tolerated (ignored) on replay. Rewrites — the compaction that runs
//! after every replay to drop completed records — go through the shared
//! [`gnoc_core::atomic_write`] (temp sibling + fsync + rename), so the
//! journal itself can never be half-replaced. Replay + compaction on open
//! therefore always yields exactly the set of jobs that were admitted but
//! never finished; the engine re-queues those, and checkpointed campaigns
//! resume from their last completed row.

use crate::protocol::{json_str, JobSpec, Request};
use serde::Value;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Journal record format version.
pub const JOURNAL_VERSION: u64 = 1;

/// A job that was admitted but has no terminal record: it must be re-run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJob {
    /// The original job id (preserved across the restart).
    pub job: u64,
    /// The job's cache key.
    pub key: String,
    /// The re-parsed job spec.
    pub spec: JobSpec,
}

/// What replaying a journal found.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Jobs admitted but never finished, in admission order.
    pub unfinished: Vec<RecoveredJob>,
    /// The next job id to hand out (max seen + 1).
    pub next_job: u64,
    /// Records that could not be parsed (torn tail lines after a crash).
    pub torn_lines: usize,
}

/// The append-only journal file at `<state-dir>/journal.jsonl`.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Journal path inside a state directory.
    pub fn path_in(state_dir: &Path) -> PathBuf {
        state_dir.join("journal.jsonl")
    }

    /// Replays the journal at `path` (absent = empty), then compacts it to
    /// just the unfinished `submitted` records (atomic rewrite) and opens
    /// it for appending.
    ///
    /// # Errors
    ///
    /// I/O errors reading, rewriting, or opening the file. Unparseable
    /// trailing lines are tolerated (counted in [`Replay::torn_lines`]),
    /// never errors: a journal that a crash tore mid-line must still open.
    pub fn open(path: &Path) -> std::io::Result<(Self, Replay)> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let replay = Self::replay_text(&text);

        // Compact: rewrite only what is still live. This bounds journal
        // growth across restarts and exercises the atomic-write path the
        // crash-safety story depends on.
        let mut compacted = String::new();
        for job in &replay.unfinished {
            compacted.push_str(&submitted_line(
                job.job,
                &job.key,
                &job.spec.canonical_json(),
            ));
            compacted.push('\n');
        }
        gnoc_core::atomic_write(path, compacted.as_bytes())?;

        let file = OpenOptions::new().append(true).open(path)?;
        Ok((
            Self {
                path: path.to_path_buf(),
                file,
            },
            replay,
        ))
    }

    /// Parses journal text into a [`Replay`]. Lines that fail to parse are
    /// counted and skipped; only a crash can produce them (torn tail), and
    /// skipping is safe because a torn `submitted` line describes a job
    /// whose admission response never reached a client.
    fn replay_text(text: &str) -> Replay {
        let mut unfinished: Vec<RecoveredJob> = Vec::new();
        let mut next_job = 1u64;
        let mut torn_lines = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Some((event, job, key, request)) = parse_line(line) else {
                torn_lines += 1;
                continue;
            };
            next_job = next_job.max(job + 1);
            match event.as_str() {
                "submitted" => {
                    let Some(req) = request else {
                        torn_lines += 1;
                        continue;
                    };
                    match Request::parse(&req) {
                        Ok(Request::Job(spec)) => {
                            unfinished.push(RecoveredJob {
                                job,
                                key,
                                spec: *spec,
                            });
                        }
                        _ => torn_lines += 1,
                    }
                }
                "done" | "failed" => unfinished.retain(|j| j.job != job),
                _ => torn_lines += 1,
            }
        }
        Replay {
            unfinished,
            next_job,
            torn_lines,
        }
    }

    fn append(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.file.sync_all()
    }

    /// Records an admitted job. Called *before* the job is queued, so a
    /// crash can never run a job the journal does not know about — it can
    /// only journal a job that never ran, which replay then re-queues.
    pub fn record_submitted(
        &mut self,
        job: u64,
        key: &str,
        canonical: &str,
    ) -> std::io::Result<()> {
        self.append(&submitted_line(job, key, canonical))
    }

    /// Records successful completion (the result is in the cache by the
    /// time this is called, so replay never re-runs a cached job).
    pub fn record_done(&mut self, job: u64, key: &str) -> std::io::Result<()> {
        self.append(&format!(
            "{{\"v\":{JOURNAL_VERSION},\"event\":\"done\",\"job\":{job},\"key\":{}}}",
            json_str(key)
        ))
    }

    /// Records a failed job (including contained panics). Failed jobs are
    /// *not* re-queued on restart: a deterministic job that failed once
    /// would fail identically again.
    pub fn record_failed(&mut self, job: u64, key: &str, error: &str) -> std::io::Result<()> {
        self.append(&format!(
            "{{\"v\":{JOURNAL_VERSION},\"event\":\"failed\",\"job\":{job},\"key\":{},\"error\":{}}}",
            json_str(key),
            json_str(error)
        ))
    }

    /// The journal's path (tests inspect it).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn submitted_line(job: u64, key: &str, canonical: &str) -> String {
    format!(
        "{{\"v\":{JOURNAL_VERSION},\"event\":\"submitted\",\"job\":{job},\"key\":{},\"request\":{}}}",
        json_str(key),
        json_str(canonical)
    )
}

/// Extracts `(event, job, key, request?)` from one journal line, or `None`
/// if the line is torn/foreign.
fn parse_line(line: &str) -> Option<(String, u64, String, Option<String>)> {
    let value: Value = serde_json::from_str(line).ok()?;
    if value.field("v").ok().and_then(Value::as_u64) != Some(JOURNAL_VERSION) {
        return None;
    }
    let event = value.field("event").ok()?.as_str()?.to_string();
    let job = value.field("job").ok()?.as_u64()?;
    let key = value.field("key").ok()?.as_str()?.to_string();
    let request = value
        .field("request")
        .ok()
        .and_then(Value::as_str)
        .map(str::to_string);
    Some((event, job, key, request))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::Chaos {
            seed_start: 0,
            seed_count: 2,
            transfers: 16,
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gnoc-serve-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn submitted_without_done_is_recovered() {
        let path = scratch("recover");
        let s = spec();
        {
            let (mut j, replay) = Journal::open(&path).unwrap();
            assert_eq!(replay.next_job, 1);
            assert!(replay.unfinished.is_empty());
            j.record_submitted(1, &s.cache_key(), &s.canonical_json())
                .unwrap();
            j.record_submitted(2, "beef", "{\"schema\":1,\"op\":\"mesh\"}")
                .unwrap();
            j.record_done(2, "beef").unwrap();
        } // simulated kill: drop without finishing job 1
        let (_j, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.next_job, 3);
        assert_eq!(replay.unfinished.len(), 1);
        assert_eq!(replay.unfinished[0].job, 1);
        assert_eq!(replay.unfinished[0].spec, s);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_line_is_tolerated() {
        let path = scratch("torn");
        let s = spec();
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.record_submitted(1, &s.cache_key(), &s.canonical_json())
                .unwrap();
        }
        // Simulate a crash mid-append: a partial second line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"v\":1,\"event\":\"subm");
        std::fs::write(&path, text).unwrap();
        let (_j, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.torn_lines, 1);
        assert_eq!(replay.unfinished.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_drops_finished_records() {
        let path = scratch("compact");
        let s = spec();
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            for id in 1..=20u64 {
                j.record_submitted(id, &s.cache_key(), &s.canonical_json())
                    .unwrap();
                j.record_done(id, &s.cache_key()).unwrap();
            }
            j.record_submitted(21, &s.cache_key(), &s.canonical_json())
                .unwrap();
        }
        let (j, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.unfinished.len(), 1);
        // The compacted journal holds exactly the one live record.
        let lines = std::fs::read_to_string(j.path()).unwrap();
        assert_eq!(lines.lines().count(), 1);
        // Ids keep monotonically increasing across the restart.
        assert_eq!(replay.next_job, 22);
        std::fs::remove_file(&path).unwrap();
    }
}
