//! The line-protocol front ends: a Unix-socket listener and a stdin/stdout
//! mode, both speaking one JSON request per line and one or more JSON
//! envelopes per response (see `USAGE` in the CLI for the protocol).
//!
//! **Graceful degradation.** SIGTERM (socket mode) or EOF (stdin mode)
//! begins a drain: new work is rejected with an explicit reason, queued and
//! running jobs finish and are journaled/cached, then the daemon exits. A
//! SIGKILL instead is the crash path: the journal replay at next start
//! re-queues whatever was in flight.

use crate::engine::{Admission, Engine, EngineHandle, HealthSnapshot, ServeError};
use crate::protocol::{
    envelope_accepted, envelope_bye, envelope_done, envelope_failed, envelope_health,
    envelope_rejected, Request,
};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set by the SIGTERM handler; polled by the accept loop.
static TERMINATE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigterm(_sig: i32) {
    TERMINATE.store(true, Ordering::SeqCst);
}

/// Installs a SIGTERM handler that flips a flag the serve loop polls, and
/// returns that flag. No `libc` dependency: `signal(2)` is declared
/// directly, which is sound here because the handler only touches an
/// `AtomicBool` (async-signal-safe).
#[cfg(unix)]
pub fn install_termination_flag() -> &'static AtomicBool {
    // SIGTERM is 15 on every platform this builds for (Linux/macOS).
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
    &TERMINATE
}

/// Non-unix stub: returns a flag nothing ever sets.
#[cfg(not(unix))]
pub fn install_termination_flag() -> &'static AtomicBool {
    &TERMINATE
}

/// Renders a health snapshot as the `health` envelope's payload object.
fn health_json(h: &HealthSnapshot) -> String {
    format!(
        "{{\"queue_depth\":{},\"queue_cap\":{},\"running\":{},\"jobs_done\":{},\"jobs_failed\":{},\"jobs_rejected\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{:.4},\"overload\":\"{}\",\"draining\":{}}}",
        h.queue_depth,
        h.queue_cap,
        h.running,
        h.jobs_done,
        h.jobs_failed,
        h.jobs_rejected,
        h.cache_hits,
        h.cache_misses,
        h.cache_hit_rate(),
        h.overload,
        h.draining
    )
}

/// Handles one request line, writing envelopes to `out`. Returns `false`
/// when the connection should close (shutdown acknowledged).
fn dispatch(
    engine: &EngineHandle,
    session: u64,
    line: &str,
    out: &mut impl Write,
) -> std::io::Result<bool> {
    if line.trim().is_empty() {
        return Ok(true);
    }
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(msg) => {
            writeln!(out, "{}", envelope_rejected(&format!("invalid: {msg}")))?;
            out.flush()?;
            return Ok(true);
        }
    };
    match request {
        Request::Health => {
            writeln!(out, "{}", envelope_health(&health_json(&engine.health())))?;
            out.flush()?;
        }
        Request::Shutdown => {
            engine.begin_drain();
            writeln!(out, "{}", envelope_bye(engine.in_flight()))?;
            out.flush()?;
            return Ok(false);
        }
        Request::Job(spec) => match engine.admit(session, &spec) {
            Admission::Cached { payload } => {
                writeln!(out, "{}", envelope_done(0, true, 0, &payload))?;
                out.flush()?;
            }
            Admission::Rejected { reason } => {
                writeln!(out, "{}", envelope_rejected(&reason))?;
                out.flush()?;
            }
            Admission::Enqueued { job, rx } | Admission::Attached { job, rx } => {
                writeln!(out, "{}", envelope_accepted(job))?;
                out.flush()?;
                // Block this connection thread until the job finishes; the
                // scheduler keeps serving other connections meanwhile.
                match rx.recv() {
                    Ok(outcome) => {
                        let line = match &outcome.result {
                            Ok(payload) => {
                                envelope_done(outcome.job, false, outcome.resumed_rows, payload)
                            }
                            Err(error) => envelope_failed(outcome.job, error),
                        };
                        writeln!(out, "{line}")?;
                        out.flush()?;
                    }
                    Err(_) => {
                        // Scheduler went away (hard shutdown) — tell the
                        // client rather than hanging up silently.
                        writeln!(out, "{}", envelope_failed(job, "daemon shut down"))?;
                        out.flush()?;
                    }
                }
            }
        },
    }
    Ok(true)
}

/// The Unix-socket server.
pub struct SocketServer {
    listener: UnixListener,
    path: PathBuf,
}

impl SocketServer {
    /// Binds `path`, first clearing a *stale* socket file (one no daemon is
    /// listening on). A live socket is a configuration error — two daemons
    /// must not share a state directory.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when another daemon is listening;
    /// [`ServeError::Io`] on bind failures.
    pub fn bind(path: &Path) -> Result<Self, ServeError> {
        if path.exists() {
            if UnixStream::connect(path).is_ok() {
                return Err(ServeError::Config(format!(
                    "socket {} is already in use by a running daemon",
                    path.display()
                )));
            }
            // Stale leftover from a crash/kill: safe to reclaim.
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            path: path.to_path_buf(),
        })
    }

    /// Serves until drained: accepts connections, spawns one thread per
    /// connection, and begins a drain when `term` flips (SIGTERM) or a
    /// client sends `shutdown`. Returns when the drain completes.
    ///
    /// # Errors
    ///
    /// Accept-loop I/O errors (per-connection errors only end that
    /// connection).
    pub fn run(self, engine: &Engine, term: &AtomicBool) -> Result<(), ServeError> {
        let handle = engine.handle();
        let session_ids = Arc::new(AtomicU64::new(1));
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if term.load(Ordering::SeqCst) {
                handle.begin_drain();
            }
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    let conn_handle = handle.clone();
                    let session = session_ids.fetch_add(1, Ordering::Relaxed);
                    workers.push(std::thread::spawn(move || {
                        serve_connection(&conn_handle, session, stream);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if handle.is_draining() && handle.is_idle() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(ServeError::Io(e)),
            }
            workers.retain(|w| !w.is_finished());
        }
        // Give connection threads a bounded window to write their final
        // envelopes; a wedged client must not hold the daemon open forever.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        for w in workers {
            if std::time::Instant::now() < deadline {
                let _ = w.join();
            }
        }
        let _ = std::fs::remove_file(&self.path);
        Ok(())
    }
}

fn serve_connection(engine: &EngineHandle, session: u64, stream: UnixStream) {
    // The accept loop is nonblocking; each connection is blocking again.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(stream);
    let mut writer = std::io::BufWriter::new(writer);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        match dispatch(engine, session, &line, &mut writer) {
            Ok(true) => {}
            _ => break,
        }
    }
}

/// Serves the line protocol on stdin/stdout until EOF or `shutdown`, then
/// drains. Used where a socket is awkward (CI pipes, tests); SIGTERM is not
/// handled here because glibc's `signal` restarts the blocking stdin read —
/// closing stdin *is* the graceful-shutdown signal in this mode.
///
/// # Errors
///
/// Stdout write failures.
pub fn serve_stdin(engine: &Engine) -> Result<(), ServeError> {
    let handle = engine.handle();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(ServeError::Io)?;
        if !dispatch(&handle, 0, &line, &mut out)? {
            break;
        }
    }
    handle.begin_drain();
    while !handle.is_idle() {
        std::thread::sleep(Duration::from_millis(10));
    }
    Ok(())
}
