//! The admission-controlled job engine behind the daemon.
//!
//! One scheduler thread owns a [`gnoc_core::WorkerPool`] and drains a
//! bounded queue; connection threads call [`EngineHandle::admit`] and block
//! on a per-job channel. Everything that makes the daemon *robust* lives
//! here:
//!
//! - **Admission control** — the queue is bounded ([`ServeConfig::queue_cap`]),
//!   each session is bounded ([`ServeConfig::session_cap`]), and optional
//!   work budgets reject oversized jobs up front with an explicit
//!   [`Admission::Rejected`] reason instead of letting them starve the queue.
//! - **Crash safety** — every admitted job hits the [`Journal`] *before* it
//!   is queued; on restart [`Engine::open`] replays the journal and re-queues
//!   unfinished jobs (campaigns resume from their checkpoints).
//! - **Panic containment** — each job body runs under its own
//!   `catch_unwind`, so a panicking job becomes a `Failed` response while
//!   the pool, queue, and daemon keep running.
//! - **Dedup** — a request whose cache key matches a pending/running job
//!   attaches to it instead of queuing a duplicate.

use crate::cache::{MissReason, ResultCache};
use crate::journal::Journal;
use crate::protocol::JobSpec;
use crate::run;
use gnoc_core::telemetry::TelemetryHandle;
use gnoc_core::WorkerPool;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

/// Daemon configuration. Budgets set to `0` are unlimited.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory holding the journal, cache, and campaign checkpoints.
    pub state_dir: PathBuf,
    /// Maximum queued (not yet running) jobs before new work is rejected.
    pub queue_cap: usize,
    /// Maximum in-flight (queued + running) jobs a single session may own.
    pub session_cap: usize,
    /// Maximum campaign rows a single job may measure (full campaigns count
    /// their device's SM count; `deadline_rows` caps it).
    pub max_rows: usize,
    /// Maximum seeds a single chaos job may sweep.
    pub max_seeds: u64,
    /// Maximum transfers a single mesh/fabric soak may submit.
    pub max_transfers: usize,
    /// Per-row sleep for campaign jobs, in milliseconds. A testing aid: it
    /// widens the window in which a kill lands mid-job so the crash-recovery
    /// suite is not racing the (fast) simulator.
    pub row_delay_ms: u64,
    /// Worker threads in the execution pool (0 = resolve from environment).
    pub jobs: usize,
}

impl ServeConfig {
    /// Defaults: queue of 16, 8 jobs per session, no work budgets.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        Self {
            state_dir: state_dir.into(),
            queue_cap: 16,
            session_cap: 8,
            max_rows: 0,
            max_seeds: 0,
            max_transfers: 0,
            row_delay_ms: 0,
            jobs: 1,
        }
    }
}

/// Errors opening or operating the engine.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid configuration (bad socket path, zero queue, ...).
    Config(String),
    /// An I/O failure on the state directory, journal, or socket.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "config: {msg}"),
            Self::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Terminal state of one job, delivered to every attached waiter.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job id.
    pub job: u64,
    /// Checkpoint rows that were already complete when the job started
    /// (non-zero only for resumed campaigns).
    pub resumed_rows: usize,
    /// Canonical payload on success, human-readable error on failure.
    pub result: Result<String, String>,
}

/// What [`EngineHandle::admit`] decided.
#[derive(Debug)]
pub enum Admission {
    /// Served from the result cache; no job was created.
    Cached {
        /// The exact payload bytes originally computed for this key.
        payload: String,
    },
    /// Queued as a new job; await the outcome on `rx`.
    Enqueued {
        /// Assigned job id.
        job: u64,
        /// Outcome channel (exactly one message).
        rx: mpsc::Receiver<JobOutcome>,
    },
    /// Attached to an existing pending/running job with the same cache key.
    Attached {
        /// The existing job's id.
        job: u64,
        /// Outcome channel (exactly one message).
        rx: mpsc::Receiver<JobOutcome>,
    },
    /// Refused; the daemon state is unchanged.
    Rejected {
        /// Human-readable refusal, stable enough to grep in tests.
        reason: String,
    },
}

/// One queued or running job plus everyone waiting on it.
struct QueuedJob {
    id: u64,
    key: String,
    spec: JobSpec,
    /// True when the job was recovered from the journal on restart.
    resumed: bool,
    waiters: Vec<(u64, mpsc::Sender<JobOutcome>)>,
}

#[derive(Default)]
struct QueueState {
    pending: VecDeque<QueuedJob>,
    running: Vec<QueuedJob>,
    next_job: u64,
    /// In-flight job count per session id.
    sessions: BTreeMap<u64, usize>,
}

/// A point-in-time health snapshot (the `health` request's payload).
#[derive(Debug, Clone)]
pub struct HealthSnapshot {
    /// Jobs queued but not yet running.
    pub queue_depth: usize,
    /// The queue bound.
    pub queue_cap: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Completed jobs since start.
    pub jobs_done: u64,
    /// Failed jobs (including contained panics) since start.
    pub jobs_failed: u64,
    /// Rejected admissions since start.
    pub jobs_rejected: u64,
    /// Cache hits since start.
    pub cache_hits: u64,
    /// Cache misses (including evictions) since start.
    pub cache_misses: u64,
    /// Breaker-style overload state: `closed` (healthy), `half-open`
    /// (queue ≥ 50% full), `open` (queue full or draining).
    pub overload: &'static str,
    /// Whether the daemon is draining (rejecting new work).
    pub draining: bool,
}

impl HealthSnapshot {
    /// Hit rate over all cache lookups so far (0 when none).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    telemetry: TelemetryHandle,
    cache: ResultCache,
    journal: Mutex<Journal>,
    // Lock order: `q` before `journal`; never the reverse.
    q: Mutex<QueueState>,
    wake: Condvar,
    draining: AtomicBool,
    shutdown: AtomicBool,
    done: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The daemon engine: owns the scheduler thread; dropped = hard stop.
pub struct Engine {
    shared: Arc<Shared>,
    scheduler: Option<std::thread::JoinHandle<()>>,
    /// Jobs recovered from the journal at open.
    recovered: usize,
}

/// A cloneable handle connection threads use to talk to the engine.
#[derive(Clone)]
pub struct EngineHandle {
    shared: Arc<Shared>,
}

impl Engine {
    /// Opens the state directory, replays the journal, re-queues unfinished
    /// jobs, and starts the scheduler.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on state-directory failures.
    pub fn open(cfg: ServeConfig, telemetry: TelemetryHandle) -> Result<Self, ServeError> {
        let mut engine = Self::open_idle(cfg, telemetry)?;
        engine.kick();
        Ok(engine)
    }

    /// [`open`](Self::open) without starting the scheduler. Jobs accumulate
    /// in the queue until [`kick`](Self::kick); tests use this to observe
    /// admission decisions deterministically (nothing drains underneath
    /// them).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on state-directory failures.
    pub fn open_idle(cfg: ServeConfig, telemetry: TelemetryHandle) -> Result<Self, ServeError> {
        if cfg.queue_cap == 0 {
            return Err(ServeError::Config("queue_cap must be at least 1".into()));
        }
        std::fs::create_dir_all(&cfg.state_dir)?;
        std::fs::create_dir_all(cfg.state_dir.join("ckpt"))?;
        let cache = ResultCache::open(&cfg.state_dir)?;
        let (journal, replay) = Journal::open(&Journal::path_in(&cfg.state_dir))?;

        let mut q = QueueState {
            next_job: replay.next_job,
            ..QueueState::default()
        };
        let recovered = replay.unfinished.len();
        for job in replay.unfinished {
            // Recovered jobs bypass admission: they were already admitted
            // once, and dropping them would break the crash-safety promise.
            q.pending.push_back(QueuedJob {
                id: job.job,
                key: job.key,
                spec: job.spec,
                resumed: true,
                waiters: Vec::new(),
            });
        }

        let shared = Arc::new(Shared {
            cfg,
            telemetry,
            cache,
            journal: Mutex::new(journal),
            q: Mutex::new(q),
            wake: Condvar::new(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            done: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        });
        Ok(Self {
            shared,
            scheduler: None,
            recovered,
        })
    }

    /// Starts the scheduler thread if it is not already running.
    pub fn kick(&mut self) {
        if self.scheduler.is_some() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        self.scheduler = Some(
            std::thread::Builder::new()
                .name("gnoc-serve-sched".into())
                .spawn(move || scheduler_loop(&shared))
                .expect("spawn scheduler thread"),
        );
    }

    /// Number of journal jobs re-queued at open.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// A cloneable handle for connection threads.
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops accepting work; queued and running jobs still finish.
    pub fn begin_drain(&self) {
        self.handle().begin_drain();
    }

    /// True when nothing is queued or running.
    pub fn is_idle(&self) -> bool {
        self.handle().is_idle()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Hard stop: pending jobs are lost from memory but not from the
        // journal — the next open re-queues them. Running jobs finish
        // (the pool joins inside the scheduler before it exits).
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }
}

impl EngineHandle {
    /// Admits one job for `session`. See [`Admission`] for the outcomes.
    pub fn admit(&self, session: u64, spec: &JobSpec) -> Admission {
        let s = &*self.shared;
        if s.draining.load(Ordering::SeqCst) {
            return self.reject("daemon is draining; not accepting new work".into());
        }
        if let Some(reason) = budget_violation(&s.cfg, spec) {
            return self.reject(reason);
        }

        let key = spec.cache_key();
        match s.cache.get(&key) {
            Ok(payload) => {
                s.hits.fetch_add(1, Ordering::Relaxed);
                return Admission::Cached { payload };
            }
            Err(MissReason::Evicted(why)) => {
                // Integrity failure: recompute, never serve. Counted as a
                // miss; the recomputed result will repopulate the entry.
                s.telemetry.emit_with(|| {
                    gnoc_core::telemetry::TraceEvent::new(0, "serve", "cache_evicted")
                        .with("key", key.as_str())
                        .with("why", why.as_str())
                });
                s.misses.fetch_add(1, Ordering::Relaxed);
            }
            Err(MissReason::Absent) => {
                s.misses.fetch_add(1, Ordering::Relaxed);
            }
        }

        let mut q = s.q.lock().expect("queue lock");
        let in_flight = q.sessions.get(&session).copied().unwrap_or(0);
        if in_flight >= s.cfg.session_cap {
            drop(q);
            return self.reject(format!(
                "session already has {in_flight} job(s) in flight (cap {})",
                s.cfg.session_cap
            ));
        }

        // Same key already pending or running? Attach instead of duplicating
        // the work — both waiters get the identical payload.
        let (tx, rx) = mpsc::channel();
        let q_ref = &mut *q;
        let existing = q_ref
            .pending
            .iter_mut()
            .chain(q_ref.running.iter_mut())
            .find(|job| job.key == key);
        if let Some(job) = existing {
            job.waiters.push((session, tx));
            let id = job.id;
            *q.sessions.entry(session).or_insert(0) += 1;
            drop(q);
            return Admission::Attached { job: id, rx };
        }

        if q.pending.len() >= s.cfg.queue_cap {
            drop(q);
            return self.reject(format!(
                "queue full ({} pending, cap {})",
                s.cfg.queue_cap, s.cfg.queue_cap
            ));
        }

        let id = q.next_job;
        q.next_job += 1;
        // Journal *before* queueing (see journal.rs for why this order).
        {
            let mut journal = s.journal.lock().expect("journal lock");
            if let Err(e) = journal.record_submitted(id, &key, &spec.canonical_json()) {
                drop(journal);
                drop(q);
                return self.reject(format!("journal write failed: {e}"));
            }
        }
        q.pending.push_back(QueuedJob {
            id,
            key,
            spec: spec.clone(),
            resumed: false,
            waiters: vec![(session, tx)],
        });
        *q.sessions.entry(session).or_insert(0) += 1;
        drop(q);
        s.wake.notify_all();
        Admission::Enqueued { job: id, rx }
    }

    fn reject(&self, reason: String) -> Admission {
        self.shared.rejected.fetch_add(1, Ordering::Relaxed);
        Admission::Rejected { reason }
    }

    /// Stops admitting new jobs; in-flight work continues to completion.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
    }

    /// Whether the engine is draining.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// True when nothing is queued or running.
    pub fn is_idle(&self) -> bool {
        let q = self.shared.q.lock().expect("queue lock");
        q.pending.is_empty() && q.running.is_empty()
    }

    /// Queued + running jobs (the `pending` count `shutdown` reports).
    pub fn in_flight(&self) -> usize {
        let q = self.shared.q.lock().expect("queue lock");
        q.pending.len() + q.running.len()
    }

    /// A point-in-time health snapshot.
    pub fn health(&self) -> HealthSnapshot {
        let s = &*self.shared;
        let (depth, running) = {
            let q = s.q.lock().expect("queue lock");
            (q.pending.len(), q.running.len())
        };
        let draining = s.draining.load(Ordering::SeqCst);
        let overload = if draining || depth >= s.cfg.queue_cap {
            "open"
        } else if depth * 2 >= s.cfg.queue_cap {
            "half-open"
        } else {
            "closed"
        };
        HealthSnapshot {
            queue_depth: depth,
            queue_cap: s.cfg.queue_cap,
            running,
            jobs_done: s.done.load(Ordering::Relaxed),
            jobs_failed: s.failed.load(Ordering::Relaxed),
            jobs_rejected: s.rejected.load(Ordering::Relaxed),
            cache_hits: s.hits.load(Ordering::Relaxed),
            cache_misses: s.misses.load(Ordering::Relaxed),
            overload,
            draining,
        }
    }
}

/// Returns the refusal reason when `spec` exceeds a configured work budget.
fn budget_violation(cfg: &ServeConfig, spec: &JobSpec) -> Option<String> {
    match spec {
        JobSpec::Campaign {
            device,
            deadline_rows,
            ..
        } => {
            if cfg.max_rows == 0 {
                return None;
            }
            let full = gnoc_core::spec_for_preset(device)
                .map(|s| s.num_sms())
                .unwrap_or(usize::MAX);
            let rows = deadline_rows.map_or(full, |d| d.min(full));
            (rows > cfg.max_rows).then(|| {
                format!(
                    "campaign would measure {rows} rows, budget is {} \
                     (pass deadline_rows to salvage a partial matrix)",
                    cfg.max_rows
                )
            })
        }
        JobSpec::Chaos { seed_count, .. } => (cfg.max_seeds > 0 && *seed_count > cfg.max_seeds)
            .then(|| {
                format!(
                    "chaos sweep of {seed_count} seeds exceeds budget {}",
                    cfg.max_seeds
                )
            }),
        JobSpec::Mesh { transfers, .. } | JobSpec::Fabric { transfers, .. } => {
            (cfg.max_transfers > 0 && *transfers > cfg.max_transfers).then(|| {
                format!(
                    "soak of {transfers} transfers exceeds budget {}",
                    cfg.max_transfers
                )
            })
        }
        // A replay re-drives a stream someone already paid to record; the
        // trace header pins its size, so the transfer budget applies to the
        // recorded event count.
        JobSpec::Replay { trace_hex, .. } => {
            let events = gnoc_core::trace::from_hex(trace_hex)
                .ok()
                .and_then(|bytes| {
                    let mut r = gnoc_core::trace::TraceReader::from_bytes(bytes).ok()?;
                    gnoc_core::trace::validate_stream(&mut r)
                        .ok()
                        .map(|s| s.events)
                })
                .unwrap_or(0) as usize;
            (cfg.max_transfers > 0 && events > cfg.max_transfers).then(|| {
                format!(
                    "replay of {events} recorded events exceeds budget {}",
                    cfg.max_transfers
                )
            })
        }
    }
}

/// The scheduler: pops batches off the queue and fans them across the pool.
fn scheduler_loop(s: &Shared) {
    let pool = WorkerPool::new(s.cfg.jobs.max(1));
    loop {
        // Claim a batch (moving it to `running`) or wait for work.
        let batch: Vec<QueuedJob> = {
            let mut q = s.q.lock().expect("queue lock");
            loop {
                if s.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if !q.pending.is_empty() {
                    break;
                }
                q = s.wake.wait(q).expect("queue lock");
            }
            let n = q.pending.len().min(pool.jobs().max(1));
            let batch: Vec<QueuedJob> = q.pending.drain(..n).collect();
            q.running.extend(batch.iter().map(|j| QueuedJob {
                id: j.id,
                key: j.key.clone(),
                spec: j.spec.clone(),
                resumed: j.resumed,
                waiters: Vec::new(),
            }));
            batch
        };

        // Execute the batch. Each job body is individually wrapped in
        // catch_unwind so one panicking simulation is one Failed response,
        // not a dead worker or daemon.
        let ckpt_dir = s.cfg.state_dir.join("ckpt");
        let row_delay = s.cfg.row_delay_ms;
        let outcomes: Vec<run::ExecOutcome> = pool.par_map(&batch, |job| {
            match catch_unwind(AssertUnwindSafe(|| {
                run::execute(
                    &job.spec,
                    &ckpt_dir.join(format!("{}.json", job.key)),
                    row_delay,
                )
            })) {
                Ok(outcome) => outcome,
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(ToString::to_string)
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".into());
                    run::ExecOutcome {
                        resumed_rows: 0,
                        result: Err(format!("job panicked: {msg}")),
                    }
                }
            }
        });

        for (job, outcome) in batch.into_iter().zip(outcomes) {
            finish_job(s, job, outcome);
        }
    }
}

/// Records one finished job: cache + journal first, then waiters.
fn finish_job(s: &Shared, job: QueuedJob, outcome: run::ExecOutcome) {
    // Persist before notifying: once a client sees `done`, a restart must
    // serve the identical payload from cache rather than re-run the job.
    match &outcome.result {
        Ok(payload) => {
            if let Err(e) = s.cache.put(&job.key, payload) {
                // Best effort: the response is still correct, the next
                // identical request just recomputes.
                s.telemetry.emit_with(|| {
                    gnoc_core::telemetry::TraceEvent::new(0, "serve", "cache_put_failed")
                        .with("key", job.key.as_str())
                        .with("error", e.to_string())
                });
            }
            let mut journal = s.journal.lock().expect("journal lock");
            let _ = journal.record_done(job.id, &job.key);
            s.done.fetch_add(1, Ordering::Relaxed);
        }
        Err(error) => {
            let mut journal = s.journal.lock().expect("journal lock");
            let _ = journal.record_failed(job.id, &job.key, error);
            s.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    // Collect waiters that attached while the job ran, then notify all.
    let mut waiters = job.waiters;
    {
        let mut q = s.q.lock().expect("queue lock");
        if let Some(pos) = q.running.iter().position(|j| j.id == job.id) {
            let shadow = q.running.swap_remove(pos);
            waiters.extend(shadow.waiters);
        }
        for (session, _) in &waiters {
            if let Some(n) = q.sessions.get_mut(session) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    q.sessions.remove(session);
                }
            }
        }
    }
    for (_, tx) in waiters {
        // A waiter whose connection died is fine to skip.
        let _ = tx.send(JobOutcome {
            job: job.id,
            resumed_rows: outcome.resumed_rows,
            result: outcome.result.clone(),
        });
    }
    s.wake.notify_all();
}
