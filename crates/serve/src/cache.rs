//! The content-addressed result cache.
//!
//! One file per job, named by the job's cache key (`<key>.json` under
//! `<state-dir>/cache/`), written atomically via [`gnoc_core::atomic_write`].
//! Each entry wraps the canonical payload *as a JSON string* together with
//! its own FNV-1a hash:
//!
//! ```json
//! {"schema":1,"key":"<16 hex>","payload_fnv":"<16 hex>","payload":"{...}"}
//! ```
//!
//! Storing the payload as an escaped string (not a nested object) means the
//! exact payload bytes survive the round trip — no re-serialization step
//! that could reorder fields or reformat numbers — so a cache hit is
//! byte-identical to the cold result by construction.
//!
//! **Integrity on read**: a hit is served only if the file parses, its
//! embedded key matches the requested key, and the payload's recomputed
//! hash matches `payload_fnv`. Anything else (truncation, bit rot, a stale
//! rename from a different format) evicts the entry and reports a miss, so
//! a corrupt result is recomputed, never served.

use crate::protocol::{fnv1a64, json_str, SCHEMA};
use serde::Value;
use std::path::{Path, PathBuf};

/// On-disk result cache rooted at `<state-dir>/cache`.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

/// Why a lookup missed (hits carry the payload instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MissReason {
    /// No entry for this key.
    Absent,
    /// An entry existed but failed integrity verification and was evicted.
    Evicted(String),
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn open(state_dir: &Path) -> std::io::Result<Self> {
        let dir = state_dir.join("cache");
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Looks up `key`, verifying integrity. Returns the exact payload bytes
    /// on a hit; on any verification failure the entry is evicted (deleted)
    /// and the failure reason reported so the caller can recompute.
    pub fn get(&self, key: &str) -> Result<String, MissReason> {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return Err(MissReason::Absent),
        };
        match Self::verify(key, &text) {
            Ok(payload) => Ok(payload),
            Err(why) => {
                let _ = std::fs::remove_file(&path);
                Err(MissReason::Evicted(why))
            }
        }
    }

    fn verify(key: &str, text: &str) -> Result<String, String> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| format!("entry is not JSON: {e:?}"))?;
        match value.field("schema").ok().and_then(Value::as_u64) {
            Some(SCHEMA) => {}
            other => return Err(format!("entry schema is {other:?}, expected {SCHEMA}")),
        }
        let stored_key = value
            .field("key")
            .ok()
            .and_then(Value::as_str)
            .ok_or_else(|| "entry has no key".to_string())?;
        if stored_key != key {
            return Err(format!("entry key {stored_key} does not match file {key}"));
        }
        let payload = value
            .field("payload")
            .ok()
            .and_then(Value::as_str)
            .ok_or_else(|| "entry has no payload".to_string())?
            .to_string();
        let stored_fnv = value
            .field("payload_fnv")
            .ok()
            .and_then(Value::as_str)
            .ok_or_else(|| "entry has no payload_fnv".to_string())?;
        let actual = format!("{:016x}", fnv1a64(payload.as_bytes()));
        if stored_fnv != actual {
            return Err(format!(
                "payload hash mismatch: stored {stored_fnv}, actual {actual}"
            ));
        }
        Ok(payload)
    }

    /// Stores `payload` (canonical single-line JSON) under `key`, atomically
    /// and durably.
    ///
    /// # Errors
    ///
    /// I/O errors from the atomic write.
    pub fn put(&self, key: &str, payload: &str) -> std::io::Result<()> {
        let entry = format!(
            "{{\"schema\":{SCHEMA},\"key\":{},\"payload_fnv\":\"{:016x}\",\"payload\":{}}}\n",
            json_str(key),
            fnv1a64(payload.as_bytes()),
            json_str(payload)
        );
        gnoc_core::atomic_write(&self.entry_path(key), entry.as_bytes())
    }

    /// Number of entries currently on disk (for health snapshots).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| rd.filter_map(|e| e.ok()).count())
            .unwrap_or(0)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The path an entry for `key` would live at (tests corrupt it).
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.entry_path(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gnoc-serve-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn round_trip_is_byte_exact() {
        let cache = ResultCache::open(&scratch("rt")).unwrap();
        let payload = "{\"kind\":\"mesh\",\"mean_latency\":12.500000}";
        cache.put("00ff", payload).unwrap();
        assert_eq!(cache.get("00ff").unwrap(), payload);
    }

    #[test]
    fn corrupt_entry_is_evicted_not_served() {
        let cache = ResultCache::open(&scratch("corrupt")).unwrap();
        cache.put("aa11", "{\"kind\":\"mesh\"}").unwrap();
        // Flip bytes inside the stored payload: hash check must catch it.
        let path = cache.path_for("aa11");
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("mesh", "mush");
        std::fs::write(&path, tampered).unwrap();
        match cache.get("aa11") {
            Err(MissReason::Evicted(why)) => assert!(why.contains("hash mismatch"), "{why}"),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(!path.exists(), "corrupt entry must be deleted");
        assert_eq!(cache.get("aa11"), Err(MissReason::Absent));
    }

    #[test]
    fn truncated_entry_is_evicted() {
        let cache = ResultCache::open(&scratch("trunc")).unwrap();
        cache
            .put("bb22", "{\"kind\":\"chaos\",\"clean\":true}")
            .unwrap();
        let path = cache.path_for("bb22");
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(cache.get("bb22"), Err(MissReason::Evicted(_))));
        assert!(!path.exists());
    }

    #[test]
    fn key_mismatch_is_evicted() {
        let cache = ResultCache::open(&scratch("keymix")).unwrap();
        cache.put("cc33", "{\"kind\":\"mesh\"}").unwrap();
        // Simulate an entry renamed onto the wrong key.
        std::fs::copy(cache.path_for("cc33"), cache.path_for("dd44")).unwrap();
        assert!(matches!(cache.get("dd44"), Err(MissReason::Evicted(_))));
        assert_eq!(cache.get("cc33").unwrap(), "{\"kind\":\"mesh\"}");
    }
}
