//! The pure job runners: each result payload is a function of the job spec
//! alone (plus, for campaigns, a checkpoint file that only ever holds a
//! prefix of the same deterministic computation).
//!
//! Payloads are canonical single-line JSON built with fixed `format!`
//! strings — field order and float formatting never depend on library
//! versions or parse/re-serialize round trips — so byte-identity holds
//! across `--jobs` counts, cache round trips, and crash resumes. Every
//! payload carries a `summary` field whose text matches the corresponding
//! one-shot CLI output line exactly, which is what lets ci.sh pin "daemon
//! result == one-shot result" with a plain `cmp`.

use crate::protocol::{json_str, JobSpec};
use gnoc_chaos::{run_chaos, ChaosConfig, ChaosOptions};
use gnoc_core::noc::{NodeId, PacketClass};
use gnoc_core::telemetry::TelemetryHandle;
use gnoc_core::{
    ArbiterKind, CheckpointedCampaign, FabricConfig, FabricSim, FabricTopology, FaultPlan,
    LatencyProbe, MeshConfig, ReliableMesh, RetryConfig,
};
use std::path::Path;

/// What executing a job produced.
#[derive(Debug)]
pub struct ExecOutcome {
    /// Rows already present in the checkpoint when the job (re)started —
    /// > 0 exactly when a recovered campaign actually resumed.
    pub resumed_rows: usize,
    /// The canonical payload, or a human-readable failure.
    pub result: Result<String, String>,
}

fn ok(resumed_rows: usize, payload: String) -> ExecOutcome {
    ExecOutcome {
        resumed_rows,
        result: Ok(payload),
    }
}

fn fail(msg: String) -> ExecOutcome {
    ExecOutcome {
        resumed_rows: 0,
        result: Err(msg),
    }
}

/// Deterministic splitmix64 stream, shared by the mesh and fabric soaks
/// (the same generator the one-shot CLI uses, so seeds mean the same thing
/// through the daemon).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Executes `spec`. `ckpt` is the per-key checkpoint path campaigns persist
/// to; `row_delay_ms` is the testing-only per-row sleep (see
/// [`crate::ServeConfig::row_delay_ms`]).
pub fn execute(spec: &JobSpec, ckpt: &Path, row_delay_ms: u64) -> ExecOutcome {
    match spec {
        JobSpec::Campaign {
            device,
            seed,
            lines,
            samples,
            deadline_rows,
            plan,
        } => run_campaign(
            device,
            *seed,
            *lines,
            *samples,
            *deadline_rows,
            plan.clone(),
            ckpt,
            row_delay_ms,
        ),
        JobSpec::Mesh {
            seed,
            transfers,
            plan,
        } => run_mesh(*seed, *transfers, plan.as_ref()),
        JobSpec::Chaos {
            seed_start,
            seed_count,
            transfers,
        } => run_chaos_job(*seed_start, *seed_count, *transfers),
        JobSpec::Fabric {
            devices,
            topology,
            seed,
            transfers,
        } => run_fabric_job(*devices, topology, *seed, *transfers),
        JobSpec::Replay { trace_hex, plan } => run_replay_job(trace_hex, plan.as_ref()),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_campaign(
    device: &str,
    seed: u64,
    lines: usize,
    samples: usize,
    deadline_rows: Option<usize>,
    plan: Option<FaultPlan>,
    ckpt: &Path,
    row_delay_ms: u64,
) -> ExecOutcome {
    let probe = LatencyProbe {
        working_set_lines: lines,
        samples,
    };
    let has_plan = plan.is_some();
    let mut campaign = match CheckpointedCampaign::resume_or_new(ckpt, device, seed, probe, plan) {
        Ok(c) => c,
        Err(e) => return fail(format!("campaign setup: {e}")),
    };
    let resumed = campaign.completed_rows();

    let (result, degraded, measured, unreached) = if let Some(budget) = deadline_rows {
        // The budget is a *total* row count for the job (not per-run), so a
        // crash-resumed budget job measures exactly the same rows the
        // uninterrupted job would have.
        let already = campaign.completed_rows();
        let remaining = budget.saturating_sub(already);
        let out = if remaining == 0 {
            campaign.finish_partial()
        } else {
            campaign.run_degraded(Some(ckpt), Some(remaining))
        };
        match out {
            Ok((result, coverage)) => (result, true, coverage.measured, coverage.unreached),
            Err(e) => return fail(format!("campaign: {e}")),
        }
    } else {
        loop {
            match campaign.step_row() {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => return fail(format!("campaign row: {e}")),
            }
            if let Err(e) = campaign.save(ckpt) {
                return fail(format!("campaign checkpoint: {e}"));
            }
            if row_delay_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(row_delay_ms));
            }
        }
        let total = campaign.num_sms();
        match campaign.finish() {
            Ok(result) => (result, false, total, 0),
            Err(e) => return fail(format!("campaign finish: {e}")),
        }
    };

    // The result is about to be cached under the job's content address;
    // the checkpoint has served its purpose.
    let _ = std::fs::remove_file(ckpt);
    gnoc_core::remove_orphan_tmp(ckpt);

    let rows = result.matrix.len();
    let cols = result.matrix.first().map_or(0, Vec::len);
    let grand = result.grand_mean();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for row in &result.matrix {
        for v in row {
            for b in v.to_bits().to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    // `summary` reproduces the one-shot `gnoc campaign` output line exactly
    // (both the full and the degraded form).
    let summary = if degraded {
        format!(
            "{device}: grand mean latency {grand:.0} cycles (degraded campaign{})",
            if has_plan { ", fault plan applied" } else { "" }
        )
    } else {
        format!(
            "{device}: grand mean latency {grand:.0} cycles over {rows}x{cols} pairs{}",
            if has_plan {
                " (fault plan applied)"
            } else {
                ""
            }
        )
    };
    ok(
        resumed,
        format!(
            "{{\"kind\":\"campaign\",\"device\":{},\"seed\":{seed},\"lines\":{lines},\"samples\":{samples},\"rows\":{rows},\"cols\":{cols},\"grand_mean\":{grand:.6},\"matrix_fnv\":\"{h:016x}\",\"degraded\":{degraded},\"measured\":{measured},\"unreached\":{unreached},\"summary\":{}}}",
            json_str(device),
            json_str(&summary)
        ),
    )
}

fn run_mesh(seed: u64, transfers: usize, plan: Option<&FaultPlan>) -> ExecOutcome {
    let cfg = MeshConfig::paper_6x6(ArbiterKind::RoundRobin);
    let benign = FaultPlan::none();
    let plan = plan.unwrap_or(&benign);
    let mut rm = match ReliableMesh::with_faults(cfg, plan, RetryConfig::default()) {
        Ok(rm) => rm,
        Err(e) => return fail(format!("mesh setup: {e}")),
    };
    let nodes = (cfg.width * cfg.height) as u64;
    let mut state = seed;
    let mut submitted = 0usize;
    while submitted < transfers {
        let src = (splitmix(&mut state) % nodes) as u32;
        let dst = (splitmix(&mut state) % nodes) as u32;
        if src == dst {
            continue;
        }
        rm.submit(NodeId(src), NodeId(dst), 1, PacketClass::Request);
        submitted += 1;
    }
    let quiesced = rm.run_until_quiescent(2_000_000);
    if !quiesced {
        return fail(format!(
            "mesh failed to quiesce (outstanding {})",
            rm.outstanding()
        ));
    }
    let s = rm.stats();
    let summary = format!(
        "mesh seed {seed}: {}/{} delivered, {} lost, mean latency {:.1} cycles",
        s.delivered,
        s.submitted,
        s.lost_total(),
        s.mean_latency()
    );
    ok(
        0,
        format!(
            "{{\"kind\":\"mesh\",\"seed\":{seed},\"transfers\":{transfers},\"delivered\":{},\"lost\":{},\"retries\":{},\"watchdog_trips\":{},\"mean_latency\":{:.6},\"summary\":{}}}",
            s.delivered,
            s.lost_total(),
            s.retries,
            s.watchdog_trips,
            s.mean_latency(),
            json_str(&summary)
        ),
    )
}

fn run_chaos_job(seed_start: u64, seed_count: u64, transfers: u32) -> ExecOutcome {
    let cfg = ChaosConfig {
        device: None, // NoC-only: device oracles are the campaign op's job
        transfers,
        ..ChaosConfig::default()
    };
    let opts = ChaosOptions {
        seeds: (seed_start..seed_start.saturating_add(seed_count)).collect(),
        ..ChaosOptions::default()
    };
    let run = match run_chaos(&cfg, &opts, &TelemetryHandle::disabled()) {
        Ok(run) => run,
        Err(e) => return fail(format!("chaos: {e}")),
    };
    let report = run.report;
    let summary = format!(
        "chaos seeds {seed_start}..{}: {} completed, {} violation(s), {} panic(s)",
        seed_start.saturating_add(seed_count),
        report.completed_seeds.len(),
        report.violations.len(),
        report.panics
    );
    ok(
        0,
        format!(
            "{{\"kind\":\"chaos\",\"seed_start\":{seed_start},\"seed_count\":{seed_count},\"transfers\":{transfers},\"completed\":{},\"violations\":{},\"panics\":{},\"clean\":{},\"summary\":{}}}",
            report.completed_seeds.len(),
            report.violations.len(),
            report.panics,
            report.is_clean(),
            json_str(&summary)
        ),
    )
}

fn run_fabric_job(devices: u32, topology: &str, seed: u64, transfers: usize) -> ExecOutcome {
    let Some(topo) = FabricTopology::parse(topology) else {
        return fail(format!("unknown fabric topology {topology:?}"));
    };
    let cfg = FabricConfig::new(devices, topo);
    let nodes = (cfg.mesh.width * cfg.mesh.height) as u64;
    let mut sim = match FabricSim::with_faults(cfg, &FaultPlan::none()) {
        Ok(sim) => sim,
        Err(e) => return fail(format!("fabric setup: {e}")),
    };
    let devs = u64::from(devices);
    let mut state = seed;
    let mut submitted = 0usize;
    while submitted < transfers {
        let src_dev = (splitmix(&mut state) % devs) as u32;
        let dst_dev = (splitmix(&mut state) % devs) as u32;
        let src = (splitmix(&mut state) % nodes) as u32;
        let dst = (splitmix(&mut state) % nodes) as u32;
        if src_dev == dst_dev && src == dst {
            continue;
        }
        let flits = 1 + (splitmix(&mut state) % 4) as u32;
        if let Err(e) = sim.submit(
            src_dev,
            NodeId(src),
            dst_dev,
            NodeId(dst),
            flits,
            PacketClass::Request,
        ) {
            return fail(format!("fabric submit: {e}"));
        }
        submitted += 1;
    }
    let quiesced = sim.run_until_quiescent(2_000_000);
    if !quiesced {
        return fail(format!(
            "fabric failed to quiesce (outstanding {})",
            sim.outstanding()
        ));
    }
    let s = sim.stats();
    let summary = format!(
        "fabric {devices}x{topology} seed {seed}: {}/{} delivered ({} cross-device), {} lost, mean latency {:.1} cycles",
        s.delivered,
        s.submitted,
        s.cross_device,
        s.lost_total(),
        s.mean_latency()
    );
    ok(
        0,
        format!(
            "{{\"kind\":\"fabric\",\"devices\":{devices},\"topology\":{},\"seed\":{seed},\"transfers\":{transfers},\"delivered\":{},\"lost\":{},\"cross_device\":{},\"fabric_hops\":{},\"mean_latency\":{:.6},\"summary\":{}}}",
            json_str(topology),
            s.delivered,
            s.lost_total(),
            s.cross_device,
            s.fabric_hops,
            s.mean_latency(),
            json_str(&summary)
        ),
    )
}

/// Replays a hex-encoded trace artifact in-process and verifies the
/// final-state digest against the sealed footer. A divergent digest, a
/// corrupt chunk, or a fault-plan mismatch fails the job; a truncated tail
/// succeeds with `"complete":false` (the salvage contract the CLI's
/// `gnoc trace replay` also honors).
fn run_replay_job(trace_hex: &str, plan: Option<&FaultPlan>) -> ExecOutcome {
    use gnoc_core::trace::{validate_stream, TraceKind, TraceReader};
    use gnoc_core::trace_digest;

    let bytes = match gnoc_core::trace::from_hex(trace_hex) {
        Ok(b) => b,
        Err(e) => return fail(format!("replay: {e}")),
    };
    let mut reader = match TraceReader::from_bytes(bytes) {
        Ok(r) => r,
        Err(e) => return fail(format!("replay: {e}")),
    };
    let header = reader.header().clone();
    let plan_fnv = trace_digest::plan_digest(plan);
    if header.plan_fnv != plan_fnv {
        return fail(format!(
            "replay: trace was recorded against fault plan {:016x} but the job supplies {plan_fnv:016x}",
            header.plan_fnv
        ));
    }
    let benign = FaultPlan::none();
    let mesh_cfg = MeshConfig {
        width: header.width as usize,
        height: header.height as usize,
        buffer_packets: 4,
        arbiter: ArbiterKind::RoundRobin,
        route_order: gnoc_core::noc::RouteOrder::Xy,
        vcs: 1,
    };
    // (events replayed, truncation point, canonical stats line, sealed digest)
    let (events, truncated, line, recorded) = match header.kind {
        TraceKind::Mesh => {
            let mut rm = match ReliableMesh::with_faults(
                mesh_cfg,
                plan.unwrap_or(&benign),
                RetryConfig::default(),
            ) {
                Ok(rm) => rm,
                Err(e) => return fail(format!("replay mesh setup: {e}")),
            };
            let outcome = match rm.replay_from(&mut reader) {
                Ok(o) => o,
                Err(e) => return fail(format!("replay: {e}")),
            };
            rm.run_until_quiescent(2_000_000);
            let line = match trace_digest::mesh_stats_line(&rm) {
                Ok(l) => l,
                Err(e) => return fail(format!("replay: {e}")),
            };
            let recorded = reader.footer().map(|f| f.stats_fnv);
            (outcome.replayed, outcome.truncated, line, recorded)
        }
        TraceKind::Fabric => {
            let Some(topo) = FabricTopology::parse(&header.topology) else {
                return fail(format!(
                    "replay: unknown fabric topology {:?}",
                    header.topology
                ));
            };
            let mut cfg = FabricConfig::new(header.devices, topo);
            cfg.mesh = mesh_cfg;
            let mut sim = match FabricSim::with_faults(cfg, plan.unwrap_or(&benign)) {
                Ok(sim) => sim,
                Err(e) => return fail(format!("replay fabric setup: {e}")),
            };
            let outcome = match sim.replay_from(&mut reader) {
                Ok(o) => o,
                Err(e) => return fail(format!("replay: {e}")),
            };
            sim.run_until_quiescent(2_000_000);
            let line = match trace_digest::fabric_stats_line(&sim) {
                Ok(l) => l,
                Err(e) => return fail(format!("replay: {e}")),
            };
            let recorded = reader.footer().map(|f| f.stats_fnv);
            (outcome.replayed, outcome.truncated, line, recorded)
        }
        TraceKind::Campaign => {
            let summary = match validate_stream(&mut reader) {
                Ok(s) => s,
                Err(e) => return fail(format!("replay: {e}")),
            };
            let device = header.device.clone().unwrap_or_default();
            let probe = LatencyProbe {
                working_set_lines: header.lines as usize,
                samples: header.samples as usize,
            };
            let mut campaign =
                match CheckpointedCampaign::new(&device, header.seed, probe, plan.cloned()) {
                    Ok(c) => c,
                    Err(e) => return fail(format!("replay campaign setup: {e}")),
                };
            let result = match campaign.run_to_completion(None) {
                Ok(r) => r,
                Err(e) => return fail(format!("replay campaign: {e}")),
            };
            let line = trace_digest::campaign_stats_line(&device, &result);
            let recorded = summary.complete.then_some(summary.stats_fnv);
            (summary.events, summary.truncated, line, recorded)
        }
    };
    let digest = trace_digest::line_digest(&line);
    let kind = header.kind.name();
    if truncated.is_none() {
        if let Some(rec) = recorded {
            if rec != 0 && rec != digest {
                return fail(format!(
                    "replay: divergent {kind} replay: stats digest {digest:016x} does not match the recorded {rec:016x}"
                ));
            }
        }
    }
    let complete = truncated.is_none();
    let summary = if complete {
        format!(
            "replay {kind}: {events} event(s), stats digest {digest:016x} matches the recording"
        )
    } else {
        format!(
            "replay {kind} prefix: {events} event(s), stats digest {digest:016x} (truncated trace)"
        )
    };
    ok(
        0,
        format!(
            "{{\"kind\":\"replay\",\"trace\":{},\"events\":{events},\"complete\":{complete},\"digest\":\"{digest:016x}\",\"summary\":{}}}",
            json_str(kind),
            json_str(&summary)
        ),
    )
}
