//! End-to-end engine tests: admission control, dedup, crash recovery, and
//! the bit-identity contract across `--jobs` counts and the cache.

use gnoc_core::telemetry::TelemetryHandle;
use gnoc_core::{CheckpointedCampaign, LatencyProbe};
use gnoc_serve::engine::{Admission, Engine, JobOutcome, ServeConfig};
use gnoc_serve::protocol::JobSpec;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gnoc-serve-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mesh_spec(seed: u64) -> JobSpec {
    JobSpec::Mesh {
        seed,
        transfers: 40,
        plan: None,
    }
}

fn campaign_spec(deadline_rows: Option<usize>) -> JobSpec {
    JobSpec::Campaign {
        device: "v100".into(),
        seed: 7,
        lines: 2,
        samples: 2,
        deadline_rows,
        plan: None,
    }
}

fn recv_ok(rx: &mpsc::Receiver<JobOutcome>) -> String {
    let outcome = rx
        .recv_timeout(Duration::from_secs(120))
        .expect("job outcome");
    outcome.result.expect("job succeeded")
}

fn wait_idle(engine: &Engine) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !engine.is_idle() {
        assert!(Instant::now() < deadline, "engine did not drain in time");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn overload_rejects_past_queue_cap_then_recovers() {
    let mut cfg = ServeConfig::new(scratch("overload"));
    cfg.queue_cap = 2;
    // Idle engine: nothing drains the queue, so the admission decisions
    // below are deterministic.
    let mut engine = Engine::open_idle(cfg, TelemetryHandle::disabled()).unwrap();
    let h = engine.handle();

    let a = h.admit(1, &mesh_spec(1));
    let b = h.admit(2, &mesh_spec(2));
    let (rx_a, rx_b) = match (a, b) {
        (Admission::Enqueued { rx: ra, .. }, Admission::Enqueued { rx: rb, .. }) => (ra, rb),
        other => panic!("expected two enqueues, got {other:?}"),
    };
    match h.admit(3, &mesh_spec(3)) {
        Admission::Rejected { reason } => {
            assert!(reason.contains("queue full"), "reason: {reason}")
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    assert_eq!(h.health().overload, "open");
    assert_eq!(h.health().jobs_rejected, 1);

    // Once the scheduler drains the queue the breaker closes again and the
    // previously rejected work is admissible.
    engine.kick();
    recv_ok(&rx_a);
    recv_ok(&rx_b);
    wait_idle(&engine);
    assert_eq!(h.health().overload, "closed");
    match h.admit(3, &mesh_spec(3)) {
        Admission::Enqueued { rx, .. } => {
            recv_ok(&rx);
        }
        other => panic!("expected enqueue after drain, got {other:?}"),
    }
}

#[test]
fn session_cap_bounds_per_session_work() {
    let mut cfg = ServeConfig::new(scratch("sessioncap"));
    cfg.session_cap = 1;
    let engine = Engine::open_idle(cfg, TelemetryHandle::disabled()).unwrap();
    let h = engine.handle();

    assert!(matches!(
        h.admit(1, &mesh_spec(1)),
        Admission::Enqueued { .. }
    ));
    match h.admit(1, &mesh_spec(2)) {
        Admission::Rejected { reason } => {
            assert!(reason.contains("in flight"), "reason: {reason}")
        }
        other => panic!("expected session-cap rejection, got {other:?}"),
    }
    // A different session is unaffected.
    assert!(matches!(
        h.admit(2, &mesh_spec(2)),
        Admission::Enqueued { .. }
    ));
}

#[test]
fn work_budgets_reject_oversized_jobs_with_reasons() {
    let mut cfg = ServeConfig::new(scratch("budgets"));
    cfg.max_rows = 4;
    cfg.max_seeds = 2;
    cfg.max_transfers = 100;
    let engine = Engine::open_idle(cfg, TelemetryHandle::disabled()).unwrap();
    let h = engine.handle();

    // A full v100 campaign is 80 rows: over the 4-row budget.
    match h.admit(1, &campaign_spec(None)) {
        Admission::Rejected { reason } => {
            assert!(reason.contains("deadline_rows"), "reason: {reason}")
        }
        other => panic!("expected budget rejection, got {other:?}"),
    }
    // The salvage path the reason suggests is admissible.
    assert!(matches!(
        h.admit(1, &campaign_spec(Some(3))),
        Admission::Enqueued { .. }
    ));
    match h.admit(
        2,
        &JobSpec::Chaos {
            seed_start: 0,
            seed_count: 3,
            transfers: 8,
        },
    ) {
        Admission::Rejected { reason } => assert!(reason.contains("budget"), "reason: {reason}"),
        other => panic!("expected seed-budget rejection, got {other:?}"),
    }
    match h.admit(
        2,
        &JobSpec::Mesh {
            seed: 1,
            transfers: 101,
            plan: None,
        },
    ) {
        Admission::Rejected { reason } => assert!(reason.contains("budget"), "reason: {reason}"),
        other => panic!("expected transfer-budget rejection, got {other:?}"),
    }
}

#[test]
fn duplicate_requests_attach_to_one_job() {
    let mut engine = Engine::open_idle(
        ServeConfig::new(scratch("dedup")),
        TelemetryHandle::disabled(),
    )
    .unwrap();
    let h = engine.handle();

    let first = h.admit(1, &mesh_spec(9));
    let second = h.admit(2, &mesh_spec(9));
    let (job_a, rx_a) = match first {
        Admission::Enqueued { job, rx } => (job, rx),
        other => panic!("expected enqueue, got {other:?}"),
    };
    let (job_b, rx_b) = match second {
        Admission::Attached { job, rx } => (job, rx),
        other => panic!("expected attach, got {other:?}"),
    };
    assert_eq!(job_a, job_b, "attached to the same job id");

    engine.kick();
    let pa = recv_ok(&rx_a);
    let pb = recv_ok(&rx_b);
    assert_eq!(pa, pb, "all waiters get the identical payload");
}

/// The crash-safety pin: a daemon killed mid-campaign restarts, replays its
/// journal, resumes the checkpointed job, and produces *exactly* the bytes
/// an uninterrupted run produces.
#[test]
fn killed_engine_resumes_journaled_job_bit_identically() {
    let dir = scratch("crash");
    let spec = campaign_spec(None);
    let key = spec.cache_key();

    // 1. Admit the job but "crash" before it runs (idle engine, dropped).
    {
        let engine =
            Engine::open_idle(ServeConfig::new(dir.clone()), TelemetryHandle::disabled()).unwrap();
        match engine.handle().admit(1, &spec) {
            Admission::Enqueued { .. } => {}
            other => panic!("expected enqueue, got {other:?}"),
        }
    } // drop = hard kill; journal has `submitted` with no terminal record

    // 2. Simulate the partial progress a killed worker left behind: a
    //    checkpoint holding a strict prefix of the campaign.
    let ckpt = dir.join("ckpt").join(format!("{key}.json"));
    {
        let probe = LatencyProbe {
            working_set_lines: 2,
            samples: 2,
        };
        let mut partial = CheckpointedCampaign::new("v100", 7, probe, None).unwrap();
        for _ in 0..5 {
            assert!(partial.step_row().unwrap());
        }
        partial.save(&ckpt).unwrap();
    }

    // 3. Restart: the journal re-queues the job, the checkpoint resumes it.
    {
        let engine =
            Engine::open(ServeConfig::new(dir.clone()), TelemetryHandle::disabled()).unwrap();
        assert_eq!(engine.recovered(), 1, "journal replay re-queued the job");
        wait_idle(&engine);
        assert!(!ckpt.exists(), "checkpoint is consumed on completion");
    }
    let resumed = gnoc_serve::cache::ResultCache::open(&dir)
        .unwrap()
        .get(&key)
        .expect("resumed result is cached");

    // 4. Reference: the same job, uninterrupted, in a fresh state dir.
    let fresh_dir = scratch("crash-ref");
    {
        let engine = Engine::open(
            ServeConfig::new(fresh_dir.clone()),
            TelemetryHandle::disabled(),
        )
        .unwrap();
        match engine.handle().admit(1, &spec) {
            Admission::Enqueued { rx, .. } => {
                recv_ok(&rx);
            }
            other => panic!("expected enqueue, got {other:?}"),
        }
    }
    let fresh = gnoc_serve::cache::ResultCache::open(&fresh_dir)
        .unwrap()
        .get(&key)
        .expect("fresh result is cached");
    assert_eq!(resumed, fresh, "resumed payload is bit-identical");

    // 5. The journal owes nothing after the resume completed.
    let (_, replay) =
        gnoc_serve::journal::Journal::open(&gnoc_serve::journal::Journal::path_in(&dir)).unwrap();
    assert!(replay.unfinished.is_empty());
}

/// The determinism pin across worker counts, ops, and the cache: payloads
/// from a 1-worker engine, a 2-worker engine, and a cache hit are all
/// byte-identical.
#[test]
fn payloads_are_identical_across_jobs_counts_and_cache() {
    let specs: Vec<JobSpec> = vec![
        campaign_spec(Some(3)),
        mesh_spec(11),
        JobSpec::Chaos {
            seed_start: 4,
            seed_count: 1,
            transfers: 8,
        },
        JobSpec::Fabric {
            devices: 2,
            topology: "ring".into(),
            seed: 5,
            transfers: 24,
        },
    ];

    let run_all = |dir: PathBuf, jobs: usize| -> Vec<String> {
        let mut cfg = ServeConfig::new(dir);
        cfg.jobs = jobs;
        let engine = Engine::open(cfg, TelemetryHandle::disabled()).unwrap();
        let h = engine.handle();
        let rxs: Vec<_> = specs
            .iter()
            .map(|s| match h.admit(1, s) {
                Admission::Enqueued { rx, .. } => rx,
                other => panic!("expected enqueue, got {other:?}"),
            })
            .collect();
        rxs.iter().map(recv_ok).collect()
    };

    let serial_dir = scratch("det-j1");
    let serial = run_all(serial_dir.clone(), 1);
    let parallel = run_all(scratch("det-j2"), 2);
    assert_eq!(serial, parallel, "payloads differ between --jobs 1 and 2");

    // Resubmitting against the first state dir hits the cache with the
    // exact same bytes.
    let engine = Engine::open(ServeConfig::new(serial_dir), TelemetryHandle::disabled()).unwrap();
    let h = engine.handle();
    for (spec, expected) in specs.iter().zip(&serial) {
        match h.admit(1, spec) {
            Admission::Cached { payload } => assert_eq!(&payload, expected),
            other => panic!("expected cache hit, got {other:?}"),
        }
    }
    assert_eq!(h.health().cache_hits, specs.len() as u64);
}

#[test]
fn draining_engine_rejects_new_work() {
    let engine = Engine::open_idle(
        ServeConfig::new(scratch("drain")),
        TelemetryHandle::disabled(),
    )
    .unwrap();
    let h = engine.handle();
    h.begin_drain();
    match h.admit(1, &mesh_spec(1)) {
        Admission::Rejected { reason } => assert!(reason.contains("draining"), "{reason}"),
        other => panic!("expected drain rejection, got {other:?}"),
    }
    assert_eq!(h.health().overload, "open");
    assert!(h.health().draining);
}
