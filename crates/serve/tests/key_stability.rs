//! Property tests pinning the cache-key derivation: the key is a pure
//! function of the request's semantic content — equal requests always
//! collide, and changing any single field always changes the key (no field
//! is accidentally left out of the canonical form).

use gnoc_serve::protocol::{JobSpec, Request};
use proptest::prelude::*;

fn campaign(
    device_idx: usize,
    seed: u64,
    lines: usize,
    samples: usize,
    dl: Option<usize>,
) -> JobSpec {
    let device = ["v100", "a100", "h100"][device_idx % 3].to_string();
    JobSpec::Campaign {
        device,
        seed,
        lines,
        samples,
        deadline_rows: dl,
        plan: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equal requests produce equal keys, and the canonical form re-parses
    /// to the same spec (the key is derived from bytes that round-trip).
    #[test]
    fn equal_specs_hash_equal(
        device_idx in 0usize..3,
        seed in 0u64..1000,
        lines in 1usize..16,
        samples in 1usize..16,
        dl_raw in 0usize..40,
    ) {
        let dl = (dl_raw > 0).then_some(dl_raw);
        let a = campaign(device_idx, seed, lines, samples, dl);
        let b = campaign(device_idx, seed, lines, samples, dl);
        prop_assert_eq!(a.cache_key(), b.cache_key());
        match Request::parse(&a.canonical_json()) {
            Ok(Request::Job(reparsed)) => {
                prop_assert_eq!(reparsed.cache_key(), a.cache_key());
            }
            other => return Err(TestCaseError::fail(format!("canonical form did not re-parse: {other:?}"))),
        }
    }

    /// Any single-field mutation changes the key.
    #[test]
    fn single_field_changes_change_the_key(
        device_idx in 0usize..3,
        seed in 0u64..1000,
        lines in 1usize..16,
        samples in 1usize..16,
        dl_raw in 0usize..40,
    ) {
        let dl = (dl_raw > 0).then_some(dl_raw);
        let base = campaign(device_idx, seed, lines, samples, dl);
        let key = base.cache_key();
        let mutants = vec![
            campaign(device_idx + 1, seed, lines, samples, dl),
            campaign(device_idx, seed + 1, lines, samples, dl),
            campaign(device_idx, seed, lines + 1, samples, dl),
            campaign(device_idx, seed, lines, samples + 1, dl),
            campaign(device_idx, seed, lines, samples, match dl {
                None => Some(1),
                Some(d) => Some(d + 1),
            }),
        ];
        for mutant in mutants {
            prop_assert_ne!(&mutant.cache_key(), &key);
        }
    }

    /// Different ops never collide, even with overlapping numeric fields.
    #[test]
    fn ops_are_domain_separated(seed in 0u64..1000, n in 1usize..64) {
        let mesh = JobSpec::Mesh { seed, transfers: n, plan: None };
        let fabric = JobSpec::Fabric { devices: 2, topology: "ring".into(), seed, transfers: n };
        let chaos = JobSpec::Chaos { seed_start: seed, seed_count: 1, transfers: n as u32 };
        let keys = [mesh.cache_key(), fabric.cache_key(), chaos.cache_key()];
        prop_assert_ne!(&keys[0], &keys[1]);
        prop_assert_ne!(&keys[0], &keys[2]);
        prop_assert_ne!(&keys[1], &keys[2]);
    }
}
