//! Criterion benchmarks for the side-channel building blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use gnoc_core::sidechannel::timing::warp_read_cycles;
use gnoc_core::sidechannel::BigUint;
use gnoc_core::{Aes128, GpuDevice, SmId};

fn bench_sidechannel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sidechannel_kernels");

    let aes = Aes128::new([7u8; 16]);
    group.bench_function("aes_encrypt_block", |b| {
        b.iter(|| aes.encrypt_block([42u8; 16]))
    });
    group.bench_function("aes_encrypt_traced", |b| {
        b.iter(|| aes.encrypt_block_traced([42u8; 16]))
    });

    let base = BigUint::from_limbs(vec![0x0123_4567_89ab_cdef, 0x0fed_cba9]);
    let modulus = BigUint::from_limbs(vec![0x9ba4_f327_cd73_a697, 0xc1f6_1a5b_88f2_9d11]);
    let exponent = BigUint::from_limbs(vec![u64::MAX, 0xdead_beef_cafe_f00d]);
    group.bench_function("bigint_modpow_128bit_exp", |b| {
        b.iter(|| base.modpow_counted(&exponent, &modulus))
    });

    let mut dev = GpuDevice::a100(0);
    let lines: Vec<u8> = (0..16).collect();
    group.bench_function("warp_read_16_lines", |b| {
        b.iter(|| warp_read_cycles(&mut dev, SmId::new(0), &lines))
    });
    group.finish();
}

criterion_group!(benches, bench_sidechannel);
criterion_main!(benches);
