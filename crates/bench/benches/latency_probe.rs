//! Criterion benchmarks for the latency-measurement path (Algorithm 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnoc_core::{GpuDevice, LatencyProbe, SliceId, SmId};

fn bench_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("latency_probe");

    for (name, mut dev) in [
        ("v100", GpuDevice::v100(0)),
        ("a100", GpuDevice::a100(0)),
        ("h100", GpuDevice::h100(0)),
    ] {
        let probe = LatencyProbe::default();
        group.bench_with_input(BenchmarkId::new("measure_pair", name), &(), |b, _| {
            b.iter(|| probe.measure_pair(&mut dev, SmId::new(24), SliceId::new(0)))
        });
    }

    let mut dev = GpuDevice::v100(0);
    let probe = LatencyProbe {
        working_set_lines: 2,
        samples: 4,
    };
    group.bench_function("sm_profile/v100_32_slices", |b| {
        b.iter(|| probe.sm_profile(&mut dev, SmId::new(24)))
    });
    group.bench_function("timed_read/v100", |b| {
        dev.warm_line(SmId::new(0), 1);
        b.iter(|| dev.timed_read(SmId::new(0), 1))
    });
    group.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
