//! Criterion benchmarks for the max-min fair fabric solver (Algorithm 2's
//! steady-state engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnoc_core::microbench::bandwidth::{cross_flows, reachable_slices};
use gnoc_core::{AccessKind, GpcId, GpuDevice, SliceId, SmId};

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("bandwidth_solver");
    group.sample_size(20);

    let dev = GpuDevice::v100(0);
    let h = dev.hierarchy().clone();

    // Single flow.
    let one = cross_flows(&[SmId::new(0)], &[SliceId::new(0)], AccessKind::ReadHit);
    group.bench_function("1_flow", |b| b.iter(|| dev.solve_bandwidth(&one)));

    // One GPC into one slice (the Fig. 9c case).
    let gpc = cross_flows(
        h.sms_in_gpc(GpcId::new(0)),
        &[SliceId::new(0)],
        AccessKind::ReadHit,
    );
    group.bench_function("14_flows_one_slice", |b| {
        b.iter(|| dev.solve_bandwidth(&gpc))
    });

    // Full-chip aggregates on each preset.
    for (name, dev) in [
        ("v100_2560", GpuDevice::v100(0)),
        ("a100_8640", GpuDevice::a100(0)),
        ("h100_5280", GpuDevice::h100(0)),
    ] {
        let h = dev.hierarchy().clone();
        let mut flows = Vec::new();
        for sm in SmId::range(h.num_sms()) {
            flows.extend(cross_flows(
                &[sm],
                &reachable_slices(&dev, sm),
                AccessKind::ReadHit,
            ));
        }
        group.bench_with_input(BenchmarkId::new("aggregate", name), &flows, |b, flows| {
            b.iter(|| dev.solve_bandwidth(flows))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
