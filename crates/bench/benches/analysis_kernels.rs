//! Criterion benchmarks for the statistics kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use gnoc_core::{analysis, correlation_matrix, pearson};

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_kernels");

    let x: Vec<f64> = (0..1024)
        .map(|i| (i as f64 * 0.37).sin() * 50.0 + 200.0)
        .collect();
    let y: Vec<f64> = (0..1024)
        .map(|i| (i as f64 * 0.11).cos() * 30.0 + 180.0)
        .collect();
    group.bench_function("pearson_1024", |b| b.iter(|| pearson(&x, &y)));

    // The Fig. 6 workload: 80 SM profiles of 32 slices each.
    let profiles: Vec<Vec<f64>> = (0..80)
        .map(|s| {
            (0..32)
                .map(|i| 200.0 + ((s * 13 + i * 7) % 41) as f64)
                .collect()
        })
        .collect();
    group.bench_function("correlation_matrix_80x32", |b| {
        b.iter(|| correlation_matrix(&profiles))
    });

    let samples: Vec<f64> = (0..4096)
        .map(|i| ((i * 2654435761u64) % 997) as f64)
        .collect();
    group.bench_function("histogram_4096", |b| {
        b.iter(|| analysis::Histogram::new(&samples, 0.0, 1000.0, 64))
    });
    group.bench_function("quantile_4096", |b| {
        b.iter(|| analysis::quantile(&samples, 0.95))
    });

    let corr = correlation_matrix(&profiles);
    group.bench_function("correlation_clusters_80", |b| {
        b.iter(|| analysis::correlation_clusters(&corr, 0.9))
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
