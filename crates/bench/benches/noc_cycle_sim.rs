//! Criterion benchmarks for the cycle-level NoC simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use gnoc_core::noc::{
    run_fairness, run_memsim, ArbiterKind, FairnessConfig, MemSimConfig, Mesh, MeshConfig, NodeId,
    PacketClass,
};
use gnoc_core::TelemetryHandle;

fn saturated_mesh_run(telemetry: TelemetryHandle) -> u64 {
    let mut mesh = Mesh::new(MeshConfig::paper_6x6(ArbiterKind::RoundRobin));
    mesh.set_telemetry(telemetry);
    for cycle in 0..1000u64 {
        for src in 6..36u32 {
            let _ = mesh.try_inject(
                NodeId::new(src),
                NodeId::new((cycle % 6) as u32),
                1,
                PacketClass::Request,
            );
        }
        mesh.step();
        mesh.drain_ejected();
    }
    mesh.stats().delivered_total
}

fn bench_noc(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_cycle_sim");
    group.sample_size(10);

    // The telemetry acceptance gate: the disabled handle (the default) must
    // cost <2% next to the same run, and the enabled registry shows what a
    // metrics-collecting run pays.
    group.bench_function("mesh_6x6_1000_cycles_saturated", |b| {
        b.iter(|| saturated_mesh_run(TelemetryHandle::disabled()))
    });
    group.bench_function("mesh_6x6_1000_cycles_saturated_telemetry", |b| {
        b.iter(|| saturated_mesh_run(TelemetryHandle::enabled()))
    });

    group.bench_function("fairness_experiment_short", |b| {
        let cfg = FairnessConfig {
            warmup: 500,
            measure: 2_000,
            ..FairnessConfig::paper(ArbiterKind::AgeBased)
        };
        b.iter(|| run_fairness(cfg, 1).unfairness)
    });

    group.bench_function("memsim_short", |b| {
        let cfg = MemSimConfig {
            warmup: 500,
            measure: 2_000,
            ..MemSimConfig::underprovisioned()
        };
        b.iter(|| run_memsim(cfg, 1).mean_utilization)
    });

    group.finish();
}

criterion_group!(benches, bench_noc);
criterion_main!(benches);
