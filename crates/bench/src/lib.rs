//! Shared helpers for the figure-regeneration binaries.
//!
//! Every table and figure of the paper has a `cargo run -p gnoc-bench --bin
//! figNN` binary that prints the same rows/series the paper reports, next to
//! the paper's published values where the paper states them. EXPERIMENTS.md
//! collects the outputs.

#![warn(missing_docs)]

use gnoc_core::TelemetryHandle;
use std::path::PathBuf;
use std::time::Instant;

/// Telemetry for one figure binary, driven by an optional `--metrics <path>`
/// argument (`reproduce.sh` passes `--metrics out/<bin>.metrics.json` to
/// every run). Without the flag the handle is disabled and the whole struct
/// is inert. Dropping the guard at the end of `main` records the binary's
/// wall-clock span and writes the registry, so a figure binary only needs
/// one line — `let _metrics = FigureMetrics::from_args(...);` — plus, where
/// its experiment supports it, passing `handle()` into a `*_traced` run.
#[derive(Debug)]
pub struct FigureMetrics {
    handle: TelemetryHandle,
    bin: String,
    path: Option<PathBuf>,
    started: Instant,
}

impl FigureMetrics {
    /// Parses `--metrics <path>` out of the process arguments.
    pub fn from_args(bin: &str) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let path = args
            .windows(2)
            .find(|w| w[0] == "--metrics")
            .map(|w| PathBuf::from(&w[1]));
        let handle = if path.is_some() {
            TelemetryHandle::enabled()
        } else {
            TelemetryHandle::disabled()
        };
        FigureMetrics {
            handle,
            bin: bin.to_string(),
            path,
            started: Instant::now(),
        }
    }

    /// The shared handle to thread into traced runs / `set_telemetry`.
    pub fn handle(&self) -> &TelemetryHandle {
        &self.handle
    }
}

impl Drop for FigureMetrics {
    fn drop(&mut self) {
        let Some(path) = &self.path else { return };
        let micros = (self.started.elapsed().as_secs_f64() * 1e6)
            .round()
            .max(0.0) as u64;
        let mut registry = self.handle.snapshot_registry().unwrap_or_default();
        registry.wall_record(&format!("span.figure.{}.us", self.bin), micros);
        registry.counter_add(&format!("span.figure.{}.calls", self.bin), 1);
        // The default export quarantines wall-clock spans so the metrics
        // files are bit-identical run-to-run; GNOC_WALL_METRICS=1 opts in.
        let json = if std::env::var_os("GNOC_WALL_METRICS").is_some() {
            registry.to_json_pretty_with_wall()
        } else {
            registry.to_json_pretty()
        };
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("warning: cannot write metrics file {}: {e}", path.display());
        }
    }
}

/// Prints the standard experiment header.
pub fn header(id: &str, claim: &str) {
    println!("================================================================");
    println!("{id}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

/// Prints one paper-vs-measured comparison row.
pub fn compare(metric: &str, paper: &str, measured: String) {
    println!("{metric:<52} paper: {paper:<18} measured: {measured}");
}

/// Formats a float series compactly.
pub fn series(values: &[f64], precision: usize) -> String {
    values
        .iter()
        .map(|v| format!("{v:.precision$}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// An ASCII sparkline of a series scaled to its own maximum.
pub fn sparkline(values: &[f64]) -> String {
    const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| RAMP[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_formats_with_precision() {
        assert_eq!(series(&[1.0, 2.5], 1), "1.0 2.5");
    }

    #[test]
    fn sparkline_spans_ramp() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_handles_flat_series() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s.chars().count(), 3);
    }
}
