//! Shared helpers for the figure-regeneration binaries.
//!
//! Every table and figure of the paper has a `cargo run -p gnoc-bench --bin
//! figNN` binary that prints the same rows/series the paper reports, next to
//! the paper's published values where the paper states them. EXPERIMENTS.md
//! collects the outputs.

#![warn(missing_docs)]

/// Prints the standard experiment header.
pub fn header(id: &str, claim: &str) {
    println!("================================================================");
    println!("{id}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

/// Prints one paper-vs-measured comparison row.
pub fn compare(metric: &str, paper: &str, measured: String) {
    println!("{metric:<52} paper: {paper:<18} measured: {measured}");
}

/// Formats a float series compactly.
pub fn series(values: &[f64], precision: usize) -> String {
    values
        .iter()
        .map(|v| format!("{v:.precision$}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// An ASCII sparkline of a series scaled to its own maximum.
pub fn sparkline(values: &[f64]) -> String {
    const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| RAMP[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_formats_with_precision() {
        assert_eq!(series(&[1.0, 2.5], 1), "1.0 2.5");
    }

    #[test]
    fn sparkline_spans_ramp() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_handles_flat_series() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s.chars().count(), 3);
    }
}
