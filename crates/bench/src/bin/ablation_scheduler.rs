//! Ablation: how much scheduler entropy does the defense need?
//!
//! Sweeps the `RandomWindow` span (number of possible start SMs per launch)
//! from 1 (= static) to the full device (= the paper's random-seed defense)
//! and records the AES attack's success and margin at each point.

use gnoc_bench::header;
use gnoc_core::{run_aes_attack, AesAttackConfig, CtaScheduler, GpuDevice};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Ablation — scheduler entropy vs AES attack success (A100)",
        "span 1 = static (attack succeeds); full span = the paper's defense \
         (attack fails); the crossover shows how much entropy suffices",
    );
    let key = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    println!(
        "{:>6} {:>10} {:>12} {:>10}",
        "span", "recovered", "corr(true)", "margin"
    );
    for span in [1u32, 2, 4, 8, 16, 32, 64, 108] {
        let mut dev = GpuDevice::a100(40);
        let cfg = AesAttackConfig {
            key,
            samples: 2_000,
            position: 0,
            scheduler: CtaScheduler::RandomWindow { span },
        };
        let r = run_aes_attack(&mut dev, &cfg, 40);
        println!(
            "{:>6} {:>10} {:>12.3} {:>10.3}",
            span,
            if r.succeeded() { "YES" } else { "no" },
            r.correlations[r.true_byte as usize],
            r.margin
        );
    }
    println!(
        "\nThe correlation decays as soon as the window spans SMs with \
         different slice distances; crossing the partition boundary (span \
         beyond one partition's worth of launch order) is the decisive step."
    );
}
