//! Trace record/replay overhead benchmark (`gnoc-trace`).
//!
//! Three claims from the trace subsystem's design get pinned here:
//!
//! 1. **Recording is cheap.** An A/B/A sandwich runs the paper 6x6 mesh
//!    soak bare (phase A), with a `TraceTap` attached (phase B), then bare
//!    again (phase C). Min-of-K wall times for the two bare phases must
//!    agree within `max(5%, phase-A spread)` — attaching and tearing down
//!    a tap leaves no residual cost — and every phase must produce the
//!    same canonical stats line (the tap is observation-only). The enabled
//!    overhead (B vs A) is reported but not asserted.
//! 2. **Replay is not slower than synthesis.** Replaying the recorded
//!    stream through `replay_from` is compared against regenerating the
//!    same traffic from the seed; both are reported (informational — the
//!    claim is "same order of magnitude", not a strict bound) and both
//!    must land on the recorded stats digest.
//! 3. **Corruption is detected fast.** A bit flipped in the middle of the
//!    trace must be caught by `validate_stream` in well under the time one
//!    replay takes — detection reads and CRCs chunks, it never simulates.
//!
//! Rows `{schema, bench, rep, wall_us}` go to `BENCH_trace.json` (or the
//! path given as the first argument). Only `wall_us` is machine-dependent.

use gnoc_core::noc::{NodeId, PacketClass};
use gnoc_core::trace::{validate_stream, TraceHeader, TraceReader, TraceTap};
use gnoc_core::trace_digest;
use gnoc_core::{ArbiterKind, FaultPlan, MeshConfig, ReliableMesh, RetryConfig};
use std::time::Instant;

/// Reps per phase; min-of-K filters scheduler noise.
const REPS: usize = 5;
/// Floor on the allowed phase-A/phase-C disagreement.
const TOLERANCE: f64 = 0.05;
/// Transfers per soak — big enough to dominate setup cost.
const TRANSFERS: usize = 4000;
const SEED: u64 = 11;

struct Row {
    bench: String,
    rep: usize,
    wall_us: u64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn submit_soak(rm: &mut ReliableMesh, nodes: u64) {
    let mut state = SEED;
    let mut submitted = 0usize;
    while submitted < TRANSFERS {
        let src = (splitmix(&mut state) % nodes) as u32;
        let dst = (splitmix(&mut state) % nodes) as u32;
        if src == dst {
            continue;
        }
        rm.submit(NodeId(src), NodeId(dst), 1, PacketClass::Request);
        submitted += 1;
    }
}

/// One soak; returns (wall_us, canonical stats line, trace bytes if taped).
fn run_soak(tap: bool) -> (u64, String, Option<Vec<u8>>) {
    let cfg = MeshConfig::paper_6x6(ArbiterKind::RoundRobin);
    let plan = FaultPlan::none();
    let start = Instant::now();
    let mut rm =
        ReliableMesh::with_faults(cfg, &plan, RetryConfig::default()).expect("benign mesh builds");
    if tap {
        let header = TraceHeader::mesh(
            cfg.width as u32,
            cfg.height as u32,
            SEED,
            TRANSFERS as u64,
            0,
        );
        rm.attach_trace_tap(TraceTap::in_memory(&header));
    }
    submit_soak(&mut rm, (cfg.width * cfg.height) as u64);
    assert!(rm.run_until_quiescent(2_000_000), "soak quiesces");
    let line = trace_digest::mesh_stats_line(&rm).expect("stats serialize");
    let bytes = rm.take_trace_tap().map(|t| {
        t.finish_bytes(trace_digest::line_digest(&line))
            .expect("in-memory finalize")
    });
    (start.elapsed().as_micros() as u64, line, bytes)
}

fn min_of_phase(
    bench: &str,
    tap: bool,
    reference: &mut Option<String>,
    rows: &mut Vec<Row>,
) -> (u64, u64, Option<Vec<u8>>) {
    let mut walls = Vec::with_capacity(REPS);
    let mut trace = None;
    for rep in 0..REPS {
        let (wall_us, line, bytes) = run_soak(tap);
        match reference {
            Some(r) => assert_eq!(*r, line, "the tap perturbed the soak in {bench}"),
            None => *reference = Some(line),
        }
        if bytes.is_some() {
            trace = bytes;
        }
        walls.push(wall_us);
        rows.push(Row {
            bench: bench.to_string(),
            rep,
            wall_us,
        });
    }
    let min = *walls.iter().min().expect("REPS > 0");
    let max = *walls.iter().max().expect("REPS > 0");
    (min, max, trace)
}

/// One replay of `trace`; returns (wall_us, canonical stats line).
fn run_replay(trace: &[u8]) -> (u64, String) {
    let cfg = MeshConfig::paper_6x6(ArbiterKind::RoundRobin);
    let plan = FaultPlan::none();
    let start = Instant::now();
    let mut reader = TraceReader::from_bytes(trace.to_vec()).expect("recorded trace opens");
    let mut rm =
        ReliableMesh::with_faults(cfg, &plan, RetryConfig::default()).expect("benign mesh builds");
    let outcome = rm.replay_from(&mut reader).expect("recorded trace replays");
    assert_eq!(outcome.replayed, TRANSFERS as u64);
    assert!(outcome.truncated.is_none());
    assert!(rm.run_until_quiescent(2_000_000), "replay quiesces");
    let line = trace_digest::mesh_stats_line(&rm).expect("stats serialize");
    (start.elapsed().as_micros() as u64, line)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trace.json".to_string());
    let mut rows = Vec::new();
    let mut reference = None;

    // Claim 1: record overhead, A/B/A.
    let (min_a, max_a, _) = min_of_phase("trace_record_off_a", false, &mut reference, &mut rows);
    let (min_b, _, trace) = min_of_phase("trace_record_on_b", true, &mut reference, &mut rows);
    let (min_c, _, _) = min_of_phase("trace_record_off_c", false, &mut reference, &mut rows);
    let trace = trace.expect("phase B recorded a trace");
    let line = reference.clone().expect("phases ran");
    let digest = trace_digest::line_digest(&line);

    let spread_a = (max_a - min_a) as f64 / min_a as f64;
    let drift = (min_c as f64 - min_a as f64).abs() / min_a as f64;
    let enabled = (min_b as f64 - min_a as f64) / min_a as f64;
    println!(
        "tap off   min {min_a} us (phase spread {:.1}%)",
        100.0 * spread_a
    );
    println!(
        "tap on    min {min_b} us ({:+.1}% vs off — informational; {} trace bytes)",
        100.0 * enabled,
        trace.len()
    );
    println!("off again min {min_c} us (drift {:.1}%)", 100.0 * drift);
    let bound = TOLERANCE.max(spread_a);
    assert!(
        drift <= bound,
        "bare-soak wall time drifted {:.1}% across the A/B/A sandwich (bound {:.1}%): \
         the trace tap is not free when absent",
        100.0 * drift,
        100.0 * bound
    );

    // Claim 2: replay vs synthetic wall time.
    let mut replay_walls = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        let (wall_us, replay_line) = run_replay(&trace);
        assert_eq!(
            trace_digest::line_digest(&replay_line),
            digest,
            "replay diverged from the recording"
        );
        replay_walls.push(wall_us);
        rows.push(Row {
            bench: "trace_replay".to_string(),
            rep,
            wall_us,
        });
    }
    let min_replay = *replay_walls.iter().min().expect("REPS > 0");
    println!(
        "replay    min {min_replay} us ({:+.1}% vs synthetic — informational)",
        100.0 * (min_replay as f64 - min_a as f64) / min_a as f64
    );

    // Claim 3: corrupt-trace detection latency. Flip one byte mid-stream;
    // detection must cost well under one replay (it only reads and CRCs).
    let mut corrupt = trace.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xff;
    let start = Instant::now();
    let detected = match TraceReader::from_bytes(corrupt) {
        Ok(mut r) => validate_stream(&mut r).is_err(),
        Err(_) => true,
    };
    let detect_us = start.elapsed().as_micros() as u64;
    assert!(detected, "a mid-stream bit flip must be detected");
    rows.push(Row {
        bench: "trace_corrupt_detect".to_string(),
        rep: 0,
        wall_us: detect_us,
    });
    println!("corrupt-trace detection: {detect_us} us");
    assert!(
        detect_us < min_replay.max(1),
        "detection ({detect_us} us) must undercut a replay ({min_replay} us)"
    );

    let body = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"schema\": 1, \"bench\": \"{}\", \"rep\": {}, \"wall_us\": {}}}",
                r.bench, r.rep, r.wall_us
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    std::fs::write(&out, format!("[\n{body}\n]\n")).expect("write benchmark artifact");
    println!(
        "wrote {out} (record-off drift within {:.0}%)",
        100.0 * bound
    );
}
