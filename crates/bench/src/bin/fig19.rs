//! Fig. 19: RSA decryption time vs exponent Hamming weight under static and
//! random thread-block scheduling.

use gnoc_bench::{compare, header};
use gnoc_core::{run_rsa_attack, CtaScheduler, GpuDevice, RsaAttackConfig};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 19 — RSA timing vs number of exponent 1-bits (A100)",
        "(a) static: clean linear relation, weight recoverable; (b) random: \
         noisy, one timing maps to a wide weight range (paper: 416–1920)",
    );
    let dev = GpuDevice::a100(0);
    for (label, scheduler) in [
        ("(a) static scheduling", CtaScheduler::Static),
        (
            "(b) random thread-block scheduling",
            CtaScheduler::RandomSeed,
        ),
    ] {
        let r = run_rsa_attack(
            &dev,
            &RsaAttackConfig {
                samples: 200,
                scheduler,
                ..RsaAttackConfig::default()
            },
            19,
        );
        println!("\n{label}:");
        // A compact scatter: weight deciles vs mean time.
        let mut sorted = r.samples.clone();
        sorted.sort_by_key(|s| s.ones);
        for chunk in sorted.chunks(sorted.len().div_ceil(8)) {
            let w0 = chunk.first().unwrap().ones;
            let w1 = chunk.last().unwrap().ones;
            let mean_t: f64 = chunk.iter().map(|s| s.time).sum::<f64>() / chunk.len() as f64;
            println!("  weight {w0:>3}..{w1:<3}: mean time {mean_t:>9.0} cycles");
        }
        compare(
            "  fit R²",
            "≈1 static / low random",
            format!("{:.3}", r.fit.r_squared),
        );
        compare(
            "  weight range for one timing",
            "narrow static / wide random",
            format!("±{} bits", r.weight_uncertainty),
        );
    }
}
