//! Fig. 8: average L2 *hit* latency from each GPC to one MP (top row) and L2
//! *miss* penalty (bottom row) on V100 / A100 / H100.

use gnoc_bench::{header, series};
use gnoc_core::{GpcId, GpuDevice, LatencyProbe, MpId, SliceId, SmId};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 8 — L2 hit latency per GPC→MP and L2 miss penalty",
        "V100 ≈212 everywhere; A100 near ≈212 / far ≈400; H100 uniform hits. \
         Miss penalty constant on V100/A100, variable on H100",
    );
    let probe = LatencyProbe {
        working_set_lines: 2,
        samples: 8,
    };

    for mut dev in [GpuDevice::v100(8), GpuDevice::a100(8), GpuDevice::h100(8)] {
        let name = dev.spec().name.clone();
        let h = dev.hierarchy().clone();
        println!("\n--- {name} ---");

        // Top: mean hit latency from each GPC to the slices of MP0 (for
        // partition-local devices, to the first local MP — footnote 5).
        let mut hits = Vec::new();
        for g in 0..h.num_gpcs() {
            let gpc = GpcId::new(g as u32);
            let sm = h.sms_in_gpc(gpc)[0];
            let mp = match dev.spec().cache_policy {
                gnoc_core::CachePolicy::GloballyShared => MpId::new(0),
                gnoc_core::CachePolicy::PartitionLocal => h.mps_in_partition(h.sm(sm).partition)[0],
            };
            let slices = h.slices_in_mp(mp).to_vec();
            // On partition-local devices only local slices can serve hits.
            let slices: Vec<SliceId> = slices
                .into_iter()
                .filter(|&s| {
                    dev.spec().cache_policy == gnoc_core::CachePolicy::GloballyShared
                        || h.slice(s).partition == h.sm(sm).partition
                })
                .collect();
            let mean = slices
                .iter()
                .map(|&s| probe.measure_pair(&mut dev, sm, s))
                .sum::<f64>()
                / slices.len() as f64;
            hits.push(mean);
        }
        println!("hit latency per GPC (cycles):  {}", series(&hits, 0));

        // Bottom: miss penalty for lines across home MPs, from GPC0's SM.
        let sm = SmId::new(0);
        let local_p = h.sm(sm).partition;
        let serving = match dev.spec().cache_policy {
            gnoc_core::CachePolicy::GloballyShared => None, // slice = home
            gnoc_core::CachePolicy::PartitionLocal => Some(h.slices_in_partition(local_p)[0]),
        };
        let mut penalties = Vec::new();
        for m in 0..h.num_mps() {
            let mp = MpId::new(m as u32);
            let slice = serving.unwrap_or_else(|| h.slices_in_mp(mp)[0]);
            let hit = dev.hit_cycles_mean(sm, slice);
            let miss = dev.miss_cycles_mean(sm, slice, mp);
            penalties.push(miss - hit);
        }
        println!(
            "miss penalty per home MP (cycles): {}",
            series(&penalties, 0)
        );
    }
}
