//! Fig. 20: the many-to-few-to-many communication pattern and the bandwidth
//! quantities the Section VI analysis uses — instantiated with the model's
//! numbers.

use gnoc_bench::header;
use gnoc_core::{Calibration, GpuSpec};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 20 — many-to-few-to-many and the bandwidth hierarchy",
        "many SMs → few MCs → many SMs; BW_NoC-MEM (interface) and BW_MEM are \
         the quantities that must be ordered correctly",
    );
    for spec in GpuSpec::paper_presets() {
        let c = Calibration::for_spec(&spec);
        let h = spec.hierarchy();
        let noc_mem = c.mp_port_gbps * h.num_mps() as f64;
        let mem = spec.mem_peak_gbps * c.mem_efficiency;
        println!(
            "{:<5}: {} SMs (many) → {} MPs (few); BW_NoC-MEM {:.0} GB/s vs BW_MEM {:.0} GB/s → {}",
            spec.name,
            h.num_sms(),
            h.num_mps(),
            noc_mem,
            mem,
            if noc_mem > mem {
                "interface properly provisioned (no network wall)"
            } else {
                "NETWORK WALL"
            }
        );
    }
    println!(
        "\nSeries law (Implication #5): end-to-end throughput = min over \
         SM-side, NoC bisection, NoC↔MEM interface, DRAM — the interface, \
         not the bisection, is the term prior work under-modelled."
    );
}
