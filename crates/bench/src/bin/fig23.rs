//! Fig. 23: per-node throughput on a 6×6 mesh (30 compute nodes → 6 edge
//! MCs) under round-robin vs age-based arbitration.

use gnoc_bench::{compare, header, series};
use gnoc_core::noc::{run_fairness_traced, ArbiterKind, FairnessConfig};

fn main() {
    let metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 23 — throughput fairness on a 6×6 mesh",
        "round-robin: up to ≈2.4× spread across nodes; age-based: uniform",
    );
    for arbiter in [ArbiterKind::RoundRobin, ArbiterKind::AgeBased] {
        let r = run_fairness_traced(FairnessConfig::paper(arbiter), 23, metrics.handle().clone());
        println!("\n{arbiter:?} (packets/cycle per compute node, MCs on row 0):");
        for row in 0..5 {
            println!(
                "  row {} ({} hops min): {}",
                row + 1,
                row + 1,
                series(&r.throughput[row * 6..(row + 1) * 6], 3)
            );
        }
        println!("  max/min unfairness: {:.2}", r.unfairness);
        if arbiter == ArbiterKind::RoundRobin {
            compare(
                "  unfairness",
                "up to ≈2.4x",
                format!("{:.2}x", r.unfairness),
            );
        } else {
            compare("  unfairness", "≈1 (fair)", format!("{:.2}x", r.unfairness));
        }
    }
}
