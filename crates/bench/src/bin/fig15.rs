//! Fig. 15: V100 bandwidth under placement sweeps — (a) contiguous vs
//! distributed L2 slices, (b) contiguous vs distributed SMs, (c) one GPC
//! fanning out to more MPs.

use gnoc_bench::{compare, header};
use gnoc_core::microbench::bandwidth::cross_flows;
use gnoc_core::{AccessKind, GpcId, GpuDevice, MpId, SliceId, SmId};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 15 — placement sweeps (V100)",
        "(a) slice placement barely matters; (b) contiguous SMs lose ≈62% at \
         28 SMs→1 MP; (c) 14 contiguous SMs gain ≈3× from 1→4 MPs",
    );
    let dev = GpuDevice::v100(0);
    let h = dev.hierarchy().clone();
    let bw = |sms: &[SmId], slices: &[SliceId]| -> f64 {
        dev.solve_bandwidth(&cross_flows(sms, slices, AccessKind::ReadHit))
            .total_gbps
    };
    let all_sms: Vec<SmId> = SmId::range(80).collect();

    println!("(a) all 80 SMs → k slices, contiguous (one MP) vs distributed MPs:");
    for k in 1..=4usize {
        let contig: Vec<SliceId> = h.slices_in_mp(MpId::new(0))[..k].to_vec();
        let dist: Vec<SliceId> = (0..k)
            .map(|m| h.slices_in_mp(MpId::new(m as u32))[0])
            .collect();
        println!(
            "    k={k}: contiguous {:6.0} GB/s | distributed {:6.0} GB/s",
            bw(&all_sms, &contig),
            bw(&all_sms, &dist)
        );
    }

    println!("\n(b) N SMs → one MP (4 slices), contiguous GPCs vs spread over 6 GPCs:");
    let mp0: Vec<SliceId> = h.slices_in_mp(MpId::new(0)).to_vec();
    for n in [14usize, 28] {
        let contiguous: Vec<SmId> = h
            .sms_in_gpc(GpcId::new(0))
            .iter()
            .chain(h.sms_in_gpc(GpcId::new(1)))
            .copied()
            .take(n)
            .collect();
        let per_gpc = n.div_ceil(6);
        let distributed: Vec<SmId> = (0..6)
            .flat_map(|g| h.sms_in_gpc(GpcId::new(g))[..per_gpc].to_vec())
            .take(n)
            .collect();
        let c = bw(&contiguous, &mp0);
        let d = bw(&distributed, &mp0);
        println!(
            "    {n} SMs: contiguous {c:6.0} GB/s | distributed {d:6.0} GB/s | degradation {:.0}%",
            100.0 * (1.0 - c / d)
        );
        if n == 28 {
            compare(
                "    28-SM degradation",
                "≈62%",
                format!("{:.0}%", 100.0 * (1.0 - c / d)),
            );
        }
    }

    println!("\n(c) 14 SMs of GPC0 → slices spread over 1..4 MPs:");
    let gpc0: Vec<SmId> = h.sms_in_gpc(GpcId::new(0)).to_vec();
    let base = {
        let slices: Vec<SliceId> = h.slices_in_mp(MpId::new(0)).to_vec();
        bw(&gpc0, &slices)
    };
    for m in 1..=4usize {
        let slices: Vec<SliceId> = (0..m)
            .flat_map(|mp| h.slices_in_mp(MpId::new(mp as u32)).to_vec())
            .collect();
        let v = bw(&gpc0, &slices);
        println!(
            "    {m} MP(s): {v:6.0} GB/s ({:+.0}% vs 1 MP)",
            100.0 * (v / base - 1.0)
        );
    }
    compare("    1→4 MP gain", "≈+218%", "see above".into());
}
