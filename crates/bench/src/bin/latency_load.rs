//! Extension: latency under load — the latency/bandwidth curve of each
//! preset, complementing Algorithm 1's unloaded numbers.

use gnoc_bench::header;
use gnoc_core::microbench::loaded::latency_bandwidth_curve;
use gnoc_core::{GpuDevice, SliceId, SmId};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Extension — latency under load",
        "round-trip latency inflates as background traffic approaches the \
         fabric's saturation (equilibrium queueing model)",
    );
    for dev in [GpuDevice::v100(0), GpuDevice::a100(0), GpuDevice::h100(0)] {
        let counts = [0usize, 4, 8, 16, 24, 32];
        let curve = latency_bandwidth_curve(&dev, SmId::new(0), SliceId::new(0), &counts);
        println!("\n{} (probe SM0 → L2S0):", dev.spec().name);
        println!(
            "{:>16} {:>18} {:>16}",
            "background SMs", "background GB/s", "probe latency"
        );
        for p in curve {
            println!(
                "{:>16} {:>18.0} {:>16.0}",
                p.background_sms, p.background_gbps, p.probe_latency
            );
        }
    }
}
