//! Fig. 13: distribution of single-SM per-slice bandwidth — bimodal on A100
//! (near/far partitions), single-peaked on H100 (partition-local L2).

use gnoc_bench::{compare, header};
use gnoc_core::microbench::bandwidth::sm_slice_profile_gbps;
use gnoc_core::{GpuDevice, Histogram, SmId};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 13 — per-slice bandwidth distributions (A100 vs H100)",
        "A100 bimodal (near/far); H100 single peak; both above V100's 34 GB/s",
    );
    for (mut dev, paper_peaks) in [(GpuDevice::a100(13), 2usize), (GpuDevice::h100(13), 1)] {
        let name = dev.spec().name.clone();
        let mut samples = Vec::new();
        for sm in [0u32, 1, 2, 17, 40] {
            samples.extend(sm_slice_profile_gbps(&mut dev, SmId::new(sm)));
        }
        let h = Histogram::new(&samples, 15.0, 70.0, 28);
        println!("\n{name}:");
        print!("{}", h.render_ascii(40));
        compare(
            "  distribution peaks",
            &paper_peaks.to_string(),
            h.peak_count(0.2).to_string(),
        );
    }
}
