//! Fig. 6: Pearson correlation heatmaps of SM latency profiles on V100, A100
//! and H100 — the block structure that reveals physical placement.

use gnoc_bench::header;
use gnoc_core::{render_heatmap, GpuDevice, LatencyCampaign, LatencyProbe, SmId};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 6 — Pearson heatmaps of SM latency profiles",
        "V100: GPC-pair blocks incl. negative edge-to-edge correlation; \
         A100: partition split; H100: finer CPC-grained blocks",
    );
    let probe = LatencyProbe {
        working_set_lines: 2,
        samples: 6,
    };
    for mut dev in [GpuDevice::v100(6), GpuDevice::a100(6), GpuDevice::h100(6)] {
        let name = dev.spec().name.clone();
        let campaign = LatencyCampaign::run(&mut dev, &probe);
        let h = dev.hierarchy().clone();
        // Group the axes by GPC as the paper does.
        let mut order: Vec<usize> = (0..h.num_sms()).collect();
        order.sort_by_key(|&i| (h.sm(SmId::new(i as u32)).gpc, i));
        let reordered: Vec<Vec<f64>> = order
            .iter()
            .map(|&a| order.iter().map(|&b| campaign.correlation[a][b]).collect())
            .collect();
        println!("\n{name} ('@'=+1 … ' '=-1, separators every GPC):");
        print!(
            "{}",
            render_heatmap(&reordered, -1.0, 1.0, h.num_sms() / h.num_gpcs())
        );
    }
}
