//! Fig. 14: A100 single-slice bandwidth as the number of SMs grows, near vs
//! far partition — Little's law gap closing by ≈8 SMs.

use gnoc_bench::{header, series};
use gnoc_core::microbench::bandwidth::sms_to_slice_gbps;
use gnoc_core::{GpuDevice, PartitionId, SmId};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 14 — A100 slice bandwidth vs number of SMs (near vs far)",
        "1–2 SMs: far up to ≈28% lower (Little's law); converged by ≈8 SMs",
    );
    let mut dev = GpuDevice::a100(0);
    let h = dev.hierarchy().clone();
    let near_sms = h.sms_in_partition(PartitionId::new(0)).to_vec();
    let far_sms = h.sms_in_partition(PartitionId::new(1)).to_vec();
    let slice = h.slices_in_partition(PartitionId::new(0))[0];

    let counts = [1usize, 2, 3, 4, 6, 8, 12, 16];
    let sweep = |dev: &mut GpuDevice, sms: &[SmId]| -> Vec<f64> {
        counts
            .iter()
            .map(|&n| sms_to_slice_gbps(dev, &sms[..n], slice))
            .collect()
    };
    let near = sweep(&mut dev, &near_sms);
    let far = sweep(&mut dev, &far_sms);
    println!("SMs:            {:?}", counts);
    println!("near (GB/s):    {}", series(&near, 1));
    println!("far  (GB/s):    {}", series(&far, 1));
    for (i, &n) in counts.iter().enumerate() {
        println!(
            "  {n:>2} SMs: far is {:>5.1}% below near",
            100.0 * (1.0 - far[i] / near[i])
        );
    }
}
