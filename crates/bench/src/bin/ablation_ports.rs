//! Ablation: "speedup in space" vs "speedup in time".
//!
//! The paper (Fig. 15c) shows GPC speedup is partly provided as *space*
//! (additional per-MP connectivity) and not only *time* (more bandwidth per
//! port). This ablation trades one for the other at constant total port
//! capacity and re-runs the Fig. 15 experiments: narrow ports hurt
//! single-MP traffic, a small aggregate cap hurts fan-out traffic.

use gnoc_bench::header;
use gnoc_core::engine::Calibration;
use gnoc_core::microbench::bandwidth::cross_flows;
use gnoc_core::{AccessKind, GpcId, GpuDevice, GpuSpec, MpId, SliceId, SmId};

fn experiments(dev: &GpuDevice) -> (f64, f64) {
    let h = dev.hierarchy().clone();
    let gpc0: Vec<SmId> = h.sms_in_gpc(GpcId::new(0)).to_vec();
    let one_mp: Vec<SliceId> = h.slices_in_mp(MpId::new(0)).to_vec();
    let four_mp: Vec<SliceId> = (0..4)
        .flat_map(|m| h.slices_in_mp(MpId::new(m)).to_vec())
        .collect();
    let bw = |slices: &[SliceId]| {
        dev.solve_bandwidth(&cross_flows(&gpc0, slices, AccessKind::ReadHit))
            .total_gbps
    };
    (bw(&one_mp), bw(&four_mp))
}

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Ablation — GPC port provisioning: space vs time",
        "sweeping per-MP port width at fixed aggregate shows which traffic \
         each kind of speedup serves (Fig. 15b/c mechanics)",
    );
    println!(
        "{:>14} {:>14} | {:>12} {:>12} {:>10}",
        "port (GB/s)", "aggregate", "GPC→1 MP", "GPC→4 MPs", "gain"
    );
    for (port, total) in [
        (45.0, 320.0),
        (65.0, 320.0),
        (85.0, 320.0),
        (105.0, 320.0),
        (85.0, 200.0),
        (85.0, 480.0),
    ] {
        let spec = GpuSpec::v100();
        let mut calib = Calibration::for_spec(&spec);
        calib.gpc_port_gbps = port;
        calib.gpc_total_gbps = total;
        let dev = GpuDevice::with_calibration(spec, calib, 0).expect("valid");
        let (one, four) = experiments(&dev);
        println!(
            "{port:>14.0} {total:>14.0} | {one:>12.0} {four:>12.0} {:>9.0}%",
            100.0 * (four / one - 1.0)
        );
    }
    println!(
        "\nWider ports lift the single-MP case (speedup in time at the port); \
         the aggregate cap gates the fan-out case, so the measured 1→4-MP \
         gain — the paper's +218 % — pins down the port:aggregate ratio."
    );
}
