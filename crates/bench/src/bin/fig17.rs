//! Fig. 17: (a) warp timing vs number of unique cache lines, shifted per SM;
//! (b) two-SM square-kernel time across SM placements on A100.

use gnoc_bench::{compare, header, series};
use gnoc_core::sidechannel::timing::{two_sm_op_cycles, warp_read_cycles};
use gnoc_core::{GpuDevice, PartitionId};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 17 — timing vs coalescing and SM placement (A100)",
        "(a) latency linear in unique lines; the line shifts with the SM. \
         (b) square kernel: ≤12% variation within a partition, ≈1.7× across",
    );
    let mut dev = GpuDevice::a100(0);
    let h = dev.hierarchy().clone();
    let left = h.sms_in_partition(PartitionId::new(0)).to_vec();
    let right = h.sms_in_partition(PartitionId::new(1)).to_vec();

    println!("(a) warp time (cycles) vs unique lines, for three SMs:");
    let counts = [1usize, 4, 8, 12, 16, 20, 24, 28, 32];
    for sm in [left[0], left[6], right[0]] {
        let times: Vec<f64> = counts
            .iter()
            .map(|&n| {
                let lines: Vec<u8> = (0..n as u8).collect();
                (0..12)
                    .map(|_| warp_read_cycles(&mut dev, sm, &lines))
                    .sum::<f64>()
                    / 12.0
            })
            .collect();
        println!(
            "    {sm} (partition {}): {}",
            h.sm(sm).partition.index(),
            series(&times, 0)
        );
    }
    println!("    unique lines:          {counts:?}");

    println!("\n(b) square() kernel on SM pairs (first SM fixed, second varies):");
    let base = two_sm_op_cycles(&dev, left[0], left[1]);
    let mut same_hi = 0.0f64;
    for &b in left.iter().skip(1).take(16) {
        same_hi = same_hi.max(two_sm_op_cycles(&dev, left[0], b) / base);
    }
    let mut cross_hi = 0.0f64;
    for &b in right.iter().take(16) {
        cross_hi = cross_hi.max(two_sm_op_cycles(&dev, left[0], b) / base);
    }
    compare(
        "same-partition worst slowdown",
        "≤ ~1.12x",
        format!("{same_hi:.2}x"),
    );
    compare(
        "cross-partition worst slowdown",
        "≈1.7x",
        format!("{cross_hi:.2}x"),
    );
}
