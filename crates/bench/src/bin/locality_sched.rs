//! Extension: locality-aware CTA scheduling on a partitioned GPU.
//!
//! A natural question after the paper's A100 findings: should a kernel whose
//! working set lives on one partition be scheduled onto that partition's
//! SMs? The answer splits by regime, and the split is itself a consequence
//! of Observations #8 and #10: *latency*-bound kernels gain ≈2× from
//! locality (they pay the crossing on every dependent access), while
//! *bandwidth*-bound kernels are better off using all SMs — far SMs still
//! deliver ≈60 % of their near rate, and extra SMs engage extra GPC ports.

use gnoc_bench::{compare, header};
use gnoc_core::workloads::replay::{replay_on_sms, ReplayConfig};
use gnoc_core::workloads::MemoryTrace;
use gnoc_core::{GpuDevice, LatencyProbe, PartitionId, SmId};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Extension — locality-aware scheduling on A100",
        "latency-bound work: schedule onto the data's partition (≈2x); \
         bandwidth-bound work: use every SM — far SMs still add ≈60 %",
    );
    let mut dev = GpuDevice::a100(0);
    let h = dev.hierarchy().clone();

    // A working set resident on partition 0.
    let left_sm = h.sms_in_partition(PartitionId::new(0))[0];
    let lines: Vec<u64> = (0..200_000u64)
        .filter(|&l| h.slice(dev.effective_slice(left_sm, l)).partition == PartitionId::new(0))
        .take(60_000)
        .collect();

    // ---- Latency-bound regime: a dependent pointer chase. ------------------
    let probe = LatencyProbe::default();
    let near_slice = dev.effective_slice(left_sm, lines[0]);
    let far_sm = h.sms_in_partition(PartitionId::new(1))[0];
    let near_lat = probe.measure_pair(&mut dev, left_sm, near_slice);
    let far_lat = probe.measure_pair(&mut dev, far_sm, near_slice);
    println!("latency-bound kernel (dependent loads into the resident set):");
    compare(
        "  local SM latency (cycles)",
        "≈210",
        format!("{near_lat:.0}"),
    );
    compare("  far SM latency (cycles)", "≈400", format!("{far_lat:.0}"));
    println!(
        "  → locality speedup for serial chains: {:.2}x\n",
        far_lat / near_lat
    );

    // ---- Bandwidth-bound regime: streaming the resident set. ---------------
    let trace = MemoryTrace {
        name: "partition0-resident".into(),
        steps: lines.chunks(10_000).map(<[u64]>::to_vec).collect(),
    };
    let cfg = ReplayConfig {
        blocks: 108,
        ..ReplayConfig::default()
    };
    let near: Vec<SmId> = h.sms_in_partition(PartitionId::new(0)).to_vec();
    let far: Vec<SmId> = h.sms_in_partition(PartitionId::new(1)).to_vec();
    let all: Vec<SmId> = SmId::range(h.num_sms()).collect();
    let r_near = replay_on_sms(&dev, &trace, &cfg, &near);
    let r_all = replay_on_sms(&dev, &trace, &cfg, &all);
    let r_far = replay_on_sms(&dev, &trace, &cfg, &far);

    println!("bandwidth-bound kernel (streaming the resident set):");
    compare(
        "  local-partition SMs only (GB/s)",
        "-",
        format!("{:.0}", r_near.mean_gbps()),
    );
    compare(
        "  all SMs (GB/s)",
        "best",
        format!("{:.0}", r_all.mean_gbps()),
    );
    compare(
        "  far-partition SMs only (GB/s)",
        "worst",
        format!("{:.0}", r_far.mean_gbps()),
    );
    println!(
        "  → all-SM placement beats strict locality by {:.2}x here: far SMs \
         still contribute {:.0} % of a near SM's rate (Little's law, Fig. 14), \
         and more SMs engage more GPC↔MP ports.",
        r_all.mean_gbps() / r_near.mean_gbps(),
        100.0 * r_far.mean_gbps() / r_near.mean_gbps(),
    );
    println!(
        "\nconclusion: the right NUMA policy on partitioned GPUs is \
         regime-dependent — pin latency-critical kernels, spread streaming \
         kernels."
    );
}
