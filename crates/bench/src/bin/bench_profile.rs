//! Flight-recorder overhead benchmark (`gnoc-telemetry::FlightRecorder`).
//!
//! The recorder is designed so the *disabled* path — the shipping default,
//! where `Mesh` carries a `None` recorder slot and every instrumentation
//! site is a branch-not-taken — costs nothing measurable. This artifact
//! pins that claim with an A/B/A design:
//!
//! 1. phase A: K reps of the Fig. 23 fairness soak with the recorder off;
//! 2. phase B: K reps with the recorder attached (full lifecycle capture);
//! 3. phase C: K reps with the recorder off again.
//!
//! Min-of-K wall times are compared: `|min_C - min_A| / min_A` must stay
//! within `max(2%, phase-A spread)` — i.e. attaching and tearing down a
//! recorder leaves no residual cost on the disabled path, and the disabled
//! path itself is stable to measurement noise. The *enabled* overhead
//! (`min_B` vs `min_A`) is reported but not asserted: capturing a full
//! causal record per message is allowed to cost real time.
//!
//! Results are also asserted bit-identical between phases, re-pinning the
//! recorder's read-only contract. Rows
//! `{schema, bench, recorder, rep, wall_us}` go to `BENCH_profile.json`
//! (or the path given as the first argument). Only `wall_us` is
//! machine-dependent.

use gnoc_core::noc::{run_fairness_recorded, ArbiterKind, FairnessConfig};
use gnoc_core::telemetry::TelemetryHandle;
use std::time::Instant;

/// Reps per phase; min-of-K filters scheduler noise.
const REPS: usize = 5;
/// Floor on the allowed phase-A/phase-C disagreement.
const TOLERANCE: f64 = 0.02;

struct Row {
    phase: &'static str,
    recorder: &'static str,
    rep: usize,
    wall_us: u64,
}

fn run_phase(
    phase: &'static str,
    record: bool,
    reference: &mut Option<gnoc_core::noc::FairnessResult>,
    rows: &mut Vec<Row>,
) -> (u64, u64) {
    let cfg = FairnessConfig::paper(ArbiterKind::RoundRobin);
    let recorder = if record { "on" } else { "off" };
    let mut walls = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        let start = Instant::now();
        let (result, rec) = run_fairness_recorded(cfg, 42, TelemetryHandle::disabled(), record);
        let wall_us = start.elapsed().as_micros() as u64;
        assert_eq!(rec.is_some(), record, "recorder presence must match phase");
        match reference {
            Some(r) => assert_eq!(*r, result, "recorder perturbed the run in phase {phase}"),
            None => *reference = Some(result),
        }
        walls.push(wall_us);
        rows.push(Row {
            phase,
            recorder,
            rep,
            wall_us,
        });
    }
    let min = *walls.iter().min().expect("REPS > 0");
    let max = *walls.iter().max().expect("REPS > 0");
    (min, max)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_profile.json".to_string());
    let mut rows = Vec::new();
    let mut reference = None;

    let (min_a, max_a) = run_phase("a", false, &mut reference, &mut rows);
    let (min_b, _) = run_phase("b", true, &mut reference, &mut rows);
    let (min_c, _) = run_phase("c", false, &mut reference, &mut rows);

    let spread_a = (max_a - min_a) as f64 / min_a as f64;
    let drift = (min_c as f64 - min_a as f64).abs() / min_a as f64;
    let enabled = (min_b as f64 - min_a as f64) / min_a as f64;
    println!(
        "recorder off   min {min_a} us (phase spread {:.1}%)",
        100.0 * spread_a
    );
    println!(
        "recorder on    min {min_b} us ({:+.1}% vs off — informational)",
        100.0 * enabled
    );
    println!(
        "off again      min {min_c} us (drift {:.1}%)",
        100.0 * drift
    );
    let bound = TOLERANCE.max(spread_a);
    assert!(
        drift <= bound,
        "disabled-path wall time drifted {:.1}% across the A/B/A sandwich \
         (bound {:.1}%): the recorder is not free when off",
        100.0 * drift,
        100.0 * bound
    );

    let body = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"schema\": 1, \"bench\": \"fairness_6x6_{}\", \"recorder\": \"{}\", \
                 \"rep\": {}, \"wall_us\": {}}}",
                r.phase, r.recorder, r.rep, r.wall_us
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    std::fs::write(&out, format!("[\n{body}\n]\n")).expect("write benchmark artifact");
    println!(
        "wrote {out} (disabled-path overhead within {:.0}%)",
        100.0 * bound
    );
}
