//! Fig. 2: L2 latency histograms of GPC0 vs GPC2 on V100 — similar means,
//! very different spreads.

use gnoc_bench::{compare, header};
use gnoc_core::{GpcId, GpuDevice, Histogram, LatencyProbe, Summary};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 2 — GPC latency histograms (V100)",
        "GPC0: μ≈213 σ≈13.9; GPC2: μ≈209 σ≈7.5 — similar mean, different spread",
    );
    let mut dev = GpuDevice::v100(0);
    let probe = LatencyProbe {
        working_set_lines: 4,
        samples: 8,
    };
    let h = dev.hierarchy().clone();
    for (g, paper) in [(0u32, ("≈213", "≈13.9")), (2, ("≈209", "≈7.5"))] {
        let mut all = Vec::new();
        for &sm in h.sms_in_gpc(GpcId::new(g)) {
            all.extend(probe.sm_profile(&mut dev, sm));
        }
        let s = Summary::of(&all);
        println!("\nGPC{g}:");
        compare("  mean (cycles)", paper.0, format!("{:.0}", s.mean));
        compare("  stddev (cycles)", paper.1, format!("{:.1}", s.stddev));
        let hist = Histogram::new(&all, 170.0, 270.0, 25);
        print!("{}", hist.render_ascii(40));
    }
}
