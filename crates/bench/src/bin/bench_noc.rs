//! Cycle-vs-event NoC core wall-time benchmark.
//!
//! The event core skips provably-quiet spans (retry backoff, post-traffic
//! drain) in O(1) instead of stepping every idle cycle. This benchmark runs
//! the same idle-heavy workloads under both engines and asserts the results
//! are bit-identical before trusting any timing:
//!
//! 1. a faulted 8×8 reliable-mesh soak — flaky links force retransmissions
//!    whose exponentially backed-off timeouts leave the mesh provably idle
//!    for long spans — followed by a 100 k-cycle quiet drain tail, and
//! 2. a NoC-only chaos soak at `jobs ∈ {1, 2}` (the jobs sweep), pinning
//!    the parallel path to the serial cycle-exact reference.
//!
//! Timings land as JSON rows `{schema, bench, engine, jobs, wall_ms}` in
//! `BENCH_noc.json` (or the path given as the first argument), plus one
//! `noc_soak_speedup` row with the measured ratio. `--min-ratio R` exits
//! non-zero if the event engine's soak speedup falls below `R`, so `ci.sh`
//! can gate on the idle-tick bug staying fixed.

use gnoc_chaos::{run_chaos, ChaosConfig, ChaosOptions};
use gnoc_core::faults::{Direction, LinkFault, LinkFaultKind, RouterStall};
use gnoc_core::noc::{
    set_event_skip_enabled, ArbiterKind, MeshConfig, NodeId, PacketClass, ReliableMesh,
    RetryConfig, RouteOrder,
};
use gnoc_core::telemetry::TelemetryHandle;
use gnoc_core::FaultPlan;
use std::time::Instant;

/// Soak geometry: an 8×8 mesh, 2 VCs, with long retry timeouts so every
/// dropped flit buys a long provably-idle wait.
fn soak_mesh_cfg() -> MeshConfig {
    MeshConfig {
        width: 8,
        height: 8,
        buffer_packets: 4,
        arbiter: ArbiterKind::RoundRobin,
        route_order: RouteOrder::Xy,
        vcs: 2,
    }
}

fn soak_retry_cfg() -> RetryConfig {
    RetryConfig {
        max_retries: 6,
        base_timeout_cycles: 512,
        max_timeout_cycles: 8192,
        watchdog_cycles: 60_000,
    }
}

/// A hand-built plan: six flaky links spread across the die (drops drive
/// the retry engine), one mid-run router stall, one late dead-link pair
/// (exercises onset bookkeeping across skipped spans).
fn soak_plan() -> FaultPlan {
    let flaky = |router: u32, dir: Direction| LinkFault {
        router,
        dir,
        kind: LinkFaultKind::Flaky { drop_prob: 0.35 },
        onset: 0,
    };
    FaultPlan {
        seed: 9,
        links: vec![
            flaky(9, Direction::East),
            flaky(18, Direction::North),
            flaky(27, Direction::West),
            flaky(36, Direction::South),
            flaky(45, Direction::East),
            flaky(54, Direction::North),
            LinkFault {
                router: 20,
                dir: Direction::East,
                kind: LinkFaultKind::Dead,
                onset: 40_000,
            },
            LinkFault {
                router: 21,
                dir: Direction::West,
                kind: LinkFaultKind::Dead,
                onset: 40_000,
            },
        ],
        routers: vec![RouterStall {
            router: 35,
            onset: 10_000,
            duration: 2_000,
        }],
        ..FaultPlan::none()
    }
}

/// Everything the soak observes, for the bit-identity assertion.
#[derive(Debug, PartialEq)]
struct SoakFingerprint {
    cycle: u64,
    stats: gnoc_core::noc::ReliabilityStats,
    mesh_stats: gnoc_core::noc::MeshStats,
    outcomes: Vec<gnoc_core::noc::TransferOutcome>,
}

/// The idle-heavy soak: 120 cross-die transfers over the faulted mesh, run
/// to quiescence, then a 100 k-cycle quiet drain tail.
fn soak(event: bool) -> (SoakFingerprint, u64) {
    set_event_skip_enabled(event);
    let mut rm = ReliableMesh::with_faults(soak_mesh_cfg(), &soak_plan(), soak_retry_cfg())
        .expect("soak plan is valid for the 8x8 mesh");
    let nodes = 64u32;
    for i in 0..120u32 {
        let src = (i * 7) % nodes;
        let dst = (i * 13 + 31) % nodes;
        if src != dst {
            rm.submit(
                NodeId::new(src),
                NodeId::new(dst),
                1 + (i % 4),
                PacketClass::Request,
            );
        }
    }
    let start = Instant::now();
    assert!(
        rm.run_until_quiescent(150_000),
        "soak must quiesce within its budget"
    );
    rm.mesh_mut().run(100_000); // the quiet drain tail
    let wall_us = start.elapsed().as_micros() as u64;
    let fp = SoakFingerprint {
        cycle: rm.mesh().cycle(),
        stats: rm.stats().clone(),
        mesh_stats: rm.mesh().stats().clone(),
        outcomes: rm.outcomes(),
    };
    set_event_skip_enabled(true);
    (fp, wall_us)
}

/// NoC-only chaos soak under `engine` at `jobs` workers.
fn chaos_soak(event: bool, jobs: usize) -> (gnoc_chaos::ChaosReport, u64) {
    set_event_skip_enabled(event);
    let cfg = ChaosConfig {
        device: None, // NoC-only: device oracles are engine-independent
        ..ChaosConfig::default()
    };
    let opts = ChaosOptions {
        seeds: (0..40).collect(),
        jobs,
        ..ChaosOptions::default()
    };
    let start = Instant::now();
    let run = run_chaos(&cfg, &opts, &TelemetryHandle::disabled()).expect("soak must not error");
    assert!(run.finished);
    let wall_ms = start.elapsed().as_millis() as u64;
    set_event_skip_enabled(true);
    (run.report, wall_ms)
}

struct Row {
    bench: &'static str,
    engine: &'static str,
    jobs: usize,
    wall_ms: u64,
}

fn main() {
    let mut out = "BENCH_noc.json".to_string();
    let mut min_ratio: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--min-ratio" {
            let v = args.next().expect("--min-ratio needs a value");
            min_ratio = Some(v.parse().expect("--min-ratio value must be a number"));
        } else {
            out = a;
        }
    }

    let mut rows: Vec<Row> = Vec::new();

    // Soak: cycle-exact reference first, then the event engine; identical
    // or the timings mean nothing.
    let (fp_cycle, us_cycle) = soak(false);
    let (fp_event, us_event) = soak(true);
    assert_eq!(
        fp_event, fp_cycle,
        "event engine diverged from cycle-exact on the soak"
    );
    let ratio = us_cycle as f64 / (us_event.max(1)) as f64;
    println!("noc_soak           engine=cycle  {} ms", us_cycle / 1000);
    println!("noc_soak           engine=event  {} ms", us_event / 1000);
    println!("noc_soak_speedup   {ratio:.1}x (event over cycle)");
    rows.push(Row {
        bench: "noc_soak",
        engine: "cycle",
        jobs: 1,
        wall_ms: us_cycle / 1000,
    });
    rows.push(Row {
        bench: "noc_soak",
        engine: "event",
        jobs: 1,
        wall_ms: us_event / 1000,
    });

    // Jobs sweep: chaos soak, cycle-exact serial reference vs the event
    // engine at jobs ∈ {1, 2}.
    let (chaos_ref, wall_ms) = chaos_soak(false, 1);
    println!("chaos_soak_40      engine=cycle jobs=1  {wall_ms} ms");
    rows.push(Row {
        bench: "chaos_soak_40",
        engine: "cycle",
        jobs: 1,
        wall_ms,
    });
    for jobs in [1usize, 2] {
        let (report, wall_ms) = chaos_soak(true, jobs);
        assert_eq!(
            report, chaos_ref,
            "event-engine chaos report diverged at jobs={jobs}"
        );
        println!("chaos_soak_40      engine=event jobs={jobs}  {wall_ms} ms");
        rows.push(Row {
            bench: "chaos_soak_40",
            engine: "event",
            jobs,
            wall_ms,
        });
    }

    let mut body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"schema\": 1, \"bench\": \"{}\", \"engine\": \"{}\", \"jobs\": {}, \"wall_ms\": {}}}",
                r.bench, r.engine, r.jobs, r.wall_ms
            )
        })
        .collect();
    body.push(format!(
        "  {{\"schema\": 1, \"bench\": \"noc_soak_speedup\", \"engine\": \"event\", \"jobs\": 1, \"speedup\": {ratio:.2}}}"
    ));
    std::fs::write(&out, format!("[\n{}\n]\n", body.join(",\n"))).expect("write bench artifact");
    println!("wrote {out} (event results bit-identical to cycle-exact)");

    if let Some(min) = min_ratio {
        if ratio < min {
            eprintln!(
                "bench_noc: event-engine soak speedup {ratio:.2}x is below the required {min}x — \
                 the idle-tick fix has regressed"
            );
            std::process::exit(1);
        }
        println!("speedup gate: {ratio:.1}x >= required {min}x");
    }
}
