//! Extension experiment: the slice-contention covert channel the paper's
//! Section V-A sketches, built on placement knowledge from Implication #1.

use gnoc_bench::{compare, header};
use gnoc_core::sidechannel::covert::{
    bits_of, bytes_of, channel_snr, transmit, CovertChannelConfig,
};
use gnoc_core::{GpuDevice, SliceId};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Extension — L2-slice contention covert channel (A100)",
        "placement-aware co-location yields a clean channel; naive far \
         placement degrades SNR (Section V-A)",
    );
    let mut dev = GpuDevice::a100(0);
    let slice = SliceId::new(5);

    // Two transmitter SMs: enough for a clear dip when co-located, but not
    // enough to saturate the slice from the far partition.
    let near = CovertChannelConfig::colocated(&dev, slice, 2);
    let far = CovertChannelConfig::far(&dev, slice, 2);
    let snr_near = channel_snr(&mut dev, &near);
    let snr_far = channel_snr(&mut dev, &far);
    compare("SNR, placement-aware TX", "high", format!("{snr_near:.1}"));
    compare("SNR, naive far TX", "lower", format!("{snr_far:.1}"));

    let payload = bits_of(b"MICRO24");
    let tx = CovertChannelConfig::colocated(&dev, slice, 6);
    let r = transmit(&mut dev, &tx, &payload);
    println!(
        "\ntransmitted {:?} over {} bits: BER {:.3}, decoded {:?}",
        "MICRO24",
        payload.len(),
        r.ber,
        String::from_utf8_lossy(&bytes_of(&r.received)),
    );
    println!(
        "raw symbol rate {:.0} kb/s, effective capacity {:.0} kb/s",
        r.raw_bits_per_sec / 1e3,
        r.capacity_bits_per_sec() / 1e3
    );
}
