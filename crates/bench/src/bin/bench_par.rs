//! Serial-vs-parallel wall-time benchmark for the deterministic execution
//! layer (`gnoc-par`).
//!
//! Runs two representative hot paths at `jobs ∈ {1, 4}`:
//!
//! 1. the full A100 row-seeded latency campaign (108 SM rows + the 108×108
//!    correlation matrix), and
//! 2. a 100-seed NoC-only chaos soak with shrinking enabled,
//!
//! asserts the parallel results are bit-identical to serial, and writes the
//! timings as JSON rows `{schema, bench, jobs, wall_ms}` to `BENCH_par.json` (or the
//! path given as the first argument).
//!
//! Wall times are machine-dependent; on a single-core container the jobs=4
//! rows are expected to be no faster than jobs=1 (the scheduler just
//! time-slices the workers) — the artifact still documents that the knob
//! changes wall time only, never results.

use gnoc_chaos::{run_chaos, ChaosConfig, ChaosOptions};
use gnoc_core::telemetry::TelemetryHandle;
use gnoc_core::{LatencyCampaign, LatencyProbe, WorkerPool};
use std::time::Instant;

const JOB_COUNTS: [usize; 2] = [1, 4];

struct Row {
    bench: &'static str,
    jobs: usize,
    wall_ms: u64,
}

fn campaign(jobs: usize) -> (LatencyCampaign, u64) {
    let pool = WorkerPool::new(jobs);
    let start = Instant::now();
    let result = LatencyCampaign::run_par("a100", 42, &LatencyProbe::default(), None, &pool)
        .expect("a100 is a known preset");
    (result, start.elapsed().as_millis() as u64)
}

fn soak(jobs: usize) -> (gnoc_chaos::ChaosReport, u64) {
    let cfg = ChaosConfig {
        device: None, // NoC-only: the device oracles are covered elsewhere
        ..ChaosConfig::default()
    };
    let opts = ChaosOptions {
        seeds: (0..100).collect(),
        shrink: true,
        jobs,
        ..ChaosOptions::default()
    };
    let start = Instant::now();
    let run = run_chaos(&cfg, &opts, &TelemetryHandle::disabled()).expect("soak must not error");
    assert!(run.finished);
    (run.report, start.elapsed().as_millis() as u64)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_par.json".to_string());
    let mut rows: Vec<Row> = Vec::new();

    let (campaign_ref, _) = campaign(1);
    let (soak_ref, _) = soak(1);
    for jobs in JOB_COUNTS {
        let (result, wall_ms) = campaign(jobs);
        assert_eq!(result, campaign_ref, "campaign diverged at jobs={jobs}");
        println!("campaign_a100      jobs={jobs}  {wall_ms} ms");
        rows.push(Row {
            bench: "campaign_a100",
            jobs,
            wall_ms,
        });

        let (report, wall_ms) = soak(jobs);
        assert_eq!(report, soak_ref, "soak report diverged at jobs={jobs}");
        println!("chaos_soak_100     jobs={jobs}  {wall_ms} ms");
        rows.push(Row {
            bench: "chaos_soak_100",
            jobs,
            wall_ms,
        });
    }

    let body = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"schema\": 1, \"bench\": \"{}\", \"jobs\": {}, \"wall_ms\": {}}}",
                r.bench, r.jobs, r.wall_ms
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    std::fs::write(&out, format!("[\n{body}\n]\n")).expect("write benchmark artifact");
    println!("wrote {out} (results bit-identical across all job counts)");
}
