//! Fig. 16: per-slice traffic over time for BFS and Gaussian elimination —
//! volume changes dramatically, the distribution across slices stays flat.

use gnoc_bench::{header, sparkline};
use gnoc_core::workloads::{bfs, gaussian, trace};
use gnoc_core::{render_heatmap, GpuDevice, PartitionId};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 16 — memory traffic per L2 slice over time (V100 hash)",
        "traffic intensity varies over time but stays distributed across all \
         slices (address hashing prevents memory camping)",
    );
    let dev = GpuDevice::v100(0);
    let map = dev.address_map();
    for t in [
        bfs::generate(bfs::BfsConfig::default(), 1),
        gaussian::generate(gaussian::GaussianConfig {
            n: 512,
            step_stride: 16,
        }),
    ] {
        println!("\n--- {} ---", t.name);
        let volume: Vec<f64> = t.volume_profile().iter().map(|&v| v as f64).collect();
        println!("access volume over time: {}", sparkline(&volume));
        let traffic = trace::slice_traffic(&t, map, PartitionId::new(0));
        // Normalise rows so the heatmap shows the *distribution* per step.
        let rows: Vec<Vec<f64>> = traffic
            .iter()
            .filter(|row| row.iter().sum::<f64>() > 0.0)
            .map(|row| {
                let total: f64 = row.iter().sum();
                row.iter().map(|v| v / total).collect()
            })
            .collect();
        println!("per-slice share per step (rows=time, cols=slice):");
        print!("{}", render_heatmap(&rows, 0.0, 2.0 / 32.0, 0));
        let imb = trace::imbalance_per_step(&traffic, 3000.0);
        if let (Some(min), Some(max)) = (
            imb.iter().cloned().reduce(f64::min),
            imb.iter().cloned().reduce(f64::max),
        ) {
            println!("max/mean slice imbalance across busy steps: {min:.2}..{max:.2}");
        }
    }
}
