//! Wall-time benchmark for the `gnoc-serve` daemon engine: cold compute vs
//! content-addressed cache hits, and queue throughput at 1 vs 2 workers.
//!
//! Measures, all through the in-process [`gnoc_serve::Engine`] (no socket,
//! so the numbers are the engine's, not the transport's):
//!
//! 1. `serve_cold` — admitting and executing a fresh mesh-soak job,
//! 2. `serve_cached` — the identical request answered from the cache,
//! 3. `serve_throughput` — draining a batch of 8 distinct soak jobs at
//!    `jobs ∈ {1, 2}`, asserting the payload bytes are identical.
//!
//! Writes JSON rows `{schema, bench, jobs, wall_ms}` to `BENCH_serve.json`
//! (or the path given as the first argument). On a single-core container
//! the jobs=2 row documents worker-count *independence of results*, not a
//! speedup.

use gnoc_core::telemetry::TelemetryHandle;
use gnoc_serve::engine::{Admission, Engine, ServeConfig};
use gnoc_serve::protocol::JobSpec;
use std::path::PathBuf;
use std::time::Instant;

struct Row {
    bench: &'static str,
    jobs: usize,
    wall_ms: u64,
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gnoc-bench-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(seed: u64) -> JobSpec {
    JobSpec::Mesh {
        seed,
        transfers: 400,
        plan: None,
    }
}

/// Admits `specs` and waits for every outcome, returning payloads in order.
fn drain(engine: &Engine, specs: &[JobSpec]) -> Vec<String> {
    let h = engine.handle();
    let rxs: Vec<_> = specs
        .iter()
        .map(|s| match h.admit(1, s) {
            Admission::Enqueued { rx, .. } => rx,
            other => panic!("expected enqueue, got {other:?}"),
        })
        .collect();
    rxs.iter()
        .map(|rx| rx.recv().expect("outcome").result.expect("job ok"))
        .collect()
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let mut rows: Vec<Row> = Vec::new();

    // Cold vs cached: same engine, same request, second admit must hit.
    let engine = Engine::open(
        ServeConfig::new(scratch("cache")),
        TelemetryHandle::disabled(),
    )
    .expect("open engine");
    let start = Instant::now();
    let cold = drain(&engine, &[spec(1)]).remove(0);
    let cold_ms = start.elapsed().as_millis() as u64;
    println!("serve_cold         jobs=1  {cold_ms} ms");
    rows.push(Row {
        bench: "serve_cold",
        jobs: 1,
        wall_ms: cold_ms,
    });

    let start = Instant::now();
    let cached = match engine.handle().admit(1, &spec(1)) {
        Admission::Cached { payload } => payload,
        other => panic!("expected cache hit, got {other:?}"),
    };
    let cached_ms = start.elapsed().as_millis() as u64;
    assert_eq!(cached, cold, "cache hit must return the cold bytes");
    println!("serve_cached       jobs=1  {cached_ms} ms");
    rows.push(Row {
        bench: "serve_cached",
        jobs: 1,
        wall_ms: cached_ms,
    });

    // Throughput at 1 vs 2 workers over distinct jobs (no cache overlap),
    // pinning result identity across worker counts.
    let batch: Vec<JobSpec> = (10..18).map(spec).collect();
    let mut reference: Option<Vec<String>> = None;
    for jobs in [1usize, 2] {
        let mut cfg = ServeConfig::new(scratch(&format!("tp{jobs}")));
        cfg.jobs = jobs;
        let engine = Engine::open(cfg, TelemetryHandle::disabled()).expect("open engine");
        let start = Instant::now();
        let payloads = drain(&engine, &batch);
        let wall_ms = start.elapsed().as_millis() as u64;
        match &reference {
            None => reference = Some(payloads),
            Some(r) => assert_eq!(&payloads, r, "throughput payloads diverged at jobs={jobs}"),
        }
        println!("serve_throughput   jobs={jobs}  {wall_ms} ms");
        rows.push(Row {
            bench: "serve_throughput",
            jobs,
            wall_ms,
        });
    }

    let body = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"schema\": 1, \"bench\": \"{}\", \"jobs\": {}, \"wall_ms\": {}}}",
                r.bench, r.jobs, r.wall_ms
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    std::fs::write(&out, format!("[\n{body}\n]\n")).expect("write benchmark artifact");
    println!("wrote {out} (cached and parallel results bit-identical to cold serial)");
}
