//! Extension: memory-partition structure recovery from bandwidth
//! sub-additivity — the NoC-output counterpart of the Fig. 6 placement
//! recovery.

use gnoc_bench::{compare, header};
use gnoc_core::microbench::mpmap::{infer_mp_groups, pair_subadditivity, score_against_truth};
use gnoc_core::{GpuDevice, MpId, SliceId};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Extension — recovering the slice→MP map from bandwidth contention",
        "same-MP slice pairs share the GPC↔MP port and are sub-additive; \
         clustering sub-additivity recovers the MP structure exactly",
    );
    let dev = GpuDevice::v100(0);
    let h = dev.hierarchy().clone();

    let same = pair_subadditivity(
        &dev,
        h.slices_in_mp(MpId::new(0))[0],
        h.slices_in_mp(MpId::new(0))[1],
    );
    let diff = pair_subadditivity(
        &dev,
        h.slices_in_mp(MpId::new(0))[0],
        h.slices_in_mp(MpId::new(1))[0],
    );
    compare("same-MP pair sub-additivity", "large", format!("{same:.2}"));
    compare("cross-MP pair sub-additivity", "≈0", format!("{diff:.2}"));

    let slices: Vec<SliceId> = SliceId::range(16).collect();
    let labels = infer_mp_groups(&dev, &slices, 0.08);
    let score = score_against_truth(&dev, &slices, &labels);
    println!("\ninferred groups for slices 0..16: {labels:?}");
    println!(
        "true MPs:                         {:?}",
        slices
            .iter()
            .map(|&s| h.slice(s).mp.index())
            .collect::<Vec<_>>()
    );
    compare("Rand index vs ground truth", "1.00", format!("{score:.2}"));
    println!(
        "\nWith the MP map known, an attacker can stage a covert channel at \
         the L2 input (see the covert_channel experiment), and a scheduler \
         can avoid MP camping."
    );
}
