//! Fig. 3: per-MP sorted slice latency for SMs from two GPCs — the sorted
//! slice order is identical across SMs; same-GPC SMs share the whole trend.

use gnoc_bench::header;
use gnoc_core::{analysis, GpuDevice, LatencyProbe, SliceId, SmId};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 3 — latency sorted within each memory partition (V100)",
        "sorted slice order per MP is identical across SMs; same-GPC SMs match",
    );
    let mut dev = GpuDevice::v100(0);
    let probe = LatencyProbe {
        working_set_lines: 4,
        samples: 24,
    };
    let h = dev.hierarchy().clone();
    let group_of: Vec<usize> = (0..32)
        .map(|s| h.slice(SliceId::new(s)).mp.index())
        .collect();

    let sms = [SmId::new(60), SmId::new(24), SmId::new(64), SmId::new(28)];
    let mut orders = Vec::new();
    for sm in sms {
        let profile = probe.sm_profile(&mut dev, sm);
        let order = analysis::sorted_members_by_group(&profile, &group_of, 8);
        println!(
            "{sm} (GPC{}): per-MP slice order (fastest→slowest):",
            h.sm(sm).gpc.index()
        );
        for (mp, members) in order.iter().enumerate() {
            let lat: Vec<String> = members
                .iter()
                .map(|&s| format!("L2S{s}:{:.0}", profile[s]))
                .collect();
            println!("    MP{mp}: {}", lat.join(" "));
        }
        orders.push(order);
    }
    for (a, b) in [(0usize, 1), (0, 2), (0, 3), (2, 3)] {
        println!(
            "order agreement {} vs {}: {:.0}% of MPs",
            sms[a],
            sms[b],
            100.0 * analysis::group_order_agreement(&orders[a], &orders[b])
        );
    }
}
