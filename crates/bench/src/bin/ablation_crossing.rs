//! Ablation: sweep the inter-partition crossing cost and track everything
//! downstream of it — far-partition latency and bandwidth (Figs. 8/12) and
//! the strength of the scheduling defense (Fig. 19).
//!
//! The paper attributes A100's ≈400-cycle far-partition latency, its bimodal
//! bandwidth, and the defense's potency to the central interconnect; this
//! sweep shows all three scale together in the model.

use gnoc_bench::header;
use gnoc_core::engine::Calibration;
use gnoc_core::microbench::bandwidth::cross_flows;
use gnoc_core::{
    run_rsa_attack, AccessKind, CtaScheduler, GpuDevice, GpuSpec, LatencyProbe, PartitionId,
    RsaAttackConfig,
};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Ablation — inter-partition crossing cost sweep (A100 model)",
        "far latency, far bandwidth and the randomised-scheduler RSA weight \
         uncertainty all track the crossing cost",
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>16}",
        "crossing", "far latency", "near BW", "far BW", "RSA ±weight(rand)"
    );
    for crossing in [0.0f64, 40.0, 80.0, 120.0, 160.0] {
        let spec = GpuSpec::a100();
        let mut calib = Calibration::for_spec(&spec);
        calib.partition_crossing_cycles = crossing;
        let mut dev = GpuDevice::with_calibration(spec, calib, 3).expect("valid");

        let h = dev.hierarchy().clone();
        let near_sm = h.sms_in_partition(PartitionId::new(0))[0];
        let near_slice = h.slices_in_partition(PartitionId::new(0))[0];
        let far_slice = h.slices_in_partition(PartitionId::new(1))[0];

        let probe = LatencyProbe::default();
        let far_lat = probe.measure_pair(&mut dev, near_sm, far_slice);
        let near_bw = dev
            .solve_bandwidth(&cross_flows(&[near_sm], &[near_slice], AccessKind::ReadHit))
            .total_gbps;
        let far_bw = dev
            .solve_bandwidth(&cross_flows(&[near_sm], &[far_slice], AccessKind::ReadHit))
            .total_gbps;

        let rsa = run_rsa_attack(
            &dev,
            &RsaAttackConfig {
                samples: 120,
                scheduler: CtaScheduler::RandomSeed,
                ..RsaAttackConfig::default()
            },
            5,
        );
        println!(
            "{:>10.0} {:>12.0} {:>12.1} {:>12.1} {:>16}",
            crossing, far_lat, near_bw, far_bw, rsa.weight_uncertainty
        );
    }
    println!(
        "\nAt crossing = 0 the two partitions merge into one flat die: far \
         latency ≈ near, bandwidth unimodal, and the randomised scheduler \
         loses most of its entropy — the defense works *because* the NoC is \
         non-uniform. Note the non-monotone tail: at very large crossings \
         the same/cross timing clusters separate completely, so pairwise \
         2 %-agreement inversion finds no ambiguous pairs — a smarter \
         attacker could then classify the cluster first, which is why the \
         defense should randomise *within* partitions too."
    );
}
