//! Fig. 5: latency matrix between the SMs of GPC4 and the slices of MP3 on
//! V100 — physically closer (SM, slice) pairs are faster.

use gnoc_bench::{compare, header};
use gnoc_core::{GpcId, GpuDevice, LatencyProbe, MpId};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 5 — GPC4 SMs × MP3 slices (V100)",
        "closest pair ≈180 cycles, farthest ≈217; rows shift, order is stable",
    );
    let mut dev = GpuDevice::v100(0);
    let probe = LatencyProbe {
        working_set_lines: 4,
        samples: 12,
    };
    let h = dev.hierarchy().clone();
    let sms = h.sms_in_gpc(GpcId::new(4)).to_vec();
    let slices = h.slices_in_mp(MpId::new(3)).to_vec();

    print!("{:>8}", "");
    for &s in &slices {
        print!("{:>9}", format!("{s}"));
    }
    println!();
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for &sm in &sms {
        print!("{:>8}", format!("{sm}"));
        for &s in &slices {
            let l = probe.measure_pair(&mut dev, sm, s);
            lo = lo.min(l);
            hi = hi.max(l);
            print!("{l:>9.0}");
        }
        println!();
    }
    compare("fastest pair (cycles)", "≈180", format!("{lo:.0}"));
    compare("slowest pair (cycles)", "≈217", format!("{hi:.0}"));
}
