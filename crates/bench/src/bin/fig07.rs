//! Fig. 7: the H100 CPC hierarchy and SM-to-SM (distributed shared memory)
//! latency per (source CPC, destination CPC) pair.

use gnoc_bench::{compare, header};
use gnoc_core::microbench::sm2sm::cpc_latency_matrix;
use gnoc_core::{GpcId, GpuDevice};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 7 — H100 SM-to-SM latency by CPC pair",
        "lowest ≈196 cycles within CPC0, ≈213 within CPC2; distance-ordered",
    );
    let mut dev = GpuDevice::h100(0);
    let m = cpc_latency_matrix(&mut dev, GpcId::new(0), 8).expect("H100");
    println!("(src CPC, dst CPC) mean latency (cycles):");
    print!("{:>8}", "");
    for j in 0..m.len() {
        print!("{:>10}", format!("CPC{j}"));
    }
    println!();
    for (i, row) in m.iter().enumerate() {
        print!("{:>8}", format!("CPC{i}"));
        for v in row {
            print!("{v:>10.0}");
        }
        println!();
    }
    compare("intra-CPC0 (cycles)", "≈196", format!("{:.0}", m[0][0]));
    compare("intra-CPC2 (cycles)", "≈213", format!("{:.0}", m[2][2]));
}
