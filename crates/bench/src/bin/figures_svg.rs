//! Renders the key reproduced figures as SVG files under `out/` so they can
//! be compared with the paper's plots visually.
//!
//! Produces: fig01 (latency profile), fig06 (Pearson heatmaps), fig14
//! (near/far bandwidth curves), fig21 (utilisation timelines) and fig23
//! (per-node throughput bars).

use gnoc_bench::header;
use gnoc_core::analysis::svg::{self, Series};
use gnoc_core::microbench::bandwidth::sms_to_slice_gbps;
use gnoc_core::noc::{run_fairness, run_memsim, ArbiterKind, FairnessConfig, MemSimConfig};
use gnoc_core::{GpuDevice, LatencyCampaign, LatencyProbe, PartitionId, SmId};
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "SVG artifacts",
        "renders figs 1, 6, 14, 21, 23 as SVG files under out/",
    );
    let out = Path::new("out");
    fs::create_dir_all(out)?;

    // ---- Fig. 1a: SM24 latency profile. -----------------------------------
    let mut dev = GpuDevice::v100(0);
    let probe = LatencyProbe::default();
    let profile = probe.sm_profile(&mut dev, SmId::new(24));
    let fig1 = svg::line_chart(
        "Fig. 1a — V100 SM24 L2 hit latency per slice",
        "L2 slice id",
        "cycles",
        &[Series {
            name: "SM24".into(),
            points: profile
                .iter()
                .enumerate()
                .map(|(i, &l)| (i as f64, l))
                .collect(),
        }],
        720,
        420,
    );
    fs::write(out.join("fig01_latency_profile.svg"), fig1)?;

    // ---- Fig. 6: Pearson heatmaps. -----------------------------------------
    for mut dev in [GpuDevice::v100(6), GpuDevice::a100(6), GpuDevice::h100(6)] {
        let name = dev.spec().name.to_lowercase();
        let campaign = LatencyCampaign::run(
            &mut dev,
            &LatencyProbe {
                working_set_lines: 2,
                samples: 5,
            },
        );
        let h = dev.hierarchy().clone();
        let mut order: Vec<usize> = (0..h.num_sms()).collect();
        order.sort_by_key(|&i| (h.sm(SmId::new(i as u32)).gpc, i));
        let matrix: Vec<Vec<f64>> = order
            .iter()
            .map(|&a| order.iter().map(|&b| campaign.correlation[a][b]).collect())
            .collect();
        let fig = svg::heatmap(
            &format!(
                "Fig. 6 — {} SM latency-profile Pearson correlation",
                dev.spec().name
            ),
            &matrix,
            -1.0,
            1.0,
            640,
            640,
        );
        fs::write(out.join(format!("fig06_heatmap_{name}.svg")), fig)?;
    }

    // ---- Fig. 14: near/far slice bandwidth curves. --------------------------
    let mut dev = GpuDevice::a100(0);
    let h = dev.hierarchy().clone();
    let near_sms = h.sms_in_partition(PartitionId::new(0)).to_vec();
    let far_sms = h.sms_in_partition(PartitionId::new(1)).to_vec();
    let slice = h.slices_in_partition(PartitionId::new(0))[0];
    let counts = [1usize, 2, 3, 4, 6, 8, 12, 16];
    let curve = |dev: &mut GpuDevice, sms: &[SmId]| -> Vec<(f64, f64)> {
        counts
            .iter()
            .map(|&n| (n as f64, sms_to_slice_gbps(dev, &sms[..n], slice)))
            .collect()
    };
    let fig14 = svg::line_chart(
        "Fig. 14 — A100 slice bandwidth vs #SMs (near vs far partition)",
        "SMs driving the slice",
        "GB/s",
        &[
            Series {
                name: "near partition".into(),
                points: curve(&mut dev, &near_sms),
            },
            Series {
                name: "far partition".into(),
                points: curve(&mut dev, &far_sms),
            },
        ],
        720,
        420,
    );
    fs::write(out.join("fig14_littles_law.svg"), fig14)?;

    // ---- Fig. 21: utilisation timelines. ------------------------------------
    let mut series = Vec::new();
    for (name, cfg) in [
        ("under-provisioned", MemSimConfig::underprovisioned()),
        ("provisioned", MemSimConfig::provisioned()),
    ] {
        let r = run_memsim(cfg, 21);
        series.push(Series {
            name: name.into(),
            points: r
                .utilization_timeline
                .iter()
                .enumerate()
                .map(|(i, &u)| (i as f64, 100.0 * u))
                .collect(),
        });
    }
    let fig21 = svg::line_chart(
        "Fig. 21 — memory channel utilisation over time",
        "window",
        "utilisation %",
        &series,
        720,
        420,
    );
    fs::write(out.join("fig21_utilization.svg"), fig21)?;

    // ---- Fig. 23: per-node throughput bars. ---------------------------------
    for arbiter in [ArbiterKind::RoundRobin, ArbiterKind::AgeBased] {
        let r = run_fairness(FairnessConfig::paper(arbiter), 23);
        let bars: Vec<(String, f64)> = r
            .throughput
            .iter()
            .enumerate()
            .map(|(i, &t)| (format!("{}", i + 6), t))
            .collect();
        let fig = svg::bar_chart(
            &format!("Fig. 23 — per-node throughput, {arbiter:?} arbitration"),
            "packets/cycle",
            &bars,
            900,
            420,
        );
        let name = format!("fig23_fairness_{arbiter:?}.svg").to_lowercase();
        fs::write(out.join(name), fig)?;
    }

    for entry in fs::read_dir(out)? {
        let e = entry?;
        println!(
            "wrote {} ({} bytes)",
            e.path().display(),
            e.metadata()?.len()
        );
    }
    Ok(())
}
