//! Fig. 10: interconnect input speedup across GPU generations, for reads and
//! writes, at TPC / CPC / GPC-local / GPC-global level.

use gnoc_bench::header;
use gnoc_core::{input_speedups, AccessKind, GpuDevice};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 10 — interconnect input speedup",
        "TPC reads full (2×) everywhere; V100 TPC writes ≈1.09; GPC_l \
         requires 7/8/9 with ≈50%/…/≈85% achieved (writes); H100 CPC: reads \
         unaffected, writes ≈4.6 of 6",
    );
    println!(
        "{:<7} {:<7} {:>7} {:>9} {:>11} {:>12}",
        "GPU", "kind", "TPC", "CPC", "GPC_local", "GPC_global"
    );
    for dev in [GpuDevice::v100(0), GpuDevice::a100(0), GpuDevice::h100(0)] {
        for (kind, label) in [(AccessKind::ReadHit, "read"), (AccessKind::Write, "write")] {
            let r = input_speedups(&dev, kind);
            println!(
                "{:<7} {:<7} {:>7.2} {:>9} {:>11} {:>12}",
                dev.spec().name,
                label,
                r.tpc,
                r.cpc
                    .map(|c| format!("{c:.1}/{}", r.cpc_sms.unwrap()))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.1}/{}", r.gpc_local, r.gpc_tpcs),
                format!("{:.1}/{}", r.gpc_global, r.gpc_sms),
            );
        }
    }
}
