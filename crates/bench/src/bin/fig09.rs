//! Fig. 9: (a) aggregate L2-fabric vs global-memory bandwidth across GPUs;
//! (b) single-SM→slice bandwidth distribution; (c) single-GPC→slice
//! bandwidth distribution (V100).

use gnoc_bench::{compare, header};
use gnoc_core::microbench::bandwidth::{
    aggregate_fabric_gbps, aggregate_memory_gbps, sms_to_slice_gbps,
};
use gnoc_core::{GpcId, GpuDevice, Histogram, SliceId, SmId, Summary};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 9 — on-chip aggregate and per-slice bandwidth",
        "(a) fabric = 2.4–3.5× memory; memory ≈85–90% of peak. \
         (b) SM→slice ≈34 GB/s σ≈0.15. (c) GPC→slice ≈85 GB/s σ≈0.06",
    );

    println!("(a) aggregates:");
    for mut dev in [GpuDevice::v100(9), GpuDevice::a100(9), GpuDevice::h100(9)] {
        let fabric = aggregate_fabric_gbps(&mut dev);
        let mem = aggregate_memory_gbps(&mut dev);
        println!(
            "    {:<5} L2 fabric {fabric:6.0} GB/s | memory {mem:6.0} GB/s ({:.0}% of peak) | ratio {:.2}x",
            dev.spec().name,
            100.0 * mem / dev.spec().mem_peak_gbps,
            fabric / mem
        );
    }

    let mut dev = GpuDevice::v100(9);
    println!("\n(b) V100 single SM → single slice, all (SM, slice) samples:");
    let samples: Vec<f64> = (0..160)
        .map(|i| {
            sms_to_slice_gbps(
                &mut dev,
                &[SmId::new((i * 7) % 80)],
                SliceId::new((i * 11) % 32),
            )
        })
        .collect();
    let s = Summary::of(&samples);
    compare("    mean (GB/s)", "≈34", format!("{:.1}", s.mean));
    compare("    stddev (GB/s)", "≈0.147", format!("{:.3}", s.stddev));
    print!(
        "{}",
        Histogram::new(&samples, 33.0, 36.0, 12).render_ascii(40)
    );

    println!("\n(c) V100 one GPC → single slice, all (GPC, slice) samples:");
    let h = dev.hierarchy().clone();
    let samples: Vec<f64> = (0..48)
        .map(|i| {
            let sms = h.sms_in_gpc(GpcId::new((i % 6) as u32)).to_vec();
            sms_to_slice_gbps(&mut dev, &sms, SliceId::new(((i * 5) % 32) as u32))
        })
        .collect();
    let s = Summary::of(&samples);
    compare("    mean (GB/s)", "≈85", format!("{:.1}", s.mean));
    compare(
        "    stddev (GB/s)",
        "≈0.06 (tight)",
        format!("{:.3}", s.stddev),
    );
    print!(
        "{}",
        Histogram::new(&samples, 80.0, 90.0, 12).render_ascii(40)
    );
}
