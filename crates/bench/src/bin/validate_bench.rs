//! Schema validator for the benchmark and profile artifacts.
//!
//! Every machine-readable artifact the repo emits carries a `"schema": 1`
//! version field so downstream tooling can detect format drift:
//!
//! - `BENCH_*.json` — arrays of rows, every row tagged;
//! - profile JSONs (`gnoc --profile`, `gnoc profile --report`) — a single
//!   object tagged at the top level.
//!
//! Usage: `validate_bench [FILE...]`. With no arguments it scans the
//! current directory for `BENCH_*.json`. Exits non-zero (and says why) on
//! the first malformed file, so `ci.sh` can gate on it.

use serde::Value;
use std::process::ExitCode;

/// The schema version every current artifact must declare.
const SCHEMA: u64 = 1;

fn check_row(v: &Value, what: &str) -> Result<(), String> {
    match v.field("schema") {
        Ok(Value::U64(n)) if *n == SCHEMA => Ok(()),
        Ok(other) => Err(format!(
            "{what}: \"schema\" is {other:?}, expected {SCHEMA}"
        )),
        Err(_) => Err(format!("{what}: missing \"schema\" field")),
    }
}

fn check_file(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let value: Value = serde_json::from_str(&text).map_err(|e| format!("{path}: {e:?}"))?;
    match &value {
        Value::Array(rows) => {
            if rows.is_empty() {
                return Err(format!("{path}: empty artifact"));
            }
            for (i, row) in rows.iter().enumerate() {
                check_row(row, &format!("{path} row {i}"))?;
            }
            Ok(rows.len())
        }
        Value::Object(_) => {
            check_row(&value, path)?;
            Ok(1)
        }
        _ => Err(format!("{path}: expected a JSON array or object")),
    }
}

fn main() -> ExitCode {
    let mut files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        let mut found: Vec<String> = std::fs::read_dir(".")
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                    .collect()
            })
            .unwrap_or_default();
        found.sort();
        files = found;
    }
    if files.is_empty() {
        eprintln!("validate_bench: no BENCH_*.json artifacts found");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for f in &files {
        match check_file(f) {
            Ok(rows) => println!("{f}: {rows} row(s), schema {SCHEMA}"),
            Err(e) => {
                eprintln!("validate_bench: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
