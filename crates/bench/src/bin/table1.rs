//! Table I: microarchitecture comparison of the three GPUs.

use gnoc_bench::header;
use gnoc_core::GpuSpec;

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Table I",
        "microarchitecture comparison of V100 / A100 / H100",
    );
    let rows: Vec<Vec<(&'static str, String)>> = GpuSpec::paper_presets()
        .iter()
        .map(|s| s.table1_row())
        .collect();
    for i in 0..rows[0].len() {
        let label = rows[0][i].0;
        print!("{label:<22}");
        for row in &rows {
            print!("{:>16}", row[i].1);
        }
        println!();
    }
}
