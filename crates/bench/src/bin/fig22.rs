//! Fig. 22: memory bandwidth vs NoC↔MEM interface bandwidth of prior-work
//! simulation baselines — the "network wall" scatter.

use gnoc_bench::header;
use gnoc_core::noc::priorwork;

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 22 — BW_MEM vs BW_NoC-MEM in prior-work baselines",
        "points below the BW_NoC-MEM = BW_MEM line are interface-bound \
         ('network wall') and can overstate NoC-optimisation gains",
    );
    println!(
        "{:<6} {:<42} {:>9} {:>12}   position",
        "ref", "system", "BW_MEM", "BW_NoC-MEM"
    );
    let mut walled = 0;
    let points = priorwork::dataset();
    for p in &points {
        let wall = p.network_wall();
        walled += usize::from(wall);
        println!(
            "{:<6} {:<42} {:>9.1} {:>12.1}   {}",
            p.name,
            p.system,
            p.mem_bw_gbps,
            p.noc_mem_interface_gbps(),
            if wall {
                "below the line (network wall)"
            } else {
                "above the line"
            },
        );
    }
    println!(
        "\n{walled}/{} surveyed baselines modelled an interface-bound NoC.",
        points.len()
    );
    println!("(Parameters are approximate reconstructions; see module docs.)");
}
