//! Ablation: remove the queueing-delay feedback from the bandwidth model and
//! watch Fig. 14's gradual saturation collapse into a hard kink.
//!
//! DESIGN.md calls out queueing feedback as one of the three mechanisms the
//! fabric model composes; this experiment isolates its contribution.

use gnoc_bench::{header, series};
use gnoc_core::engine::Calibration;
use gnoc_core::microbench::bandwidth::cross_flows;
use gnoc_core::{AccessKind, GpuDevice, GpuSpec, PartitionId, SmId};

fn sweep(dev: &GpuDevice, sms: &[SmId], slice: gnoc_core::SliceId) -> Vec<f64> {
    [1usize, 2, 3, 4, 6, 8]
        .iter()
        .map(|&n| {
            dev.solve_bandwidth(&cross_flows(&sms[..n], &[slice], AccessKind::ReadHit))
                .total_gbps
        })
        .collect()
}

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Ablation — queueing feedback in the fabric model",
        "with queueing: smooth Fig. 14-style saturation; without: a hard kink \
         the moment demand crosses the port capacity",
    );
    let spec = GpuSpec::a100();
    let with_q = GpuDevice::a100(0);
    let mut calib = Calibration::for_spec(&spec);
    calib.slice_queue_cycles = 0.0;
    calib.gpc_port_queue_cycles = 0.0;
    let without_q = GpuDevice::with_calibration(spec, calib, 0).expect("valid");

    let h = with_q.hierarchy().clone();
    let near = h.sms_in_partition(PartitionId::new(0)).to_vec();
    let slice = h.slices_in_partition(PartitionId::new(0))[0];

    let a = sweep(&with_q, &near, slice);
    let b = sweep(&without_q, &near, slice);
    println!("SMs:                 1    2    3    4    6    8");
    println!("with queueing   : {}", series(&a, 1));
    println!("without queueing: {}", series(&b, 1));

    // Quantify the knee sharpness: second difference at the saturation point.
    let knee = |v: &[f64]| (v[1] - v[0]) - (v[3] - v[2]);
    println!(
        "\nknee sharpness (Δ slope around saturation): with {:.1}, without {:.1}",
        knee(&a),
        knee(&b)
    );
    println!(
        "interpretation: queueing feedback spreads the approach to the slice \
         cap across several SM counts, as the paper's measured Fig. 14 shows."
    );
}
