//! Ablation: remove the MP-internal slice service chain and watch the
//! Fig. 3 invariant (identical per-MP slice ordering across SMs) decay.
//!
//! The chain term is the model's explanation for why "some L2 slices always
//! have lower latency" (paper Fig. 5): the ordering is a property of the
//! slice, not of the (SM, slice) geometry.

use gnoc_bench::{compare, header};
use gnoc_core::engine::Calibration;
use gnoc_core::{analysis, GpuDevice, GpuSpec, LatencyProbe, SliceId, SmId};

fn order_agreement(dev: &mut GpuDevice) -> f64 {
    let probe = LatencyProbe {
        working_set_lines: 2,
        samples: 24,
    };
    let h = dev.hierarchy().clone();
    let group_of: Vec<usize> = (0..32)
        .map(|s| h.slice(SliceId::new(s)).mp.index())
        .collect();
    let sms = [SmId::new(60), SmId::new(24), SmId::new(64), SmId::new(28)];
    let orders: Vec<_> = sms
        .iter()
        .map(|&sm| {
            let profile = probe.sm_profile(dev, sm);
            analysis::sorted_members_by_group(&profile, &group_of, 8)
        })
        .collect();
    let mut acc = 0.0;
    let mut n = 0.0;
    for i in 0..orders.len() {
        for j in (i + 1)..orders.len() {
            acc += analysis::group_order_agreement(&orders[i], &orders[j]);
            n += 1.0;
        }
    }
    acc / n
}

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Ablation — the MP-internal slice service chain",
        "with the chain: per-MP slice order identical from every SM (Fig. 3); \
         without it: ordering becomes geometry- and jitter-dependent",
    );
    let spec = GpuSpec::v100();

    let mut with_chain = GpuDevice::v100(7);
    let a = order_agreement(&mut with_chain);

    let mut calib = Calibration::for_spec(&spec);
    calib.slice_chain_cycles = 0.0;
    let mut without_chain = GpuDevice::with_calibration(spec, calib, 7).expect("valid");
    let b = order_agreement(&mut without_chain);

    compare(
        "order agreement with chain",
        "1.00 (Fig. 3)",
        format!("{a:.2}"),
    );
    compare(
        "order agreement without chain",
        "< 1 (unstable)",
        format!("{b:.2}"),
    );
    assert!(a > b, "chain term should stabilise the ordering");
    println!("\nThe chain term is what pins the within-MP order; geometry alone");
    println!("leaves near-ties that jitter and SM position flip.");
}
