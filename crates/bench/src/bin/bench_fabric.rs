//! Cross-device soak benchmark for the multi-GPU fabric (`gnoc-fabric`).
//!
//! Three row families, all over 4-device jobs of 5x5 dies:
//!
//! 1. `soak_<topo>_d4` — fault-free cross-device soak per topology (line,
//!    ring, fully, switch). Reports delivery, mean/max latency, and fabric
//!    hop counts; asserts 100% delivery.
//! 2. `failover_ring_d4` — one fabric link dies mid-traffic (onset 200)
//!    with fault-aware routing: every transfer must still deliver, the
//!    long-way reroute showing up as extra hops and latency.
//! 3. `selfheal_ring_d4` — the same dead link hidden from routing: the
//!    per-link breaker must detect and quarantine it within the same
//!    latency bound the chaos detection oracle enforces (6000 cycles), so
//!    this artifact doubles as a regression tripwire for fabric failover.
//!
//! Rows `{schema, bench, devices, topology, delivered, lost, mean_latency,
//! max_latency, fabric_hops, retries, reroutes, detect_latency, wall_ms}`
//! go to `BENCH_fabric.json` (or the path given as the first argument).
//! Only `wall_ms` is machine-dependent; every other column is
//! deterministic.

use gnoc_core::faults::{FabricLinkFault, LinkFaultKind};
use gnoc_core::noc::{NodeId, PacketClass};
use gnoc_core::{
    FabricConfig, FabricHealthConfig, FabricHealthMonitor, FabricSim, FabricTopology, FaultPlan,
};
use std::time::Instant;

/// Mirrors the chaos detection oracle's fabric-link latency bound.
const DETECT_LATENCY_BOUND: u64 = 6_000;
/// The failover rows' dead link manifests here — mid-traffic for the
/// 256-transfer soak, whose fault-free drain takes ~500 cycles.
const ONSET: u64 = 200;
const DEVICES: u32 = 4;
const TRANSFERS: usize = 256;
const SOAK_BUDGET: u64 = 200_000;

struct Row {
    bench: String,
    topology: FabricTopology,
    delivered: u64,
    lost: u64,
    mean_latency: f64,
    max_latency: u64,
    fabric_hops: u64,
    retries: u64,
    reroutes: u64,
    detect_latency: u64,
    wall_ms: u64,
}

/// The same splitmix64 traffic recipe as `gnoc fabric`: uniform-random
/// device and node endpoints, varied packet lengths, seed-deterministic.
fn submit_traffic(sim: &mut FabricSim, seed: u64) {
    let nodes = 25u64;
    let devs = u64::from(DEVICES);
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut submitted = 0usize;
    while submitted < TRANSFERS {
        let src_dev = (next() % devs) as u32;
        let dst_dev = (next() % devs) as u32;
        let src = (next() % nodes) as u32;
        let dst = (next() % nodes) as u32;
        if src_dev == dst_dev && src == dst {
            continue;
        }
        let flits = 1 + (next() % 4) as u32;
        sim.submit(
            src_dev,
            NodeId(src),
            dst_dev,
            NodeId(dst),
            flits,
            PacketClass::Request,
        )
        .expect("in-range endpoints");
        submitted += 1;
    }
}

fn row_from(bench: String, topology: FabricTopology, sim: &FabricSim, wall_ms: u64) -> Row {
    let s = sim.stats();
    Row {
        bench,
        topology,
        delivered: s.delivered,
        lost: s.lost_total(),
        mean_latency: s.mean_latency(),
        max_latency: s.latency_max,
        fabric_hops: s.fabric_hops,
        retries: s.fabric_retries,
        reroutes: s.reroutes,
        detect_latency: 0,
        wall_ms,
    }
}

fn soak_row(topology: FabricTopology) -> Row {
    let start = Instant::now();
    let mut sim = FabricSim::new(FabricConfig::new(DEVICES, topology)).expect("valid config");
    submit_traffic(&mut sim, 11);
    assert!(sim.run_until_quiescent(SOAK_BUDGET), "benign soak quiesces");
    let wall_ms = start.elapsed().as_millis() as u64;
    let row = row_from(format!("soak_{topology}_d4"), topology, &sim, wall_ms);
    assert_eq!(
        row.lost, 0,
        "benign {topology} soak must deliver everything"
    );
    row
}

/// A ring plan with the 0<->1 fabric link dying at [`ONSET`].
fn dead_link_plan() -> FaultPlan {
    let mut plan = FaultPlan::none();
    plan.fabric.links.push(FabricLinkFault {
        a: 0,
        b: 1,
        kind: LinkFaultKind::Dead,
        onset: ONSET,
    });
    plan
}

fn failover_row() -> Row {
    let topology = FabricTopology::Ring;
    let start = Instant::now();
    let mut sim = FabricSim::with_faults(FabricConfig::new(DEVICES, topology), &dead_link_plan())
        .expect("plan fits the ring");
    submit_traffic(&mut sim, 11);
    assert!(
        sim.run_until_quiescent(SOAK_BUDGET),
        "failover soak quiesces"
    );
    let wall_ms = start.elapsed().as_millis() as u64;
    let row = row_from("failover_ring_d4".to_owned(), topology, &sim, wall_ms);
    assert_eq!(
        row.lost, 0,
        "a ring survives one dead link; everything reroutes the long way"
    );
    assert!(row.reroutes > 0, "the dead link must force a reroute");
    row
}

fn selfheal_row() -> Row {
    let topology = FabricTopology::Ring;
    let start = Instant::now();
    let mut cfg = FabricConfig::new(DEVICES, topology);
    cfg.self_healing = true;
    let mut sim = FabricSim::with_faults(cfg, &dead_link_plan()).expect("plan fits the ring");
    let mut monitor = FabricHealthMonitor::new(&sim, FabricHealthConfig::default());
    monitor.run_detection(&mut sim, ONSET + DETECT_LATENCY_BOUND);
    let wall_ms = start.elapsed().as_millis() as u64;
    let detected = monitor.detected_links(&sim);
    assert!(
        detected.iter().any(|&(a, b, _)| (a, b) == (0, 1)),
        "the breaker must detect the dead 0<->1 link"
    );
    let detect_latency = detected
        .iter()
        .filter(|&&(a, b, _)| (a, b) == (0, 1))
        .map(|&(_, _, at)| at.saturating_sub(ONSET))
        .max()
        .unwrap_or(0);
    assert!(
        detect_latency <= DETECT_LATENCY_BOUND,
        "detection latency {detect_latency} exceeds the oracle bound {DETECT_LATENCY_BOUND}"
    );
    let mut row = row_from("selfheal_ring_d4".to_owned(), topology, &sim, wall_ms);
    row.detect_latency = detect_latency;
    row
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fabric.json".to_string());
    let mut rows = Vec::new();
    for topology in [
        FabricTopology::Line,
        FabricTopology::Ring,
        FabricTopology::FullyConnected,
        FabricTopology::Switch,
    ] {
        rows.push(soak_row(topology));
    }
    rows.push(failover_row());
    rows.push(selfheal_row());

    for r in &rows {
        println!(
            "{:<22} delivered={:<4} lost={:<2} latency mean={:<7.1} max={:<5} hops={:<4} \
             retries={:<4} reroutes={:<3} detect={:<5} {} ms",
            r.bench,
            r.delivered,
            r.lost,
            r.mean_latency,
            r.max_latency,
            r.fabric_hops,
            r.retries,
            r.reroutes,
            r.detect_latency,
            r.wall_ms
        );
    }
    let body = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"schema\": 1, \"bench\": \"{}\", \"devices\": {DEVICES}, \
                 \"topology\": \"{}\", \"delivered\": {}, \"lost\": {}, \
                 \"mean_latency\": {:.3}, \"max_latency\": {}, \"fabric_hops\": {}, \
                 \"retries\": {}, \"reroutes\": {}, \"detect_latency\": {}, \
                 \"wall_ms\": {}}}",
                r.bench,
                r.topology,
                r.delivered,
                r.lost,
                r.mean_latency,
                r.max_latency,
                r.fabric_hops,
                r.retries,
                r.reroutes,
                r.detect_latency,
                r.wall_ms
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    std::fs::write(&out, format!("[\n{body}\n]\n")).expect("write benchmark artifact");
    println!("wrote {out} (failover and detection inside the chaos oracle bounds)");
}
