//! What-if: H100 *without* partition-local L2 caching.
//!
//! Observation #6 credits H100's uniform hit latency to its partition-local
//! cache policy. This experiment builds the counterfactual device — H100's
//! geometry and fabric with A100-style globally shared L2 — and shows the
//! A100 pathologies (≈2× far-partition hit latency, bimodal per-slice
//! bandwidth) reappear, isolating the policy's contribution from the rest of
//! the Hopper design.

use gnoc_bench::{compare, header};
use gnoc_core::microbench::bandwidth::sm_slice_profile_gbps;
use gnoc_core::{
    CachePolicy, GpuDevice, GpuSpec, Histogram, LatencyProbe, PartitionId, SliceId, Summary,
};

fn characterise(dev: &mut GpuDevice) -> (f64, f64, usize) {
    let probe = LatencyProbe {
        working_set_lines: 2,
        samples: 6,
    };
    let h = dev.hierarchy().clone();
    let sm = h.sms_in_partition(PartitionId::new(0))[0];
    // Mean hit latency to near- and far-partition homes. For the
    // partition-local device every hit is near by construction.
    let lat = |slices: &[SliceId], dev: &mut GpuDevice| -> f64 {
        slices
            .iter()
            .map(|&s| probe.measure_pair(dev, sm, s))
            .sum::<f64>()
            / slices.len() as f64
    };
    let near_slices = h.slices_in_partition(PartitionId::new(0))[..4].to_vec();
    let far_slices = h.slices_in_partition(PartitionId::new(1))[..4].to_vec();
    let near = lat(&near_slices, dev);
    let far = if dev.spec().cache_policy == CachePolicy::GloballyShared {
        lat(&far_slices, dev)
    } else {
        near // hits never leave the partition
    };
    let profile = sm_slice_profile_gbps(dev, sm);
    let peaks = Histogram::new(&profile, 15.0, 70.0, 25).peak_count(0.2);
    (near, far, peaks)
}

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "What-if — H100 with a globally shared L2",
        "removing partition-local caching re-introduces the A100 pathologies: \
         ≈2x far-partition hit latency and bimodal per-slice bandwidth",
    );
    let mut real = GpuDevice::h100(0);
    let (near, far, peaks) = characterise(&mut real);
    println!("H100 (real, partition-local L2):");
    compare(
        "  near-hit latency (cycles)",
        "uniform",
        format!("{near:.0}"),
    );
    compare(
        "  far-hit latency (cycles)",
        "n/a (always local)",
        format!("{far:.0}"),
    );
    compare("  per-slice BW peaks", "1", peaks.to_string());

    let mut spec = GpuSpec::h100();
    spec.cache_policy = CachePolicy::GloballyShared;
    spec.name = "H100-globalL2".into();
    let mut counterfactual = GpuDevice::with_seed(spec, 0).expect("valid");
    let (near, far, peaks) = characterise(&mut counterfactual);
    println!("\nH100-globalL2 (counterfactual):");
    compare(
        "  near-hit latency (cycles)",
        "A100-like ≈210",
        format!("{near:.0}"),
    );
    compare(
        "  far-hit latency (cycles)",
        "A100-like ≈400",
        format!("{far:.0}"),
    );
    compare("  per-slice BW peaks", "2 (bimodal)", peaks.to_string());

    let s = Summary::of(&[far - near]);
    println!(
        "\npartition-local caching removes a {:.0}-cycle hit-latency cliff \
         at the cost of duplicating hot lines in both partitions' L2.",
        s.mean
    );
}
