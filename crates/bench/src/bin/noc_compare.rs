//! Extension experiment: load–latency curves of the paper's 2D-mesh baseline
//! vs the hierarchical crossbar real GPUs use (Implication #6).

use gnoc_bench::header;
use gnoc_core::noc::loadcurve::{hier_load_curve, mesh_load_curve, SweepConfig};
use gnoc_core::noc::{ArbiterKind, HierConfig, MeshConfig};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Extension — mesh vs hierarchical crossbar load/latency curves",
        "same 30 terminals and 6 MCs: the crossbar is uniform by construction \
         and reaches saturation with far lower latency",
    );
    let rates = [0.02, 0.05, 0.08, 0.12, 0.16, 0.2, 0.25];
    let sweep = SweepConfig::default();
    let mesh = mesh_load_curve(
        MeshConfig::paper_6x6(ArbiterKind::RoundRobin),
        sweep,
        &rates,
        1,
    );
    let hier = hier_load_curve(HierConfig::gpu_like(), sweep, &rates, 1);

    println!(
        "{:>9} | {:>14} {:>14} | {:>14} {:>14}",
        "offered", "mesh accepted", "mesh latency", "xbar accepted", "xbar latency"
    );
    for (m, x) in mesh.iter().zip(&hier) {
        println!(
            "{:>9.2} | {:>14.2} {:>14.1} | {:>14.2} {:>14.1}",
            m.offered, m.accepted, m.mean_latency, x.accepted, x.mean_latency
        );
    }
    println!(
        "\nThe mesh's multi-hop path and merge contention inflate latency well \
         before saturation; the two-stage crossbar stays near its unloaded \
         latency until the outputs themselves saturate — with no per-node \
         placement unfairness (see fig23 for the fairness contrast)."
    );
}
