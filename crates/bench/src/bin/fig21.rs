//! Fig. 21: simulated memory-channel utilisation over time when the reply
//! NoC↔MEM interface is the bottleneck, vs a provisioned interface.

use gnoc_bench::{compare, header, sparkline};
use gnoc_core::noc::{run_memsim, run_memsim_shared, run_memsim_traced, MemSimConfig};

fn main() {
    let metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 21 — memory-channel utilisation fluctuation (cycle-level sim)",
        "reply-interface bottleneck: channel reaches 100% briefly but \
         averages ≈20%; provisioning the interface sustains it",
    );
    for (label, cfg) in [
        (
            "under-provisioned reply interface (prior-work model)",
            MemSimConfig::underprovisioned(),
        ),
        (
            "provisioned reply interface (real-GPU behaviour)",
            MemSimConfig::provisioned(),
        ),
    ] {
        let r = run_memsim_traced(cfg, 21, metrics.handle().clone());
        println!("\n{label}:");
        println!(
            "  channel-0 utilisation over time: {}",
            sparkline(&r.utilization_timeline)
        );
        let max = r
            .utilization_timeline
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        println!(
            "  mean {:.0}%  peak {:.0}%  replies delivered {}",
            100.0 * r.mean_utilization,
            100.0 * max,
            r.replies_delivered
        );
    }
    let under = run_memsim(MemSimConfig::underprovisioned(), 21);
    compare(
        "under-provisioned mean utilisation",
        "≈20%",
        format!("{:.0}%", 100.0 * under.mean_utilization),
    );

    // Extension: one physical network with 2 VCs instead of two networks.
    let shared = run_memsim_shared(MemSimConfig::provisioned(), 21);
    println!(
        "\nextension — single shared network (2 VCs, provisioned): mean {:.0}% \
         (shared links make replies steal request bandwidth)",
        100.0 * shared.mean_utilization
    );
}
