//! Detection-latency and recovery-cost benchmark for the self-healing layer
//! (`gnoc-health`).
//!
//! Every run hides the fault plan from routing (self-healing mode) and lets
//! the health monitors infer faults from behavioral telemetry alone:
//!
//! 1. `link_detect_fXX` — a 6x6 mesh with a dead-link fraction of XX%, all
//!    faults onsetting at cycle 1000. Reports the worst first-open latency
//!    (cycles from onset to the breaker opening) across all dead links plus
//!    the recovery cost (retransmissions spent, route-table rebuilds).
//! 2. `slice_detect_v100` — a V100 device with two latent dead L2 slices.
//!    Reports the worst first-open latency in health *windows*.
//!
//! Latencies are asserted against the same bounds the chaos detection oracle
//! enforces (6000 cycles / 3 windows), so this artifact doubles as a
//! regression tripwire: a slower detector fails the bench before it fails
//! the soak. Rows `{schema, bench, faults, latency, retries, reroutes, wall_ms}` go
//! to `BENCH_health.json` (or the path given as the first argument). Only
//! `wall_ms` is machine-dependent; every other column is deterministic.

use gnoc_core::health::run_slice_detection_for_spec;
use gnoc_core::noc::RouteOrder;
use gnoc_core::{
    spec_for_preset, ArbiterKind, FaultGenConfig, FaultPlan, HealthConfig, MeshConfig, RetryConfig,
    SelfHealingMesh,
};
use std::time::Instant;

/// Mirrors the chaos detection oracle's link-latency bound.
const LINK_LATENCY_BOUND: u64 = 6_000;
/// Mirrors the chaos detection oracle's slice-window bound.
const SLICE_WINDOW_BOUND: u64 = 3;
/// All injected faults onset here, so latency = first_open - ONSET.
const ONSET: u64 = 1_000;

struct Row {
    bench: String,
    faults: usize,
    latency: u64,
    retries: u64,
    reroutes: u64,
    wall_ms: u64,
}

fn link_row(dead_frac: f64) -> Row {
    let cfg = FaultGenConfig {
        dead_link_fraction: dead_frac,
        onset: ONSET,
        ..FaultGenConfig::benign(7, 6, 6)
    };
    let plan = FaultPlan::try_generate(&cfg).expect("benign-derived config is valid");
    let mesh_cfg = MeshConfig {
        width: 6,
        height: 6,
        buffer_packets: 4,
        arbiter: ArbiterKind::RoundRobin,
        route_order: RouteOrder::Xy,
        vcs: 1,
    };
    let start = Instant::now();
    let mut healer = SelfHealingMesh::new(
        mesh_cfg,
        &plan,
        RetryConfig::default(),
        HealthConfig::default(),
    )
    .expect("plan fits the mesh");
    healer
        .run_detection(ONSET + LINK_LATENCY_BOUND)
        .expect("detection run");
    let wall_ms = start.elapsed().as_millis() as u64;

    let detected = healer.detected_links();
    assert_eq!(
        detected.len(),
        plan.links.len(),
        "every dead link must be detected (recall 1.0)"
    );
    let latency = detected
        .iter()
        .map(|&(_, _, at)| at - ONSET)
        .max()
        .unwrap_or(0);
    assert!(
        latency <= LINK_LATENCY_BOUND,
        "detection latency {latency} exceeds the oracle bound {LINK_LATENCY_BOUND}"
    );
    let report = healer.report();
    Row {
        bench: format!("link_detect_f{:02}", (dead_frac * 100.0) as u32),
        faults: plan.links.len(),
        latency,
        retries: report.retries,
        reroutes: report.reroutes,
        wall_ms,
    }
}

fn slice_row() -> Row {
    let spec = spec_for_preset("v100").expect("v100 preset");
    let num_slices = spec.hierarchy().num_slices() as u32;
    let mut plan = FaultPlan::none();
    plan.disabled_slices = vec![1, num_slices - 2];
    let start = Instant::now();
    let (_dev, monitor) = run_slice_detection_for_spec(spec, &plan, 7, HealthConfig::default(), 16)
        .expect("latent-fault device");
    let wall_ms = start.elapsed().as_millis() as u64;

    let found = monitor.detected_slices();
    assert_eq!(found.len(), 2, "both dead slices must be detected");
    let latency = found.iter().map(|&(_, w)| w).max().unwrap_or(0);
    assert!(
        latency <= SLICE_WINDOW_BOUND,
        "slice detection took {latency} windows, bound is {SLICE_WINDOW_BOUND}"
    );
    Row {
        bench: "slice_detect_v100".to_owned(),
        faults: 2,
        latency,
        retries: 0,
        reroutes: 0,
        wall_ms,
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_health.json".to_string());
    let mut rows = Vec::new();
    for dead_frac in [0.05, 0.10, 0.20] {
        rows.push(link_row(dead_frac));
    }
    rows.push(slice_row());

    for r in &rows {
        println!(
            "{:<18} faults={:<3} latency={:<5} retries={:<5} reroutes={:<3} {} ms",
            r.bench, r.faults, r.latency, r.retries, r.reroutes, r.wall_ms
        );
    }
    let body = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"schema\": 1, \"bench\": \"{}\", \"faults\": {}, \"latency\": {}, \
                 \"retries\": {}, \"reroutes\": {}, \"wall_ms\": {}}}",
                r.bench, r.faults, r.latency, r.retries, r.reroutes, r.wall_ms
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    std::fs::write(&out, format!("[\n{body}\n]\n")).expect("write benchmark artifact");
    println!("wrote {out} (latencies inside the chaos oracle bounds)");
}
