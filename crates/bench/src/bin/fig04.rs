//! Fig. 4: the approximate logical floorplan of the V100 die.

use gnoc_bench::header;
use gnoc_core::GpuSpec;

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 4 — approximate logical floorplan (V100)",
        "two rows of GPCs at the die edges, L2 slices/MPs in the central band",
    );
    let spec = GpuSpec::v100();
    let h = spec.hierarchy();
    let fp = spec.floorplan();
    print!("{}", fp.render_ascii(&h, 100, 28));
    println!();
    for g in 0..h.num_gpcs() {
        let r = fp.gpc_rect(gnoc_core::GpcId::new(g as u32));
        println!(
            "GPC{g}: x {:5.1}..{:5.1} mm, y {:5.1}..{:5.1} mm",
            r.min.x, r.max.x, r.min.y, r.max.y
        );
    }
    for m in 0..h.num_mps() {
        let r = fp.mp_rect(gnoc_core::MpId::new(m as u32));
        println!(
            "MP{m}:  x {:5.1}..{:5.1} mm (central band)",
            r.min.x, r.max.x
        );
    }
}
