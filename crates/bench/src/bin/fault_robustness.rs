//! Headline robustness experiment: graceful degradation under real-world
//! faults.
//!
//! Part 1 — floorsweeping. The shipping A100 is a 128-SM die with 20 SMs
//! fused off (Table I); we measure the latency campaign and aggregate
//! bandwidth on the pristine full die and on the floor-swept product
//! configuration, showing the product die keeps the paper-calibrated
//! latency band.
//!
//! Part 2 — link faults. A 6x6 mesh with 1–5% of its links dead reroutes
//! around the holes (deadlock-free up*/down* next-hop tables) while the
//! ACK/NACK retry layer re-sends anything a fault eats; we quantify the
//! retry-induced tail (p50/p99/max) against the fault-free baseline.

use gnoc_bench::header;
use gnoc_core::microbench::bandwidth::{aggregate_fabric_gbps, aggregate_memory_gbps};
use gnoc_core::noc::{ArbiterKind, MeshConfig, NodeId, PacketClass, ReliableMesh, RetryConfig};
use gnoc_core::{device_for_preset, CheckpointedCampaign, FaultGenConfig, FaultPlan, LatencyProbe};

/// splitmix64 step — a tiny deterministic traffic stream.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn main() {
    let metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Extension — fault injection and graceful degradation",
        "floor-swept dies keep the calibrated latency band, and a mesh with \
         dead links still delivers everything via reroute + retry, paying \
         only a bounded tail-latency cost",
    );

    // ---- Part 1: pristine full die vs floor-swept product die ----------
    let probe = LatencyProbe {
        working_set_lines: 2,
        samples: 4,
    };
    println!("floorsweeping (A100, Table I: 128-SM die ships with 108 SMs):");
    println!(
        "{:>10} {:>6} {:>8} {:>12} {:>12} {:>12}",
        "device", "SMs", "slices", "lat mean", "fabric GB/s", "mem GB/s"
    );
    for preset in ["a100full", "a100fs"] {
        let mut campaign =
            CheckpointedCampaign::new(preset, 1, probe, None).expect("preset is valid");
        campaign.set_telemetry(metrics.handle().clone());
        let result = campaign
            .run_to_completion(None)
            .expect("campaign on a preset device cannot fail");
        let mut dev = device_for_preset(preset, 1, None).expect("preset is valid");
        println!(
            "{:>10} {:>6} {:>8} {:>12.1} {:>12.0} {:>12.0}",
            preset,
            result.matrix.len(),
            result.matrix[0].len(),
            result.grand_mean(),
            aggregate_fabric_gbps(&mut dev),
            aggregate_memory_gbps(&mut dev),
        );
    }

    // ---- Part 2: dead-link sweep on the 6x6 mesh -----------------------
    const TRANSFERS: usize = 3000;
    println!("\ndead links on the 6x6 mesh ({TRANSFERS} reliable transfers each):");
    println!(
        "{:>10} {:>6} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "dead frac", "links", "delivered", "lost", "retries", "mean", "p50", "p99", "max"
    );
    for dead_frac in [0.0, 0.01, 0.02, 0.05] {
        let plan = FaultPlan::generate(&FaultGenConfig {
            dead_link_fraction: dead_frac,
            ..FaultGenConfig::benign(7, 6, 6)
        });
        let mut rm = ReliableMesh::with_faults(
            MeshConfig::paper_6x6(ArbiterKind::RoundRobin),
            &plan,
            RetryConfig::default(),
        )
        .expect("generated plans validate");
        rm.mesh_mut().set_telemetry(metrics.handle().clone());
        let mut state = 0xfeed_beef_u64;
        let mut submitted = 0;
        while submitted < TRANSFERS {
            let src = (mix(&mut state) % 36) as u32;
            let dst = (mix(&mut state) % 36) as u32;
            if src == dst {
                continue;
            }
            rm.submit(NodeId(src), NodeId(dst), 1, PacketClass::Request);
            submitted += 1;
        }
        assert!(
            rm.run_until_quiescent(5_000_000),
            "degraded mesh must quiesce (watchdog writes off stuck traffic)"
        );
        let s = rm.stats();
        println!(
            "{:>9.0}% {:>6} {:>10} {:>8} {:>8} {:>8.1} {:>8.0} {:>8.0} {:>8}",
            100.0 * dead_frac,
            rm.mesh().dead_links_active(),
            s.delivered,
            s.lost_total(),
            s.retries,
            s.mean_latency(),
            s.latency_quantile(0.50),
            s.latency_quantile(0.99),
            s.latency_max,
        );
        metrics
            .handle()
            .with(|t| rm.export_metrics(&mut t.registry));
    }
    println!(
        "\nDead links bend the tail, not the median: rerouted paths add a few \
         hops (p99 grows with the dead fraction) and the occasional transfer \
         caught in-flight by a link's onset is re-sent after an ACK timeout, \
         but everything still arrives exactly once — the fabric degrades, it \
         does not fail."
    );
}
