//! Fig. 11: the speedup points inside the GPU NoC (block-diagram figure) —
//! rendered as the model's actual capacity hierarchy.

use gnoc_bench::header;
use gnoc_core::{Calibration, GpuSpec};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 11 — where input speedup lives in the NoC (model capacities)",
        "TPC speedup at the SM pair, GPC speedup in time (aggregate) and \
         space (per-MP ports), L2 input speedup at the MP port",
    );
    for spec in GpuSpec::paper_presets() {
        let c = Calibration::for_spec(&spec);
        println!("\n{}:", spec.name);
        println!(
            "  SM read port        {:>7.1} GB/s   (write {:>6.1})",
            c.sm_read_port_gbps, c.sm_write_port_gbps
        );
        println!(
            "  TPC output          {:>7.1} GB/s   (write {:>6.1})  → TPC speedup {:.2}/{:.2}",
            c.tpc_read_speedup * c.sm_read_port_gbps,
            c.tpc_write_speedup * c.sm_write_port_gbps,
            c.tpc_read_speedup,
            c.tpc_write_speedup,
        );
        if c.cpc_read_speedup.is_finite() {
            println!(
                "  CPC output          {:>7.1} GB/s   (write {:>6.1})",
                c.cpc_read_speedup * c.sm_read_port_gbps,
                c.cpc_write_speedup * c.sm_write_port_gbps,
            );
        }
        println!(
            "  GPC per-MP port     {:>7.1} GB/s   × {} MPs (speedup in space)",
            c.gpc_port_gbps, spec.hierarchy.num_mps
        );
        println!(
            "  GPC aggregate       {:>7.1} GB/s   (write {:>6.1}) (speedup in time)",
            c.gpc_total_gbps, c.gpc_total_write_gbps
        );
        println!("  L2 slice            {:>7.1} GB/s", c.slice_gbps);
        println!(
            "  MP input port       {:>7.1} GB/s   (≥ {} slices × slice rate: near-ideal L2 input speedup)",
            c.mp_port_gbps, spec.hierarchy.slices_per_mp
        );
        println!(
            "  DRAM per MP         {:>7.1} GB/s",
            c.dram_gbps_per_mp(&spec)
        );
    }
}
