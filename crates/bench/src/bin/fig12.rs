//! Fig. 12: A100 per-slice bandwidth from SM0 and SM2 — near/far partitions
//! mirror each other.

use gnoc_bench::{compare, header, series};
use gnoc_core::microbench::bandwidth::sm_slice_profile_gbps;
use gnoc_core::{GpuDevice, SmId, Summary};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 12 — A100 per-slice bandwidth from SM0 vs SM2",
        "near ≈39.5 GB/s, far ≈26 GB/s; SM0 and SM2 sit on opposite \
         partitions so their near/far halves swap",
    );
    let mut dev = GpuDevice::a100(0);
    for sm in [SmId::new(0), SmId::new(2)] {
        let p = dev.hierarchy().sm(sm).partition;
        let profile = sm_slice_profile_gbps(&mut dev, sm);
        println!("\n{sm} (partition {}):", p.index());
        println!("  slices 0..39 : {}", series(&profile[..40], 1));
        println!("  slices 40..79: {}", series(&profile[40..], 1));
        let lo = Summary::of(&profile[..40]);
        let hi = Summary::of(&profile[40..]);
        let (near, far) = if lo.mean > hi.mean {
            (lo, hi)
        } else {
            (hi, lo)
        };
        compare(
            "  near-partition mean (GB/s)",
            "≈39.5",
            format!("{:.1}", near.mean),
        );
        compare(
            "  far-partition mean (GB/s)",
            "≈26",
            format!("{:.1}", far.mean),
        );
    }
}
