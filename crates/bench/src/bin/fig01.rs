//! Fig. 1: (a) non-uniform L2 access latency from SM 24 to all 32 L2 slices
//! on V100; (b) average latency and variation within each GPC.

use gnoc_bench::{compare, header, series};
use gnoc_core::{GpcId, GpuDevice, LatencyProbe, SmId, Summary};

fn main() {
    let metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 1 — non-uniform L2 access latency (V100)",
        "SM24→slices spans ≈175..248 cycles, mean ≈212; per-GPC means similar",
    );
    let mut dev = GpuDevice::v100(0);
    dev.set_telemetry(metrics.handle().clone());
    let probe = LatencyProbe::default();

    // (a) one SM's profile across the 32 slices.
    let profile = probe.sm_profile(&mut dev, SmId::new(24));
    println!("(a) SM24 latency per slice id (cycles):");
    println!("    {}", series(&profile, 0));
    let s = Summary::of(&profile);
    compare("min latency (cycles)", "175", format!("{:.0}", s.min));
    compare("max latency (cycles)", "248", format!("{:.0}", s.max));
    compare("mean latency (cycles)", "~212", format!("{:.0}", s.mean));

    // (b) per-GPC average and variation.
    println!("\n(b) per-GPC latency (all SMs of the GPC × all slices):");
    let h = dev.hierarchy().clone();
    for g in 0..6 {
        let mut all = Vec::new();
        for &sm in h.sms_in_gpc(GpcId::new(g)) {
            all.extend(probe.sm_profile(&mut dev, sm));
        }
        let s = Summary::of(&all);
        println!(
            "    GPC{g}: mean {:.0} cycles, sd {:.1}, span {:.0}",
            s.mean,
            s.stddev,
            s.span()
        );
    }
    metrics
        .handle()
        .with(|t| dev.profiler().export_metrics(&mut t.registry));
}
