//! Fig. 18: AES key-recovery correlation per key guess under (a) static and
//! (b) random thread-block scheduling — the first four key bytes, as in the
//! paper.

use gnoc_bench::header;
use gnoc_core::{run_aes_attack, AesAttackConfig, CtaScheduler, GpuDevice};

fn main() {
    let _metrics = gnoc_bench::FigureMetrics::from_args(env!("CARGO_BIN_NAME"));
    header(
        "Fig. 18 — AES last-round key recovery (A100)",
        "(a) static scheduling: the correct byte's correlation peaks; \
         (b) random scheduling: the peak disappears",
    );
    let key = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    for (label, scheduler) in [
        ("(a) static scheduling", CtaScheduler::Static),
        (
            "(b) random thread-block scheduling",
            CtaScheduler::RandomSeed,
        ),
    ] {
        println!("\n{label}:");
        for position in 0..4usize {
            let mut dev = GpuDevice::a100(18);
            let r = run_aes_attack(
                &mut dev,
                &AesAttackConfig {
                    key,
                    samples: 2500,
                    position,
                    scheduler,
                },
                position as u64 + 100,
            );
            let mut order: Vec<usize> = (0..256).collect();
            order.sort_by(|&a, &b| r.correlations[b].partial_cmp(&r.correlations[a]).unwrap());
            let rank = order
                .iter()
                .position(|&g| g == r.true_byte as usize)
                .unwrap()
                + 1;
            println!(
                "  key byte {position}: true 0x{:02x} → corr {:+.3}, rank {rank}/256, best guess 0x{:02x} ({})",
                r.true_byte,
                r.correlations[r.true_byte as usize],
                r.best_guess,
                if r.succeeded() { "RECOVERED" } else { "hidden" },
            );
        }
    }
}
