//! The cycle-level multi-device fabric simulator.

use crate::config::{FabricConfig, FabricError};
use gnoc_faults::{FabricFaults, FaultPlan, LinkFaultKind};
use gnoc_noc::{LossReason, Mesh, NodeId, PacketClass, ReliableMesh, TransferId, TransferOutcome};
use gnoc_telemetry::{FlightRecorder, StallKind, FABRIC_PORT};
use serde::{Deserialize, Serialize};

/// Deterministic splitmix64 stream for fabric-link fault draws. Only
/// probabilistic faults (flaky links) and link probes advance it, so benign
/// plans draw nothing.
#[derive(Debug, Clone)]
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` (53 mantissa bits, same scheme as the rand
    /// shim).
    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

/// Salt xored into the plan seed for the fabric's private RNG stream, so
/// fabric draws never alias the per-die mesh streams.
const FABRIC_RNG_SALT: u64 = 0x6661_6272_6963_5f6c;

/// Handle for one transfer submitted to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FabricTransferId(usize);

impl FabricTransferId {
    /// The transfer's dense index (submission order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One undirected inter-device link with per-direction occupancy.
#[derive(Debug, Clone)]
struct FabricLink {
    a: u32,
    b: u32,
    /// Cycle each direction is busy until (0 = `a→b`, 1 = `b→a`).
    busy_until: [u64; 2],
    dead_onset: Option<u64>,
    /// `(drop_prob, onset)` for a flaky link.
    flaky: Option<(f64, u64)>,
    quarantined: bool,
}

impl FabricLink {
    fn dead_at(&self, cycle: u64) -> bool {
        self.dead_onset.is_some_and(|o| o <= cycle)
    }

    fn flaky_at(&self, cycle: u64) -> Option<f64> {
        self.flaky
            .and_then(|(p, o)| if o <= cycle { Some(p) } else { None })
    }
}

/// Where a fabric transfer currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Leg {
    /// Travelling across the source die towards its egress port.
    SourceDie(TransferId),
    /// At fabric node `at`, becoming actionable at `ready_at`; `attempts`
    /// counts crossing attempts at the current hop.
    Fabric {
        at: u32,
        ready_at: u64,
        attempts: u32,
    },
    /// Travelling across the destination die from its ingress port.
    DestDie(TransferId),
    /// Resolved (delivered or lost).
    Done,
}

#[derive(Debug, Clone)]
struct FabricTransfer {
    src_dev: u32,
    dst_dev: u32,
    dst: NodeId,
    flits: u32,
    class: PacketClass,
    birth: u64,
    leg: Leg,
    state: TransferOutcome,
}

/// Aggregate fabric statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FabricStats {
    /// Transfers submitted (same-device ones included).
    pub submitted: u64,
    /// Submitted transfers whose endpoints are on different devices.
    pub cross_device: u64,
    /// Transfers delivered, each exactly once.
    pub delivered: u64,
    /// Transfers lost because the fabric was severed between their devices
    /// (dead links, a dead switch, or a lost device).
    pub lost_partitioned: u64,
    /// Transfers lost inside a die leg, any die-level reason.
    pub lost_die: u64,
    /// Transfers lost after a fabric hop's crossing-retry budget drained.
    pub lost_fabric_retries: u64,
    /// Transfers written off by the fabric watchdog.
    pub lost_watchdog: u64,
    /// Fabric-link crossing attempts that dropped and were retried.
    pub fabric_retries: u64,
    /// Fabric-link crossings completed.
    pub fabric_hops: u64,
    /// Route-table recomputations that changed at least one route.
    pub reroutes: u64,
    /// Sum of delivered-transfer latencies.
    pub latency_sum: u64,
    /// Worst delivered-transfer latency.
    pub latency_max: u64,
}

impl FabricStats {
    /// Total transfers lost, any reason.
    pub fn lost_total(&self) -> u64 {
        self.lost_partitioned + self.lost_die + self.lost_fabric_retries + self.lost_watchdog
    }

    /// Mean delivered-transfer latency in cycles (0 with no deliveries).
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered as f64
        }
    }
}

/// A multi-device fabric: one [`ReliableMesh`] per device, stepped in
/// lockstep, joined by an inter-device topology with per-link bandwidth
/// modelling, BFS multi-hop routing, and fault-aware failover.
///
/// A cross-device transfer runs source die mesh → egress port (node 0) →
/// fabric hops → ingress port (node 0) → destination die mesh. Every
/// submitted transfer reaches exactly one terminal state, mirroring
/// [`ReliableMesh`]'s contract.
///
/// Everything is deterministic: same config, plan, and submission sequence →
/// bit-identical outcomes and stats. The optional flight recorder observes
/// but cannot influence the simulation, so a profiled run is byte-identical
/// to a bare one.
#[derive(Debug)]
pub struct FabricSim {
    cfg: FabricConfig,
    dies: Vec<ReliableMesh>,
    links: Vec<FabricLink>,
    /// `adj[node]` = `(neighbour, link index)` sorted by neighbour id.
    adj: Vec<Vec<(u32, usize)>>,
    /// `routes[node][dst_device]` = next fabric node, `None` = unreachable.
    routes: Vec<Vec<Option<u32>>>,
    transfers: Vec<FabricTransfer>,
    now: u64,
    rng: SplitMix,
    fabric_faults: FabricFaults,
    /// Sorted distinct fabric fault onsets not yet applied.
    pending_onsets: Vec<u64>,
    device_dead: Vec<bool>,
    switch_dead: bool,
    stats: FabricStats,
    /// Per-link crossing drops, for the health monitor's delta windows.
    link_drops: Vec<u64>,
    outstanding: usize,
    last_progress: u64,
    recorder: Option<Box<FlightRecorder>>,
    /// Workload record tap (`gnoc trace record`): observes every submit,
    /// absent by default. Like the flight recorder it cannot influence the
    /// simulation, so tapped runs stay byte-identical to bare ones.
    trace_tap: Option<Box<gnoc_trace::TraceTap>>,
    #[cfg(feature = "bug-hooks")]
    stuck_crossing_bug: bool,
}

impl FabricSim {
    /// A fault-free fabric.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::Config`] on an invalid configuration.
    pub fn new(cfg: FabricConfig) -> Result<Self, FabricError> {
        Self::with_faults(cfg, &FaultPlan::none())
    }

    /// Builds the fabric and applies `plan`: the per-die portion is applied
    /// to **every** die (with a per-device seed variation so the dies'
    /// probabilistic faults draw independent streams) and the `fabric`
    /// portion drives the inter-device links, switch, and device losses.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::Plan`] when the plan's fabric section does not
    /// fit the topology, and [`FabricError::Noc`] / [`FabricError::Config`]
    /// on invalid die or fabric configuration.
    pub fn with_faults(cfg: FabricConfig, plan: &FaultPlan) -> Result<Self, FabricError> {
        cfg.validate()?;
        plan.validate_for_fabric(cfg.devices, cfg.topology)?;

        let mut dies = Vec::with_capacity(cfg.devices as usize);
        for d in 0..cfg.devices {
            let mut die_plan = plan.clone();
            die_plan.seed = plan
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(d)));
            die_plan.fabric = FabricFaults::default();
            // Note: `cfg.self_healing` governs only *fabric* routing. The
            // dies stay fault-aware — the fabric health monitor watches
            // inter-device links, not die links. The per-die plan is built
            // once and shared into the mesh behind an `Arc` (the seed
            // variation forces one plan per die, but not one per apply).
            dies.push(ReliableMesh::with_faults_shared(
                cfg.mesh,
                std::sync::Arc::new(die_plan),
                cfg.retry,
            )?);
        }

        let node_count = cfg.topology.node_count(cfg.devices) as usize;
        let mut links: Vec<FabricLink> = cfg
            .topology
            .links(cfg.devices)
            .into_iter()
            .map(|(a, b)| FabricLink {
                a,
                b,
                busy_until: [0, 0],
                dead_onset: None,
                flaky: None,
                quarantined: false,
            })
            .collect();
        for f in &plan.fabric.links {
            let pair = (f.a.min(f.b), f.a.max(f.b));
            let link = links
                .iter_mut()
                .find(|l| (l.a, l.b) == pair)
                .expect("validated against topology");
            match f.kind {
                LinkFaultKind::Dead => link.dead_onset = Some(f.onset),
                LinkFaultKind::Flaky { drop_prob } => link.flaky = Some((drop_prob, f.onset)),
            }
        }

        let mut adj = vec![Vec::new(); node_count];
        for (i, l) in links.iter().enumerate() {
            adj[l.a as usize].push((l.b, i));
            adj[l.b as usize].push((l.a, i));
        }
        for n in &mut adj {
            n.sort_unstable();
        }

        let mut pending_onsets: Vec<u64> = plan
            .fabric
            .links
            .iter()
            .map(|l| l.onset)
            .chain(plan.fabric.devices.iter().map(|d| d.onset))
            .chain(plan.fabric.dead_switch)
            .collect();
        pending_onsets.sort_unstable();
        pending_onsets.dedup();

        let link_count = links.len();
        let mut sim = Self {
            dies,
            links,
            adj,
            routes: Vec::new(),
            transfers: Vec::new(),
            now: 0,
            rng: SplitMix(plan.seed ^ FABRIC_RNG_SALT),
            fabric_faults: plan.fabric.clone(),
            pending_onsets,
            device_dead: vec![false; cfg.devices as usize],
            switch_dead: false,
            stats: FabricStats::default(),
            link_drops: vec![0; link_count],
            outstanding: 0,
            last_progress: 0,
            recorder: None,
            trace_tap: None,
            #[cfg(feature = "bug-hooks")]
            stuck_crossing_bug: false,
            cfg,
        };
        sim.recompute_routes(false);
        Ok(sim)
    }

    /// **Test hook (feature `bug-hooks`).** Re-introduces a lost-wakeup
    /// retry bug: a crossing that drops is never rescheduled (its retry
    /// timer parks at the end of time), so the transfer hangs mid-fabric
    /// until the watchdog writes it off. Exists solely so the chaos harness
    /// can prove its fabric progress oracle catches the bug.
    #[cfg(feature = "bug-hooks")]
    pub fn enable_stuck_crossing_bug(&mut self) {
        self.stuck_crossing_bug = true;
    }

    /// The configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Unresolved transfers.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// The per-device dies, in device order.
    pub fn dies(&self) -> &[ReliableMesh] {
        &self.dies
    }

    /// One device's die.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn die(&self, device: u32) -> &ReliableMesh {
        &self.dies[device as usize]
    }

    /// Mutable access to one device's die (telemetry attachment etc.).
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn die_mut(&mut self, device: u32) -> &mut Mesh {
        self.dies[device as usize].mesh_mut()
    }

    /// The fabric's undirected links as `(a, b)` endpoint pairs, in link
    /// index order (the index space [`FabricSim::link_drops`] and the
    /// quarantine calls use).
    pub fn fabric_links(&self) -> Vec<(u32, u32)> {
        self.links.iter().map(|l| (l.a, l.b)).collect()
    }

    /// Per-link crossing-drop counters, by link index.
    pub fn link_drops(&self) -> &[u64] {
        &self.link_drops
    }

    /// Indices of currently-quarantined fabric links.
    pub fn quarantined_fabric_links(&self) -> Vec<usize> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.quarantined)
            .map(|(i, _)| i)
            .collect()
    }

    /// Devices currently dead (a [`gnoc_faults::DeviceFault`] onset passed).
    pub fn dead_devices(&self) -> Vec<u32> {
        self.device_dead
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Attaches a fresh flight recorder capturing every **cross-device**
    /// transfer: its source-die leg becomes `source_wait`, each fabric-link
    /// crossing a hop whose waiting cycles are charged to
    /// [`StallKind::FabricHop`], and the destination-die leg the final hop's
    /// residency. Same-device transfers are not recorded here (attach a
    /// recorder to the die for those). Recording never perturbs the
    /// simulation.
    pub fn attach_flight_recorder(&mut self) {
        self.recorder = Some(Box::default());
    }

    /// The attached recorder, if any.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_deref()
    }

    /// Detaches and returns the recorder.
    pub fn take_flight_recorder(&mut self) -> Option<Box<FlightRecorder>> {
        self.recorder.take()
    }

    /// Attaches a workload record tap: every subsequent [`FabricSim::
    /// submit`] is appended to the trace. The tap observes but cannot
    /// influence the simulation (its I/O errors are stashed sticky), so a
    /// recorded run is byte-identical to an untapped one.
    pub fn attach_trace_tap(&mut self, tap: gnoc_trace::TraceTap) {
        self.trace_tap = Some(Box::new(tap));
    }

    /// The attached workload record tap, if any.
    pub fn trace_tap(&self) -> Option<&gnoc_trace::TraceTap> {
        self.trace_tap.as_deref()
    }

    /// Detaches and returns the workload record tap for finalization.
    pub fn take_trace_tap(&mut self) -> Option<gnoc_trace::TraceTap> {
        self.trace_tap.take().map(|b| *b)
    }

    /// Replays a recorded submission stream into this fabric: every event
    /// is re-submitted in order (stepping the simulation up to the event's
    /// recorded cycle first), reproducing the recorded run bit for bit when
    /// the fabric was built from the trace header's configuration and plan.
    ///
    /// A truncated trace replays its complete prefix and reports the
    /// truncation point in [`gnoc_trace::ReplayOutcome::truncated`]; the
    /// caller decides whether that is a warning or an error.
    ///
    /// # Errors
    ///
    /// [`gnoc_trace::ReplayError::Trace`] on a corrupt or unreadable
    /// stream; [`gnoc_trace::ReplayError::Event`] when a CRC-valid event
    /// does not fit this fabric (device or node out of range) — never a
    /// panic.
    pub fn replay_from<R: std::io::Read>(
        &mut self,
        reader: &mut gnoc_trace::TraceReader<R>,
    ) -> Result<gnoc_trace::ReplayOutcome, gnoc_trace::ReplayError> {
        use gnoc_trace::{ReplayError, ReplayOutcome, TraceError};
        let mut replayed = 0u64;
        loop {
            match reader.next_event() {
                Ok(Some(ev)) => {
                    let class = PacketClass::from_trace_code(ev.class).ok_or_else(|| {
                        ReplayError::Event {
                            index: replayed,
                            reason: format!("unknown packet class {}", ev.class),
                        }
                    })?;
                    while self.now < ev.cycle {
                        self.step();
                    }
                    self.submit(
                        ev.src_dev,
                        NodeId::new(ev.src),
                        ev.dst_dev,
                        NodeId::new(ev.dst),
                        ev.flits,
                        class,
                    )
                    .map_err(|e| ReplayError::Event {
                        index: replayed,
                        reason: e.to_string(),
                    })?;
                    replayed += 1;
                }
                Ok(None) => {
                    return Ok(ReplayOutcome {
                        replayed,
                        truncated: None,
                    })
                }
                Err(TraceError::TruncatedTail { chunk, offset }) => {
                    return Ok(ReplayOutcome {
                        replayed,
                        truncated: Some((chunk, offset)),
                    })
                }
                Err(e) => return Err(ReplayError::Trace(e)),
            }
        }
    }

    /// Submits a transfer from `(src_dev, src)` to `(dst_dev, dst)`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::DeviceOutOfRange`] or [`FabricError::Noc`]
    /// (node out of range) on bad endpoints.
    pub fn submit(
        &mut self,
        src_dev: u32,
        src: NodeId,
        dst_dev: u32,
        dst: NodeId,
        flits: u32,
        class: PacketClass,
    ) -> Result<FabricTransferId, FabricError> {
        for dev in [src_dev, dst_dev] {
            if dev >= self.cfg.devices {
                return Err(FabricError::DeviceOutOfRange {
                    device: dev,
                    devices: self.cfg.devices,
                });
            }
        }
        let nodes = self.cfg.mesh.num_nodes() as u32;
        for node in [src, dst] {
            if node.index() as u32 >= nodes {
                return Err(FabricError::Noc(gnoc_noc::NocError::NodeOutOfRange {
                    node: node.index() as u32,
                    num_nodes: nodes,
                }));
            }
        }

        if let Some(tap) = self.trace_tap.as_deref_mut() {
            tap.record(&gnoc_trace::TraceEvent {
                cycle: self.now,
                src_dev,
                src: src.index() as u32,
                dst_dev,
                dst: dst.index() as u32,
                flits,
                class: class.trace_code(),
            });
        }
        let id = FabricTransferId(self.transfers.len());
        let birth = self.now;
        let cross = src_dev != dst_dev;
        let leg = if !cross {
            // Same-device traffic rides the die directly.
            let tid = self.dies[src_dev as usize].submit(src, dst, flits, class);
            Leg::DestDie(tid)
        } else if src.index() == 0 {
            // Already at the egress port: straight into the fabric. The
            // recorder sees the injection now (source_wait = 0).
            if let Some(rec) = self.recorder.as_deref_mut() {
                rec.on_inject(id.0 as u64, src_dev, dst_dev, flits, birth, birth);
            }
            Leg::Fabric {
                at: src_dev,
                ready_at: birth,
                attempts: 0,
            }
        } else {
            let tid = self.dies[src_dev as usize].submit(src, NodeId::new(0), flits, class);
            Leg::SourceDie(tid)
        };
        self.transfers.push(FabricTransfer {
            src_dev,
            dst_dev,
            dst,
            flits,
            class,
            birth,
            leg,
            state: TransferOutcome::InFlight,
        });
        self.stats.submitted += 1;
        if cross {
            self.stats.cross_device += 1;
        }
        self.outstanding += 1;
        Ok(id)
    }

    /// Current state of a transfer.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this fabric's `submit`.
    pub fn outcome(&self, id: FabricTransferId) -> TransferOutcome {
        self.transfers[id.0].state
    }

    /// All transfer outcomes in submission order.
    pub fn outcomes(&self) -> Vec<TransferOutcome> {
        self.transfers.iter().map(|t| t.state).collect()
    }

    /// Quarantines a fabric link: routing stops using it immediately.
    /// Refused when it would disconnect the fabric's devices from each other
    /// (counting only quarantines — the monitor calling this does not know
    /// the fault plan), so a well-meaning breaker can never partition a
    /// healthy fabric.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::LinkOutOfRange`] for a bad index and
    /// [`FabricError::QuarantineWouldPartition`] on refusal.
    pub fn quarantine_fabric_link(&mut self, index: usize) -> Result<(), FabricError> {
        let links = self.links.len();
        let Some(link) = self.links.get(index) else {
            return Err(FabricError::LinkOutOfRange { index, links });
        };
        if link.quarantined {
            return Ok(());
        }
        let (a, b) = (link.a, link.b);
        let mut dead: Vec<(u32, u32)> = self
            .links
            .iter()
            .filter(|l| l.quarantined)
            .map(|l| (l.a, l.b))
            .collect();
        dead.push((a, b));
        if !gnoc_faults::fabric_connected_with(
            self.cfg.devices,
            self.cfg.topology,
            &dead,
            false,
            &[],
        ) {
            return Err(FabricError::QuarantineWouldPartition { a, b });
        }
        self.links[index].quarantined = true;
        self.recompute_routes(true);
        Ok(())
    }

    /// Releases a quarantined fabric link back into routing.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::LinkOutOfRange`] for a bad index.
    pub fn release_fabric_link(&mut self, index: usize) -> Result<(), FabricError> {
        let links = self.links.len();
        let Some(link) = self.links.get_mut(index) else {
            return Err(FabricError::LinkOutOfRange { index, links });
        };
        if link.quarantined {
            link.quarantined = false;
            self.recompute_routes(true);
        }
        Ok(())
    }

    /// Sends one probe flit across a fabric link and reports whether it
    /// survived: `false` on a (physically) dead link, a flaky draw, or a
    /// dead endpoint. Deterministic given the RNG stream position.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::LinkOutOfRange`] for a bad index.
    pub fn probe_fabric_link(&mut self, index: usize) -> Result<bool, FabricError> {
        let links = self.links.len();
        let Some(link) = self.links.get(index) else {
            return Err(FabricError::LinkOutOfRange { index, links });
        };
        if link.dead_at(self.now) || !self.node_alive(link.a) || !self.node_alive(link.b) {
            return Ok(false);
        }
        if let Some(p) = link.flaky_at(self.now) {
            return Ok(self.rng.next_f64() >= p);
        }
        Ok(true)
    }

    /// Whether fabric node `n` (device or switch) is currently alive.
    fn node_alive(&self, n: u32) -> bool {
        if n < self.cfg.devices {
            !self.device_dead[n as usize]
        } else {
            !self.switch_dead
        }
    }

    /// The links routing must avoid: quarantined ones always; physically
    /// dead ones only in fault-aware mode (self-healing routing has to
    /// *discover* deadness through the health monitor).
    fn routing_dead_link(&self, l: &FabricLink) -> bool {
        l.quarantined || (!self.cfg.self_healing && l.dead_at(self.now))
    }

    fn routing_node_alive(&self, n: u32) -> bool {
        if self.cfg.self_healing {
            true
        } else {
            self.node_alive(n)
        }
    }

    /// Recomputes the per-destination BFS route tables over the currently
    /// usable fabric graph. Next hops tie-break on the lowest neighbour id,
    /// so the tables are a pure function of the usable graph. The resulting
    /// per-destination trees are loops-free by construction, which (with
    /// unbounded fabric receive queues) is the fabric's deadlock-freedom
    /// argument — the inter-device analogue of the die's up*/down* rule
    /// (see DESIGN.md).
    fn recompute_routes(&mut self, count_reroute: bool) {
        let nodes = self.adj.len();
        let devices = self.cfg.devices as usize;
        let mut routes = vec![vec![None; devices]; nodes];
        for dst in 0..devices {
            if !self.routing_node_alive(dst as u32) {
                continue;
            }
            // BFS distance field from the destination device.
            let mut dist = vec![u32::MAX; nodes];
            dist[dst] = 0;
            let mut queue = std::collections::VecDeque::from([dst as u32]);
            while let Some(u) = queue.pop_front() {
                for &(v, li) in &self.adj[u as usize] {
                    if self.routing_dead_link(&self.links[li]) || !self.routing_node_alive(v) {
                        continue;
                    }
                    if dist[v as usize] == u32::MAX {
                        dist[v as usize] = dist[u as usize] + 1;
                        queue.push_back(v);
                    }
                }
            }
            for n in 0..nodes {
                if n == dst || dist[n] == u32::MAX {
                    continue;
                }
                // Lowest-id neighbour strictly closer to the destination.
                routes[n][dst] = self.adj[n]
                    .iter()
                    .find(|&&(v, li)| {
                        !self.routing_dead_link(&self.links[li]) && dist[v as usize] == dist[n] - 1
                    })
                    .map(|&(v, _)| v);
            }
        }
        if count_reroute && routes != self.routes {
            self.stats.reroutes += 1;
        }
        self.routes = routes;
    }

    /// Applies fabric fault onsets due at `now`: marks devices/switch dead,
    /// writes off transfers stranded on dead devices as
    /// [`LossReason::Partitioned`], and (in fault-aware mode) recomputes the
    /// routes so failover starts the same cycle.
    fn apply_onsets(&mut self, now: u64) {
        if self.pending_onsets.first().is_none_or(|&o| o > now) {
            return;
        }
        self.pending_onsets.retain(|&o| o > now);

        let newly_dead_devices: Vec<u32> = self
            .fabric_faults
            .devices
            .iter()
            .filter(|d| d.onset <= now && !self.device_dead[d.device as usize])
            .map(|d| d.device)
            .collect();
        for &d in &newly_dead_devices {
            self.device_dead[d as usize] = true;
        }
        if self.fabric_faults.dead_switch.is_some_and(|o| o <= now) {
            self.switch_dead = true;
        }

        // Strand transfers on newly-dead devices (either endpoint, or
        // sitting mid-fabric at a node that just died).
        for idx in 0..self.transfers.len() {
            let t = &self.transfers[idx];
            if t.state.is_resolved() {
                continue;
            }
            let at_dead_node = match t.leg {
                Leg::Fabric { at, .. } => !self.node_alive(at),
                _ => false,
            };
            if at_dead_node
                || self.device_dead[t.src_dev as usize]
                || self.device_dead[t.dst_dev as usize]
            {
                self.resolve_lost(idx, LossReason::Partitioned, now);
            }
        }

        // Fault-aware routing reacts at onset; self-healing routing stays
        // blind until the monitor quarantines.
        if !self.cfg.self_healing {
            self.recompute_routes(true);
        }
    }

    fn resolve_lost(&mut self, idx: usize, reason: LossReason, now: u64) {
        let t = &mut self.transfers[idx];
        if t.state.is_resolved() {
            return;
        }
        t.state = TransferOutcome::Lost { reason };
        t.leg = Leg::Done;
        match reason {
            LossReason::Partitioned => self.stats.lost_partitioned += 1,
            LossReason::RetriesExhausted => self.stats.lost_fabric_retries += 1,
            LossReason::Watchdog => self.stats.lost_watchdog += 1,
            _ => self.stats.lost_die += 1,
        }
        self.outstanding -= 1;
        self.last_progress = now;
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.on_lost(idx as u64, now, &format!("{reason:?}"));
        }
    }

    fn resolve_die_lost(&mut self, idx: usize, reason: LossReason, now: u64) {
        let t = &mut self.transfers[idx];
        if t.state.is_resolved() {
            return;
        }
        t.state = TransferOutcome::Lost { reason };
        t.leg = Leg::Done;
        self.stats.lost_die += 1;
        self.outstanding -= 1;
        self.last_progress = now;
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.on_lost(idx as u64, now, &format!("{reason:?}"));
        }
    }

    fn resolve_delivered(&mut self, idx: usize, now: u64) {
        let t = &mut self.transfers[idx];
        let latency = now - t.birth;
        t.state = TransferOutcome::Delivered { latency };
        t.leg = Leg::Done;
        self.stats.delivered += 1;
        self.stats.latency_sum += latency;
        if latency > self.stats.latency_max {
            self.stats.latency_max = latency;
        }
        self.outstanding -= 1;
        self.last_progress = now;
    }

    /// One poll of transfer `idx` at cycle `now`. Returns `true` if the
    /// transfer should be polled again this cycle (a leg transition that can
    /// make progress immediately).
    fn poll_transfer(&mut self, idx: usize, now: u64) -> bool {
        let leg = self.transfers[idx].leg;
        match leg {
            Leg::Done => false,
            Leg::SourceDie(tid) => {
                let dev = self.transfers[idx].src_dev;
                match self.dies[dev as usize].outcome(tid) {
                    TransferOutcome::Delivered { .. } => {
                        // Reached the egress port: enter the fabric.
                        let t = &self.transfers[idx];
                        let (src_dev, dst_dev, flits, birth) =
                            (t.src_dev, t.dst_dev, t.flits, t.birth);
                        if let Some(rec) = self.recorder.as_deref_mut() {
                            rec.on_inject(idx as u64, src_dev, dst_dev, flits, birth, now);
                        }
                        self.transfers[idx].leg = Leg::Fabric {
                            at: src_dev,
                            ready_at: now,
                            attempts: 0,
                        };
                        self.last_progress = now;
                        true
                    }
                    TransferOutcome::Lost { reason } => {
                        self.resolve_die_lost(idx, reason, now);
                        false
                    }
                    _ => false,
                }
            }
            Leg::Fabric {
                at,
                ready_at,
                attempts,
            } => {
                if now < ready_at {
                    if let Some(rec) = self.recorder.as_deref_mut() {
                        rec.charge(idx as u64, StallKind::FabricHop);
                    }
                    return false;
                }
                let dst_dev = self.transfers[idx].dst_dev;
                if at == dst_dev {
                    // Ingress: hand over to the destination die.
                    let t = &self.transfers[idx];
                    let (dst, flits, class) = (t.dst, t.flits, t.class);
                    if dst.index() == 0 {
                        // Already at the ingress port: delivered.
                        if let Some(rec) = self.recorder.as_deref_mut() {
                            rec.on_grant(idx as u64, 0, now);
                            rec.on_deliver(idx as u64, now);
                        }
                        self.resolve_delivered(idx, now);
                        return false;
                    }
                    let tid = self.dies[dst_dev as usize].submit(NodeId::new(0), dst, flits, class);
                    self.transfers[idx].leg = Leg::DestDie(tid);
                    self.last_progress = now;
                    if let Some(rec) = self.recorder.as_deref_mut() {
                        rec.charge(idx as u64, StallKind::FabricHop);
                    }
                    return false;
                }
                // Route one hop.
                let Some(next) = self.routes[at as usize][dst_dev as usize] else {
                    self.resolve_lost(idx, LossReason::Partitioned, now);
                    return false;
                };
                let li = self.adj[at as usize]
                    .iter()
                    .find(|&&(v, _)| v == next)
                    .map(|&(_, li)| li)
                    .expect("route follows an adjacency edge");
                let link = &self.links[li];
                if link.quarantined {
                    // Stale route (recompute is pending this cycle ordering)
                    // — treat as a blocked cycle; the fresh table is used on
                    // the next poll.
                    if let Some(rec) = self.recorder.as_deref_mut() {
                        rec.charge(idx as u64, StallKind::FabricHop);
                    }
                    return false;
                }
                let dir = usize::from(at != link.a);
                if link.busy_until[dir] > now {
                    // The link is serializing an earlier packet.
                    if let Some(rec) = self.recorder.as_deref_mut() {
                        rec.charge(idx as u64, StallKind::FabricHop);
                    }
                    return false;
                }
                // Attempt the crossing. Drops (dead or flaky link) are
                // caught by the link-level check immediately; the packet
                // retries from this node after a backoff, which keeps a
                // dead link's drop rate visible to the health monitor for
                // long enough that breaker failover beats the retry budget.
                let flits = self.transfers[idx].flits;
                let dead = link.dead_at(now) || !self.node_alive(next);
                let flaky_drop = match link.flaky_at(now) {
                    Some(p) if !dead => self.rng.next_f64() < p,
                    _ => false,
                };
                if dead || flaky_drop {
                    self.link_drops[li] += 1;
                    self.stats.fabric_retries += 1;
                    if let Some(rec) = self.recorder.as_deref_mut() {
                        rec.charge(idx as u64, StallKind::FabricHop);
                    }
                    if attempts + 1 > self.cfg.max_hop_retries {
                        self.resolve_lost(idx, LossReason::RetriesExhausted, now);
                    } else {
                        #[allow(unused_mut)]
                        let mut backoff = self.cfg.hop_retry_backoff_cycles;
                        #[cfg(feature = "bug-hooks")]
                        if self.stuck_crossing_bug {
                            backoff = u64::MAX;
                        }
                        self.transfers[idx].leg = Leg::Fabric {
                            at,
                            ready_at: now.saturating_add(backoff),
                            attempts: attempts + 1,
                        };
                    }
                    return false;
                }
                let ser = u64::from(flits) * self.cfg.flit_cycles;
                self.links[li].busy_until[dir] = now + ser;
                let arrive = now + ser + self.cfg.link_latency_cycles;
                self.stats.fabric_hops += 1;
                self.last_progress = now;
                if let Some(rec) = self.recorder.as_deref_mut() {
                    rec.on_grant(idx as u64, FABRIC_PORT, now);
                    rec.on_enqueue(idx as u64, next, FABRIC_PORT, now + 1);
                }
                self.transfers[idx].leg = Leg::Fabric {
                    at: next,
                    ready_at: arrive,
                    attempts: 0,
                };
                false
            }
            Leg::DestDie(tid) => {
                let dev = self.transfers[idx].dst_dev;
                let cross = self.transfers[idx].src_dev != dev;
                match self.dies[dev as usize].outcome(tid) {
                    TransferOutcome::Delivered { .. } => {
                        if cross {
                            if let Some(rec) = self.recorder.as_deref_mut() {
                                rec.on_grant(idx as u64, 0, now);
                                rec.on_deliver(idx as u64, now);
                            }
                        }
                        self.resolve_delivered(idx, now);
                        false
                    }
                    TransferOutcome::Lost { reason } => {
                        self.resolve_die_lost(idx, reason, now);
                        false
                    }
                    _ => {
                        if cross {
                            if let Some(rec) = self.recorder.as_deref_mut() {
                                rec.charge(idx as u64, StallKind::FabricHop);
                            }
                        }
                        false
                    }
                }
            }
        }
    }

    /// Advances the whole fabric one cycle: applies fault onsets, polls
    /// every transfer (in submission order — the determinism anchor), then
    /// steps every die in lockstep.
    pub fn step(&mut self) {
        let now = self.now;
        self.apply_onsets(now);
        for idx in 0..self.transfers.len() {
            // A leg transition (die → fabric) may immediately take its first
            // fabric hop in the same cycle.
            while self.poll_transfer(idx, now) {}
        }
        self.check_watchdog(now);
        for die in &mut self.dies {
            die.step();
        }
        self.now += 1;
    }

    /// The fabric-level watchdog: the die legs are covered by each die's own
    /// watchdog, so this only has to catch transfers stuck *between* dies.
    /// It waits two die-watchdog windows so a die watchdog always fires
    /// first for traffic it owns.
    fn check_watchdog(&mut self, now: u64) {
        if self.outstanding == 0
            || now.saturating_sub(self.last_progress) <= self.cfg.retry.watchdog_cycles * 2
        {
            return;
        }
        for idx in 0..self.transfers.len() {
            if !self.transfers[idx].state.is_resolved() {
                self.resolve_lost(idx, LossReason::Watchdog, now);
            }
        }
    }

    /// Event-driven fast-forward across a fabric-quiet span, to at most
    /// `limit`. A span is skippable only when *every* layer is provably
    /// inert: no pending fault onset, no fabric watchdog boundary, every
    /// in-fabric transfer still waiting out its `ready_at`, every die's own
    /// protocol quiet (ACK timeouts, watchdogs, mesh activity all bounded).
    /// The dies are then fast-forwarded in lockstep to the same cycle and
    /// the per-cycle `FabricHop` waiting charges are batch-replicated, so
    /// the result is bit-identical to stepping cycle by cycle. No-op under
    /// the cycle-exact engine.
    pub fn skip_quiet(&mut self, limit: u64) {
        if !gnoc_noc::event_skip_enabled() {
            return;
        }
        let now = self.now;
        let mut bound = limit;
        if let Some(&onset) = self.pending_onsets.first() {
            bound = bound.min(onset);
        }
        if self.outstanding > 0 {
            // First cycle where `now - last_progress > 2 * watchdog`.
            bound = bound.min(
                self.last_progress
                    .saturating_add(self.cfg.retry.watchdog_cycles.saturating_mul(2))
                    .saturating_add(1),
            );
        }
        for t in &self.transfers {
            if t.state.is_resolved() {
                continue;
            }
            match t.leg {
                Leg::Done => {}
                Leg::Fabric { ready_at, .. } => {
                    if ready_at <= now {
                        return; // crossing attempt due this very cycle
                    }
                    bound = bound.min(ready_at);
                }
                // Die-resident legs: an already-resolved die transfer would
                // transition on the next poll, so it forbids skipping; an
                // unresolved one can only resolve through die activity,
                // which the per-die quiet bounds below cap.
                Leg::SourceDie(tid) => {
                    if self.dies[t.src_dev as usize].outcome(tid).is_resolved() {
                        return;
                    }
                }
                Leg::DestDie(tid) => {
                    if self.dies[t.dst_dev as usize].outcome(tid).is_resolved() {
                        return;
                    }
                }
            }
        }
        for die in &self.dies {
            bound = bound.min(die.quiet_bound());
        }
        if bound <= now {
            return;
        }
        let n = bound - now;
        // Batch-replicate the per-cycle waiting charges the skipped polls
        // would have made: every unresolved in-fabric transfer and every
        // cross-device transfer waiting on its destination die charges one
        // FabricHop per cycle.
        if self.recorder.is_some() {
            let waiting: Vec<u64> = self
                .transfers
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.state.is_resolved())
                .filter_map(|(idx, t)| match t.leg {
                    Leg::Fabric { .. } => Some(idx as u64),
                    Leg::DestDie(_) if t.src_dev != t.dst_dev => Some(idx as u64),
                    _ => None,
                })
                .collect();
            if let Some(rec) = self.recorder.as_deref_mut() {
                for idx in waiting {
                    rec.charge_n(idx, StallKind::FabricHop, n);
                }
            }
        }
        // Advance the dies in lockstep to exactly the fabric bound: each
        // die's quiet bound is >= `bound`, so its skip lands on it.
        for die in &mut self.dies {
            die.skip_quiet(bound);
            debug_assert_eq!(
                die.mesh().cycle(),
                bound,
                "die fell out of lockstep during a fabric skip"
            );
        }
        self.now = bound;
    }

    /// Steps until every submitted transfer resolves or `max_cycles` elapse.
    /// Returns `true` when fully quiescent.
    ///
    /// Runs on the event-driven engine: spans where every transfer is
    /// waiting (fabric backoffs, die ACK timeouts, watchdog countdowns) are
    /// skipped, bit-identically to
    /// [`FabricSim::run_until_quiescent_cycle_exact`].
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> bool {
        let start = self.now;
        let end = start.saturating_add(max_cycles);
        while self.outstanding > 0 && self.now < end {
            self.step();
            if self.outstanding > 0 {
                self.skip_quiet(end);
            }
        }
        self.outstanding == 0
    }

    /// The cycle-exact reference for [`FabricSim::run_until_quiescent`]:
    /// identical observables, every cycle stepped.
    pub fn run_until_quiescent_cycle_exact(&mut self, max_cycles: u64) -> bool {
        let start = self.now;
        while self.outstanding > 0 && self.now - start < max_cycles {
            self.step();
        }
        self.outstanding == 0
    }
}
