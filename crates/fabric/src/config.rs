//! Fabric configuration and error types.

use gnoc_faults::FaultPlanError;
use gnoc_noc::{ArbiterKind, MeshConfig, NocError, RetryConfig, RouteOrder};
use gnoc_topo::FabricTopology;
use serde::{Deserialize, Serialize};

/// Configuration for a multi-device fabric simulation.
///
/// The per-link timing model follows the paper's observation that
/// inter-device links are an order of magnitude slower than on-die mesh
/// links: a crossing serializes at [`FabricConfig::flit_cycles`] cycles per
/// flit (vs one flit per cycle on the die) and then pays a fixed
/// [`FabricConfig::link_latency_cycles`] propagation delay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Number of GPU devices (each a full per-die mesh). Must be ≥ 2 and
    /// supported by `topology` ([`FabricTopology::supports_devices`]).
    pub devices: u32,
    /// How the devices are wired together.
    pub topology: FabricTopology,
    /// Per-die mesh configuration (every device gets an identical die).
    pub mesh: MeshConfig,
    /// Retry/watchdog policy for the intra-die transfer legs.
    pub retry: RetryConfig,
    /// Fixed propagation delay of one fabric-link crossing, cycles.
    pub link_latency_cycles: u64,
    /// Serialization cost per flit on a fabric link, cycles. A link is busy
    /// (per direction) for `flits × flit_cycles` cycles per packet.
    pub flit_cycles: u64,
    /// Crossing attempts allowed per hop before the transfer is written off
    /// as `RetriesExhausted`. Together with
    /// [`FabricConfig::hop_retry_backoff_cycles`] this budget is sized to
    /// outlive breaker-driven failover (see DESIGN.md): 64 × 16 = 1024
    /// cycles, comfortably past the two 256-cycle failing windows the
    /// breaker needs to quarantine a dead link and reroute around it.
    pub max_hop_retries: u32,
    /// Cycles between crossing attempts after a fabric-link drop.
    pub hop_retry_backoff_cycles: u64,
    /// When `true`, fabric routing does **not** see the fault plan: routes
    /// avoid only quarantined links (driven by
    /// [`FabricHealthMonitor`](crate::FabricHealthMonitor)), mirroring
    /// `Mesh::set_self_healing`. When `false` (the default), routes react to
    /// fault onsets the cycle they manifest.
    pub self_healing: bool,
}

impl FabricConfig {
    /// A paper-scale configuration: `devices` dies of the chaos harness's
    /// 5×5 mesh, joined by `topology`.
    pub fn new(devices: u32, topology: FabricTopology) -> Self {
        Self {
            devices,
            topology,
            mesh: MeshConfig {
                width: 5,
                height: 5,
                buffer_packets: 4,
                arbiter: ArbiterKind::RoundRobin,
                route_order: RouteOrder::Xy,
                vcs: 1,
            },
            retry: RetryConfig::default(),
            link_latency_cycles: 8,
            flit_cycles: 4,
            max_hop_retries: 64,
            hop_retry_backoff_cycles: 16,
            self_healing: false,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::Config`] when a field is out of range or the
    /// topology does not support the device count.
    pub fn validate(&self) -> Result<(), FabricError> {
        if !self.topology.supports_devices(self.devices) {
            return Err(FabricError::Config(format!(
                "topology {} does not support {} devices",
                self.topology, self.devices
            )));
        }
        if self.flit_cycles == 0 {
            return Err(FabricError::Config("flit_cycles must be ≥ 1".into()));
        }
        if self.hop_retry_backoff_cycles == 0 {
            return Err(FabricError::Config(
                "hop_retry_backoff_cycles must be ≥ 1".into(),
            ));
        }
        self.mesh.validate().map_err(FabricError::Noc)?;
        Ok(())
    }
}

/// Errors from the fabric layer.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// An underlying mesh error.
    Noc(NocError),
    /// The fault plan's fabric section is invalid for this topology.
    Plan(FaultPlanError),
    /// A configuration field is out of range.
    Config(String),
    /// A device index was out of range.
    DeviceOutOfRange {
        /// The offending index.
        device: u32,
        /// Configured device count.
        devices: u32,
    },
    /// A fabric-link index was out of range.
    LinkOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of fabric links in the topology.
        links: usize,
    },
    /// Quarantining this link would disconnect the fabric, so the request
    /// was refused (mirrors `NocError::QuarantineWouldDisconnect`).
    QuarantineWouldPartition {
        /// Lower endpoint of the refused link.
        a: u32,
        /// Higher endpoint of the refused link.
        b: u32,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Noc(e) => write!(f, "{e}"),
            Self::Plan(e) => write!(f, "{e}"),
            Self::Config(msg) => write!(f, "fabric config: {msg}"),
            Self::DeviceOutOfRange { device, devices } => {
                write!(f, "device {device} out of range (fabric has {devices})")
            }
            Self::LinkOutOfRange { index, links } => {
                write!(f, "fabric link {index} out of range (fabric has {links})")
            }
            Self::QuarantineWouldPartition { a, b } => write!(
                f,
                "refusing to quarantine fabric link {a}<->{b}: it would partition the fabric"
            ),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<NocError> for FabricError {
    fn from(e: NocError) -> Self {
        Self::Noc(e)
    }
}

impl From<FaultPlanError> for FabricError {
    fn from(e: FaultPlanError) -> Self {
        Self::Plan(e)
    }
}
