//! # gnoc-fabric
//!
//! Multi-GPU fabric simulation: several per-die meshes (`gnoc-noc`'s
//! [`ReliableMesh`](gnoc_noc::ReliableMesh)) joined by a runtime-selectable
//! inter-device topology ([`FabricTopology`]: point-to-point, line, ring,
//! fully-connected, or a central switch) with per-link bandwidth and
//! serialization modelling.
//!
//! A cross-device transfer composes deterministically with the die-level
//! simulation: source die mesh → egress port → fabric hops → ingress port →
//! destination die mesh. The flight recorder charges fabric residency to its
//! own stall class ([`gnoc_telemetry::StallKind::FabricHop`]), preserving the
//! exact latency-decomposition identity end to end.
//!
//! Fault tolerance mirrors the die layer's discipline one level up:
//!
//! - [`gnoc_faults::FabricFaults`] injects dead/flaky fabric links, a dead
//!   switch, and whole-device losses, all with onsets;
//! - routing is per-destination BFS trees recomputed at onsets (fault-aware
//!   mode) or at quarantine changes (self-healing mode) — loop-free by
//!   construction, the inter-device analogue of up*/down*;
//! - [`FabricHealthMonitor`] watches per-link drop windows with
//!   [`gnoc_health::CircuitBreaker`]s, quarantines faulty links with
//!   incremental reroute, refuses disconnecting quarantines, and reports
//!   unreachable devices as explicit degraded coverage;
//! - severed traffic resolves as
//!   [`LossReason::Partitioned`](gnoc_noc::LossReason::Partitioned) —
//!   distinct from the within-die `Unroutable`.
//!
//! Everything is deterministic: same config, plan, and submission sequence →
//! bit-identical outcomes, stats, and recordings.
//!
//! ```
//! use gnoc_fabric::{FabricConfig, FabricSim};
//! use gnoc_noc::{NodeId, PacketClass, TransferOutcome};
//! use gnoc_topo::FabricTopology;
//!
//! let cfg = FabricConfig::new(4, FabricTopology::Ring);
//! let mut fab = FabricSim::new(cfg).unwrap();
//! let id = fab
//!     .submit(0, NodeId::new(7), 2, NodeId::new(13), 2, PacketClass::Request)
//!     .unwrap();
//! assert!(fab.run_until_quiescent(100_000));
//! assert!(matches!(fab.outcome(id), TransferOutcome::Delivered { .. }));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod health;
mod sim;

pub use config::{FabricConfig, FabricError};
pub use health::{FabricHealthMonitor, FabricHealthReport};
pub use sim::{FabricSim, FabricStats, FabricTransferId};

// Re-export the pieces callers almost always need alongside the simulator.
pub use gnoc_health::FabricHealthConfig;
pub use gnoc_topo::FabricTopology;

#[cfg(test)]
mod tests {
    use super::*;
    use gnoc_faults::{DeviceFault, FabricLinkFault, FaultPlan, LinkFaultKind};
    use gnoc_noc::{LossReason, NodeId, PacketClass, TransferOutcome};

    fn ring4() -> FabricConfig {
        FabricConfig::new(4, FabricTopology::Ring)
    }

    fn dead_link(a: u32, b: u32, onset: u64) -> FabricLinkFault {
        FabricLinkFault {
            a,
            b,
            kind: LinkFaultKind::Dead,
            onset,
        }
    }

    /// Soak helper: all-pairs cross-device traffic, returns outcomes+stats.
    fn soak(cfg: FabricConfig, plan: &FaultPlan) -> (Vec<TransferOutcome>, FabricStats) {
        let mut fab = FabricSim::with_faults(cfg, plan).unwrap();
        let devices = fab.config().devices;
        for a in 0..devices {
            for b in 0..devices {
                if a != b {
                    fab.submit(
                        a,
                        NodeId::new(a + 1),
                        b,
                        NodeId::new(b * 3 + 2),
                        2,
                        PacketClass::Request,
                    )
                    .unwrap();
                }
            }
        }
        assert!(fab.run_until_quiescent(300_000), "must quiesce");
        (fab.outcomes(), fab.stats().clone())
    }

    #[test]
    fn healthy_fabric_delivers_all_topologies() {
        for topo in FabricTopology::ALL {
            let devices = if topo == FabricTopology::PointToPoint {
                2
            } else {
                4
            };
            let (outcomes, stats) = soak(FabricConfig::new(devices, topo), &FaultPlan::none());
            assert!(
                outcomes
                    .iter()
                    .all(|o| matches!(o, TransferOutcome::Delivered { .. })),
                "{topo}: all transfers deliver"
            );
            assert_eq!(stats.delivered, stats.submitted);
            assert_eq!(stats.lost_total(), 0);
            assert!(stats.fabric_hops >= stats.cross_device);
        }
    }

    #[test]
    fn accounting_always_balances() {
        let mut plan = FaultPlan::none();
        plan.seed = 11;
        plan.fabric.links.push(FabricLinkFault {
            a: 1,
            b: 2,
            kind: LinkFaultKind::Flaky { drop_prob: 0.4 },
            onset: 0,
        });
        let (_, stats) = soak(ring4(), &plan);
        assert_eq!(stats.delivered + stats.lost_total(), stats.submitted);
    }

    #[test]
    fn same_plan_and_seed_is_bit_identical() {
        let mut plan = FaultPlan::none();
        plan.seed = 3;
        plan.fabric.links.push(FabricLinkFault {
            a: 0,
            b: 1,
            kind: LinkFaultKind::Flaky { drop_prob: 0.3 },
            onset: 40,
        });
        plan.fabric.links.push(dead_link(2, 3, 500));
        assert_eq!(soak(ring4(), &plan), soak(ring4(), &plan));
    }

    #[test]
    fn ring_dead_link_fails_over_the_long_way() {
        // Kill ring link 0<->1; 0→1 traffic must take 0→3→2→1. The long way
        // is exactly 3 hops: latency grows but stays bounded by the
        // serialization + propagation of those hops plus the die legs.
        let mut plan = FaultPlan::none();
        plan.fabric.links.push(dead_link(0, 1, 0));
        let cfg = ring4();
        let mut fab = FabricSim::with_faults(cfg.clone(), &plan).unwrap();
        let id = fab
            .submit(
                0,
                NodeId::new(0),
                1,
                NodeId::new(0),
                1,
                PacketClass::Request,
            )
            .unwrap();
        assert!(fab.run_until_quiescent(50_000));
        let TransferOutcome::Delivered { latency } = fab.outcome(id) else {
            panic!("long-way failover must deliver, got {:?}", fab.outcome(id));
        };
        assert_eq!(fab.stats().fabric_hops, 3, "long way = 3 ring hops");
        let per_hop = cfg.flit_cycles + cfg.link_latency_cycles;
        assert!(
            latency >= 3 * per_hop && latency <= 3 * per_hop + 16,
            "pure-fabric 3-hop latency bounded, got {latency}"
        );
    }

    #[test]
    fn two_dead_ring_links_partition() {
        let mut plan = FaultPlan::none();
        plan.fabric.links.push(dead_link(0, 1, 0));
        plan.fabric.links.push(dead_link(2, 3, 0));
        let (outcomes, stats) = soak(ring4(), &plan);
        // {0,3} and {1,2} are separate islands: cross-island traffic is
        // Partitioned, intra-island traffic still delivers.
        assert!(stats.lost_partitioned > 0);
        assert!(stats.delivered > 0);
        assert_eq!(stats.lost_total(), stats.lost_partitioned);
        assert!(outcomes.iter().any(|o| matches!(
            o,
            TransferOutcome::Lost {
                reason: LossReason::Partitioned
            }
        )));
    }

    #[test]
    fn device_loss_strands_its_traffic_as_partitioned() {
        let mut plan = FaultPlan::none();
        plan.fabric.devices.push(DeviceFault {
            device: 2,
            onset: 5,
        });
        let mut fab = FabricSim::with_faults(ring4(), &plan).unwrap();
        let to_dead = fab
            .submit(
                0,
                NodeId::new(1),
                2,
                NodeId::new(5),
                2,
                PacketClass::Request,
            )
            .unwrap();
        let bystander = fab
            .submit(
                0,
                NodeId::new(1),
                1,
                NodeId::new(5),
                2,
                PacketClass::Request,
            )
            .unwrap();
        assert!(fab.run_until_quiescent(100_000));
        // The 0→2 transfer cannot finish within 5 cycles, so the onset
        // catches it mid-flight.
        assert_eq!(
            fab.outcome(to_dead),
            TransferOutcome::Lost {
                reason: LossReason::Partitioned
            }
        );
        assert!(matches!(
            fab.outcome(bystander),
            TransferOutcome::Delivered { .. }
        ));
        assert_eq!(fab.dead_devices(), vec![2]);
    }

    #[test]
    fn dead_switch_severs_every_device() {
        let mut plan = FaultPlan::none();
        plan.fabric.dead_switch = Some(0);
        let (outcomes, stats) = soak(FabricConfig::new(3, FabricTopology::Switch), &plan);
        assert_eq!(stats.lost_partitioned, stats.cross_device);
        assert!(outcomes.iter().all(|o| matches!(
            o,
            TransferOutcome::Lost {
                reason: LossReason::Partitioned
            }
        )));
    }

    #[test]
    fn recorder_preserves_latency_identity_and_does_not_perturb() {
        let mut plan = FaultPlan::none();
        plan.seed = 9;
        plan.fabric.links.push(FabricLinkFault {
            a: 1,
            b: 2,
            kind: LinkFaultKind::Flaky { drop_prob: 0.2 },
            onset: 0,
        });
        let run = |record: bool| {
            let mut fab = FabricSim::with_faults(ring4(), &plan).unwrap();
            if record {
                fab.attach_flight_recorder();
            }
            for a in 0..4u32 {
                for b in 0..4u32 {
                    if a != b {
                        fab.submit(
                            a,
                            NodeId::new(a),
                            b,
                            NodeId::new(b + 4),
                            2,
                            PacketClass::Request,
                        )
                        .unwrap();
                    }
                }
            }
            assert!(fab.run_until_quiescent(300_000));
            let rec = fab.take_flight_recorder();
            (fab.outcomes(), fab.stats().clone(), rec)
        };
        let (bare_out, bare_stats, _) = run(false);
        let (rec_out, rec_stats, rec) = run(true);
        assert_eq!(bare_out, rec_out, "recording must not perturb outcomes");
        assert_eq!(bare_stats, rec_stats, "recording must not perturb stats");
        let rec = rec.expect("recorder attached");
        assert_eq!(rec.open_count(), 0, "all recorded messages finished");
        assert!(!rec.finished().is_empty());
        for m in rec.finished() {
            if m.delivered {
                assert_eq!(
                    m.components_sum(),
                    m.latency(),
                    "identity must hold for msg {}",
                    m.id
                );
                assert!(m.stalls().fabric_hop > 0, "fabric time must be charged");
            }
        }
    }

    #[test]
    fn self_healing_monitor_detects_quarantines_and_fails_over() {
        let mut plan = FaultPlan::none();
        plan.fabric.links.push(dead_link(1, 2, 0));
        let mut cfg = ring4();
        cfg.self_healing = true;
        let mut fab = FabricSim::with_faults(cfg, &plan).unwrap();
        let mut mon = FabricHealthMonitor::new(&fab, FabricHealthConfig::default());
        mon.run_detection(&mut fab, 20_000);
        let report = mon.report(&fab);
        assert!(
            report
                .detections
                .iter()
                .any(|d| d.resource == "fabric link 1<->2"),
            "dead fabric link must be detected: {:?}",
            report.detections
        );
        assert!(
            report.quarantined.contains(&(1, 2)),
            "detected link must be quarantined: {:?}",
            report.quarantined
        );
        assert!(report.partitioned_devices.is_empty());
        // Failover proof: post-quarantine traffic over the severed pair
        // delivers the long way round.
        let id = fab
            .submit(
                1,
                NodeId::new(0),
                2,
                NodeId::new(0),
                1,
                PacketClass::Request,
            )
            .unwrap();
        assert!(fab.run_until_quiescent(50_000));
        assert!(matches!(fab.outcome(id), TransferOutcome::Delivered { .. }));
    }

    #[test]
    fn disconnecting_quarantine_is_refused_and_reported() {
        // Point-to-point: the single link can never be quarantined.
        let mut plan = FaultPlan::none();
        plan.fabric.links.push(dead_link(0, 1, 0));
        let mut cfg = FabricConfig::new(2, FabricTopology::PointToPoint);
        cfg.self_healing = true;
        let mut fab = FabricSim::with_faults(cfg, &plan).unwrap();
        assert_eq!(
            fab.quarantine_fabric_link(0),
            Err(FabricError::QuarantineWouldPartition { a: 0, b: 1 })
        );
        let mut mon = FabricHealthMonitor::new(&fab, FabricHealthConfig::default());
        mon.run_detection(&mut fab, 4_000);
        let report = mon.report(&fab);
        assert!(report.refusals > 0, "refusals must be reported");
        assert!(report.quarantined.is_empty());
        assert_eq!(
            report.partitioned_devices,
            vec![0, 1],
            "both devices lose reliable coverage and must be reported"
        );
    }

    #[test]
    fn bad_endpoints_are_typed_errors() {
        let mut fab = FabricSim::new(ring4()).unwrap();
        assert!(matches!(
            fab.submit(
                9,
                NodeId::new(0),
                1,
                NodeId::new(0),
                1,
                PacketClass::Request
            ),
            Err(FabricError::DeviceOutOfRange { device: 9, .. })
        ));
        assert!(matches!(
            fab.submit(
                0,
                NodeId::new(99),
                1,
                NodeId::new(0),
                1,
                PacketClass::Request
            ),
            Err(FabricError::Noc(_))
        ));
    }

    #[test]
    fn same_device_traffic_bypasses_the_fabric() {
        let mut fab = FabricSim::new(ring4()).unwrap();
        let id = fab
            .submit(
                1,
                NodeId::new(3),
                1,
                NodeId::new(20),
                2,
                PacketClass::Request,
            )
            .unwrap();
        assert!(fab.run_until_quiescent(50_000));
        assert!(matches!(fab.outcome(id), TransferOutcome::Delivered { .. }));
        assert_eq!(fab.stats().fabric_hops, 0);
        assert_eq!(fab.stats().cross_device, 0);
    }
}
