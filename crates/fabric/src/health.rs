//! Breaker-driven health monitoring for inter-device fabric links.
//!
//! The same detect-without-the-plan contract as `gnoc-health`'s die-level
//! monitors: the monitor sees only the fabric's per-link drop counters and
//! probe results, never the fault plan. A persistent faulty link trips its
//! [`CircuitBreaker`] and is quarantined out of routing (failover); a
//! quarantine that would partition the fabric is **refused** and reported,
//! and devices whose every incident link is breaker-quarantining are
//! surfaced as explicit degraded coverage rather than silently dropped.

use crate::config::FabricError;
use crate::sim::FabricSim;
use gnoc_health::{BreakerState, CircuitBreaker, Detection, FabricHealthConfig, TransitionRecord};
use gnoc_noc::{NodeId, PacketClass};
use serde::{Deserialize, Serialize};

/// What a fabric detection run observed, serializable for the CLI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricHealthReport {
    /// Health windows elapsed.
    pub windows: u64,
    /// Links whose breaker opened at least once.
    pub detections: Vec<Detection>,
    /// Every breaker transition, in occurrence order.
    pub transitions: Vec<TransitionRecord>,
    /// Currently-quarantined links as `(a, b)` endpoint pairs.
    pub quarantined: Vec<(u32, u32)>,
    /// Quarantine requests refused because they would partition the fabric.
    pub refusals: u64,
    /// Devices outside reliable fabric coverage: every incident link's
    /// breaker is quarantining (or trying to). Explicitly reported degraded
    /// coverage, never silent.
    pub partitioned_devices: Vec<u32>,
}

/// Per-fabric-link drop-window monitor with one [`CircuitBreaker`] per link.
#[derive(Debug)]
pub struct FabricHealthMonitor {
    cfg: FabricHealthConfig,
    breakers: Vec<CircuitBreaker>,
    last_drops: Vec<u64>,
    transitions: Vec<TransitionRecord>,
    /// First breaker-open cycle per link (`u64::MAX` = never).
    first_open: Vec<u64>,
    refusals: u64,
    windows: u64,
    next_window: u64,
}

impl FabricHealthMonitor {
    /// A monitor for `sim`'s fabric links.
    pub fn new(sim: &FabricSim, cfg: FabricHealthConfig) -> Self {
        let n = sim.fabric_links().len();
        Self {
            breakers: vec![CircuitBreaker::new(cfg.breaker); n],
            last_drops: vec![0; n],
            transitions: Vec::new(),
            first_open: vec![u64::MAX; n],
            refusals: 0,
            windows: 0,
            next_window: cfg.window_cycles,
            cfg,
        }
    }

    fn resource_name(sim: &FabricSim, link: usize) -> String {
        let (a, b) = sim.fabric_links()[link];
        format!("fabric link {a}<->{b}")
    }

    /// Call once per cycle after [`FabricSim::step`]; acts only at window
    /// boundaries. Reads each link's drop delta, advances its breaker, and
    /// applies the verdicts: `Open` → quarantine (refused if partitioning),
    /// `HalfOpen` → one probe per window, `Closed` → release.
    pub fn poll(&mut self, sim: &mut FabricSim) {
        if sim.cycle() < self.next_window {
            return;
        }
        self.next_window = sim.cycle() + self.cfg.window_cycles;
        self.windows += 1;
        let now = sim.cycle();
        for li in 0..self.breakers.len() {
            let drops = sim.link_drops()[li];
            let failing = drops.saturating_sub(self.last_drops[li]) >= self.cfg.link_drop_threshold;
            self.last_drops[li] = drops;
            if let Some(t) = self.breakers[li].on_window(failing) {
                self.record(sim, li, now, t.from, t.to);
                if t.to == BreakerState::Open {
                    self.try_quarantine(sim, li);
                }
            }
            if self.breakers[li].state() == BreakerState::HalfOpen {
                let ok = sim.probe_fabric_link(li).unwrap_or(false);
                if let Some(t) = self.breakers[li].on_probe(ok) {
                    self.record(sim, li, now, t.from, t.to);
                    match t.to {
                        BreakerState::Closed => {
                            let _ = sim.release_fabric_link(li);
                        }
                        BreakerState::Open => self.try_quarantine(sim, li),
                        BreakerState::HalfOpen => {}
                    }
                }
            }
        }
    }

    fn record(
        &mut self,
        sim: &FabricSim,
        link: usize,
        at: u64,
        from: BreakerState,
        to: BreakerState,
    ) {
        if to == BreakerState::Open && self.first_open[link] == u64::MAX {
            self.first_open[link] = at;
        }
        self.transitions.push(TransitionRecord {
            at,
            resource: Self::resource_name(sim, link),
            from,
            to,
        });
    }

    fn try_quarantine(&mut self, sim: &mut FabricSim, link: usize) {
        match sim.quarantine_fabric_link(link) {
            Ok(()) => {}
            Err(FabricError::QuarantineWouldPartition { .. }) => self.refusals += 1,
            Err(_) => {}
        }
    }

    /// Every breaker transition so far.
    pub fn transitions(&self) -> &[TransitionRecord] {
        &self.transitions
    }

    /// Quarantine requests refused to preserve connectivity.
    pub fn refusals(&self) -> u64 {
        self.refusals
    }

    /// Links whose breaker has opened at least once, with first-open cycle
    /// and final state.
    pub fn detections(&self, sim: &FabricSim) -> Vec<Detection> {
        (0..self.breakers.len())
            .filter(|&li| self.first_open[li] != u64::MAX)
            .map(|li| Detection {
                resource: Self::resource_name(sim, li),
                first_open_at: self.first_open[li],
                state: self.breakers[li].state(),
            })
            .collect()
    }

    /// Links whose breaker has opened at least once, as
    /// `(a, b, first_open_cycle)` triples — the machine-readable companion
    /// to [`Self::detections`] for scoring against a ground-truth plan.
    pub fn detected_links(&self, sim: &FabricSim) -> Vec<(u32, u32, u64)> {
        let links = sim.fabric_links();
        (0..self.breakers.len())
            .filter(|&li| self.first_open[li] != u64::MAX)
            .map(|li| (links[li].0, links[li].1, self.first_open[li]))
            .collect()
    }

    /// Devices with no closed-breaker fabric link left: reliable coverage
    /// cannot reach them and any quarantine completing the isolation was
    /// refused. Reported, never silently dropped.
    pub fn partitioned_devices(&self, sim: &FabricSim) -> Vec<u32> {
        let links = sim.fabric_links();
        (0..sim.config().devices)
            .filter(|&d| {
                let incident: Vec<usize> = links
                    .iter()
                    .enumerate()
                    .filter(|(_, &(a, b))| a == d || b == d)
                    .map(|(i, _)| i)
                    .collect();
                !incident.is_empty()
                    && incident
                        .iter()
                        .all(|&li| self.breakers[li].is_quarantining())
            })
            .collect()
    }

    /// The full report.
    pub fn report(&self, sim: &FabricSim) -> FabricHealthReport {
        FabricHealthReport {
            windows: self.windows,
            detections: self.detections(sim),
            transitions: self.transitions.clone(),
            quarantined: sim
                .quarantined_fabric_links()
                .into_iter()
                .map(|li| sim.fabric_links()[li])
                .collect(),
            refusals: self.refusals,
            partitioned_devices: self.partitioned_devices(sim),
        }
    }

    /// Drives `cycles` cycles of patrol traffic and monitoring: each window
    /// submits one 1-flit transfer between every ordered pair of devices
    /// (egress port to ingress port, so the die legs are skipped and every
    /// fabric path is exercised), steps the fabric, and polls the breakers.
    pub fn run_detection(&mut self, sim: &mut FabricSim, cycles: u64) {
        let end = sim.cycle() + cycles;
        let mut next_patrol = sim.cycle();
        while sim.cycle() < end {
            if sim.cycle() >= next_patrol {
                next_patrol = sim.cycle() + self.cfg.window_cycles;
                let devices = sim.config().devices;
                for a in 0..devices {
                    for b in 0..devices {
                        if a != b {
                            let _ = sim.submit(
                                a,
                                NodeId::new(0),
                                b,
                                NodeId::new(0),
                                1,
                                PacketClass::Request,
                            );
                        }
                    }
                }
            }
            sim.step();
            self.poll(sim);
            // Event-engine skip between patrol rounds. Capped at the next
            // patrol submission and one cycle short of the breaker window,
            // so the iteration that submits (and the step whose post-cycle
            // reaches the window) still run live — identical scheduling to
            // cycle-exact stepping.
            sim.skip_quiet(end.min(next_patrol).min(self.next_window.saturating_sub(1)));
        }
    }
}
