//! Time-stepped memory traces and their per-slice traffic distribution.
//!
//! The paper's Fig. 16 plots, for two Rodinia workloads, the amount of L2
//! traffic destined to each slice over time: thanks to address hashing the
//! distribution stays flat even as the access *volume* changes dramatically
//! (Observation #12). [`MemoryTrace`] carries line addresses per time step;
//! [`slice_traffic`] pushes them through a device's address hash.

use gnoc_engine::AddressMap;
use gnoc_topo::PartitionId;
use serde::{Deserialize, Serialize};

/// A workload's memory accesses, bucketed into time steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryTrace {
    /// Workload label (e.g. `"bfs"`).
    pub name: String,
    /// Line addresses accessed in each time step.
    pub steps: Vec<Vec<u64>>,
}

impl MemoryTrace {
    /// Total number of accesses.
    pub fn total_accesses(&self) -> usize {
        self.steps.iter().map(Vec::len).sum()
    }

    /// Access count per step — the workload's volume phase behaviour.
    pub fn volume_profile(&self) -> Vec<usize> {
        self.steps.iter().map(Vec::len).collect()
    }
}

/// Traffic per (time step, L2 slice): the Fig. 16 heatmap data.
pub fn slice_traffic(
    trace: &MemoryTrace,
    map: &AddressMap,
    requester: PartitionId,
) -> Vec<Vec<f64>> {
    trace
        .steps
        .iter()
        .map(|step| {
            map.slice_histogram(step.iter().copied(), requester)
                .into_iter()
                .map(|c| c as f64)
                .collect()
        })
        .collect()
}

/// Per-step imbalance of a traffic matrix: `max / mean` over slices, ignoring
/// steps with fewer than `min_accesses` accesses (tiny steps are trivially
/// imbalanced).
pub fn imbalance_per_step(traffic: &[Vec<f64>], min_accesses: f64) -> Vec<f64> {
    traffic
        .iter()
        .filter(|row| row.iter().sum::<f64>() >= min_accesses)
        .map(|row| {
            let mean = row.iter().sum::<f64>() / row.len() as f64;
            let max = row.iter().cloned().fold(0.0f64, f64::max);
            if mean == 0.0 {
                1.0
            } else {
                max / mean
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnoc_topo::{CachePolicy, GpuSpec};

    fn map() -> AddressMap {
        AddressMap::new(&GpuSpec::v100().hierarchy(), CachePolicy::GloballyShared)
    }

    fn trace() -> MemoryTrace {
        MemoryTrace {
            name: "test".into(),
            steps: vec![(0..5000).collect(), (5000..5100).collect(), vec![]],
        }
    }

    #[test]
    fn totals_and_volume() {
        let t = trace();
        assert_eq!(t.total_accesses(), 5100);
        assert_eq!(t.volume_profile(), vec![5000, 100, 0]);
    }

    #[test]
    fn traffic_matrix_shape_matches() {
        let t = trace();
        let m = slice_traffic(&t, &map(), PartitionId::new(0));
        assert_eq!(m.len(), 3);
        assert!(m.iter().all(|row| row.len() == 32));
        let step0: f64 = m[0].iter().sum();
        assert_eq!(step0, 5000.0);
    }

    #[test]
    fn hashed_traffic_is_balanced() {
        let t = trace();
        let m = slice_traffic(&t, &map(), PartitionId::new(0));
        let imb = imbalance_per_step(&m, 1000.0);
        assert_eq!(imb.len(), 1); // only the big step qualifies
        assert!(imb[0] < 1.3, "imbalance {}", imb[0]);
    }

    #[test]
    fn empty_steps_report_unit_imbalance() {
        let m = vec![vec![0.0; 8]];
        assert_eq!(imbalance_per_step(&m, 0.0), vec![1.0]);
    }
}
