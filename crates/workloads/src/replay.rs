//! Trace replay: estimate a workload's execution timeline on a virtual
//! device.
//!
//! Each trace step's accesses are assigned to thread blocks, the blocks to
//! SMs by a [`CtaScheduler`], and the resulting steady-state flow set is
//! resolved by the device's fabric solver; the step's duration follows from
//! bytes ÷ achieved bandwidth. Besides being a useful performance model,
//! this quantifies the cost of the paper's scheduling defense: because
//! bandwidth is *uniform* across placements (Observation #8), randomising
//! the block seed costs almost nothing in throughput.

use crate::trace::MemoryTrace;
use gnoc_engine::{AccessKind, CtaScheduler, FlowSpec, GpuDevice, LINE_BYTES};
use gnoc_topo::SmId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration of a trace replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Thread blocks the kernel launches per step.
    pub blocks: usize,
    /// How blocks are placed onto SMs.
    pub scheduler: CtaScheduler,
    /// Whether accesses hit in L2 (fabric-bound) or stream from DRAM.
    pub kind: AccessKind,
    /// Seed for the scheduler's randomness.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            blocks: 64,
            scheduler: CtaScheduler::Static,
            kind: AccessKind::ReadHit,
            seed: 0,
        }
    }
}

/// Result of replaying one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayResult {
    /// Achieved bandwidth per busy step, GB/s.
    pub step_gbps: Vec<f64>,
    /// Estimated duration per busy step, seconds.
    pub step_seconds: Vec<f64>,
    /// Total bytes moved.
    pub total_bytes: f64,
    /// Total estimated execution time, seconds.
    pub total_seconds: f64,
}

impl ReplayResult {
    /// Whole-trace average bandwidth, GB/s.
    pub fn mean_gbps(&self) -> f64 {
        if self.total_seconds == 0.0 {
            0.0
        } else {
            self.total_bytes / self.total_seconds / 1e9
        }
    }
}

/// Replays `trace` on `dev` under `cfg`, scheduling onto all SMs.
///
/// # Panics
///
/// Panics if `cfg.blocks` is zero.
pub fn replay(dev: &GpuDevice, trace: &MemoryTrace, cfg: &ReplayConfig) -> ReplayResult {
    let all_sms: Vec<SmId> = SmId::range(dev.hierarchy().num_sms()).collect();
    replay_on_sms(dev, trace, cfg, &all_sms)
}

/// Replays `trace` with the scheduler restricted to `sms` — used for
/// locality experiments (e.g. pinning a kernel to the partition that owns
/// its data).
///
/// # Panics
///
/// Panics if `cfg.blocks` is zero or `sms` is empty.
pub fn replay_on_sms(
    dev: &GpuDevice,
    trace: &MemoryTrace,
    cfg: &ReplayConfig,
    sms: &[SmId],
) -> ReplayResult {
    assert!(cfg.blocks > 0, "need at least one block");
    assert!(!sms.is_empty(), "need at least one SM");
    let all_sms: Vec<SmId> = sms.to_vec();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut step_gbps = Vec::new();
    let mut step_seconds = Vec::new();
    let mut total_bytes = 0.0;
    let mut total_seconds = 0.0;

    for step in &trace.steps {
        if step.is_empty() {
            continue;
        }
        // One kernel launch per step: blocks → SMs.
        let assignment = cfg.scheduler.assign(cfg.blocks, &all_sms, &mut rng);
        let active: BTreeSet<SmId> = assignment.into_iter().collect();

        // Each active SM sweeps an equal shard of the step; hashing spreads
        // any shard over the same slice set, so the flow set is the cross
        // product of active SMs and the slices the step actually touches.
        let mut flows = Vec::new();
        for &sm in &active {
            let mut slices: Vec<_> = step
                .iter()
                .map(|&line| dev.effective_slice(sm, line))
                .collect();
            slices.sort_unstable();
            slices.dedup();
            flows.extend(slices.into_iter().map(|slice| FlowSpec {
                sm,
                slice,
                kind: cfg.kind,
            }));
        }
        let bw = dev.solve_bandwidth(&flows).total_gbps;
        let bytes = step.len() as f64 * LINE_BYTES as f64;
        let seconds = bytes / (bw * 1e9);
        step_gbps.push(bw);
        step_seconds.push(seconds);
        total_bytes += bytes;
        total_seconds += seconds;
    }

    ReplayResult {
        step_gbps,
        step_seconds,
        total_bytes,
        total_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, gaussian};

    #[test]
    fn replay_produces_one_entry_per_busy_step() {
        let dev = GpuDevice::v100(0);
        let t = gaussian::generate(gaussian::GaussianConfig {
            n: 128,
            step_stride: 16,
        });
        let r = replay(&dev, &t, &ReplayConfig::default());
        let busy = t.steps.iter().filter(|s| !s.is_empty()).count();
        assert_eq!(r.step_gbps.len(), busy);
        assert!(r.total_seconds > 0.0);
        assert!(r.mean_gbps() > 0.0);
    }

    #[test]
    fn more_blocks_means_more_bandwidth() {
        let dev = GpuDevice::v100(0);
        let t = bfs::generate(
            bfs::BfsConfig {
                nodes: 4000,
                avg_degree: 6,
            },
            1,
        );
        let few = replay(
            &dev,
            &t,
            &ReplayConfig {
                blocks: 4,
                ..ReplayConfig::default()
            },
        );
        let many = replay(
            &dev,
            &t,
            &ReplayConfig {
                blocks: 80,
                ..ReplayConfig::default()
            },
        );
        assert!(
            many.total_seconds < few.total_seconds * 0.5,
            "few {} vs many {}",
            few.total_seconds,
            many.total_seconds
        );
    }

    #[test]
    fn random_scheduling_defense_is_nearly_free() {
        // The defense's performance cost: bandwidth is placement-uniform
        // (Observation #8), so randomising the seed barely changes runtime.
        let dev = GpuDevice::a100(0);
        let t = bfs::generate(
            bfs::BfsConfig {
                nodes: 4000,
                avg_degree: 6,
            },
            2,
        );
        let cfg = ReplayConfig {
            blocks: 32,
            ..ReplayConfig::default()
        };
        let static_run = replay(&dev, &t, &cfg);
        let random_run = replay(
            &dev,
            &t,
            &ReplayConfig {
                scheduler: CtaScheduler::RandomSeed,
                seed: 1234,
                ..cfg
            },
        );
        let overhead = random_run.total_seconds / static_run.total_seconds - 1.0;
        assert!(
            overhead.abs() < 0.05,
            "defense overhead should be negligible: {:+.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn memory_bound_replay_is_slower_than_fabric_bound() {
        let dev = GpuDevice::v100(0);
        let t = gaussian::generate(gaussian::GaussianConfig {
            n: 128,
            step_stride: 32,
        });
        let hit = replay(&dev, &t, &ReplayConfig::default());
        let miss = replay(
            &dev,
            &t,
            &ReplayConfig {
                kind: AccessKind::ReadMiss,
                ..ReplayConfig::default()
            },
        );
        assert!(miss.total_seconds > hit.total_seconds);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        let dev = GpuDevice::v100(0);
        let t = MemoryTrace {
            name: "x".into(),
            steps: vec![vec![1, 2, 3]],
        };
        let _ = replay(
            &dev,
            &t,
            &ReplayConfig {
                blocks: 0,
                ..ReplayConfig::default()
            },
        );
    }
}
