//! Streaming (memory-intensive) kernel trace and its flow-set form.
//!
//! The sequential, strided access pattern of the paper's bandwidth
//! microbenchmarks and of the Fig. 21 "memory-intensive synthetic kernel":
//! every SM walks a large array front to back. Besides the raw trace, this
//! module converts the pattern into the engine's [`FlowSpec`] form so the
//! fabric solver can evaluate it.

use crate::trace::MemoryTrace;
use gnoc_engine::{AccessKind, FlowSpec, GpuDevice};
use gnoc_topo::SmId;

/// Configuration of the streaming kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingConfig {
    /// Total lines streamed per step.
    pub lines_per_step: usize,
    /// Number of time steps.
    pub steps: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        Self {
            lines_per_step: 8_192,
            steps: 16,
        }
    }
}

/// Array base line address.
const STREAM_BASE: u64 = 0x7000_0000;

/// Generates the sequential streaming trace: step `i` covers the next
/// `lines_per_step` consecutive lines.
pub fn generate(cfg: StreamingConfig) -> MemoryTrace {
    let steps = (0..cfg.steps)
        .map(|i| {
            let start = STREAM_BASE + (i * cfg.lines_per_step) as u64;
            (start..start + cfg.lines_per_step as u64).collect()
        })
        .collect();
    MemoryTrace {
        name: "streaming".into(),
        steps,
    }
}

/// The steady-state flow set of every SM streaming `kind` accesses across all
/// slices it can reach — the input the fabric solver needs to evaluate this
/// workload's bandwidth on a device.
pub fn flow_set(dev: &GpuDevice, kind: AccessKind) -> Vec<FlowSpec> {
    let h = dev.hierarchy();
    let mut flows = Vec::new();
    for sm in SmId::range(h.num_sms()) {
        let slices = match dev.spec().cache_policy {
            gnoc_topo::CachePolicy::GloballyShared => {
                gnoc_topo::SliceId::range(h.num_slices()).collect::<Vec<_>>()
            }
            gnoc_topo::CachePolicy::PartitionLocal => {
                h.slices_in_partition(h.sm(sm).partition).to_vec()
            }
        };
        flows.extend(slices.into_iter().map(|slice| FlowSpec { sm, slice, kind }));
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_volume_is_constant() {
        let t = generate(StreamingConfig::default());
        let v = t.volume_profile();
        assert_eq!(v.len(), 16);
        assert!(v.iter().all(|&n| n == 8_192));
    }

    #[test]
    fn steps_are_disjoint_and_sequential() {
        let t = generate(StreamingConfig {
            lines_per_step: 4,
            steps: 3,
        });
        assert_eq!(
            t.steps[0],
            vec![
                STREAM_BASE,
                STREAM_BASE + 1,
                STREAM_BASE + 2,
                STREAM_BASE + 3
            ]
        );
        assert_eq!(t.steps[1][0], STREAM_BASE + 4);
    }

    #[test]
    fn flow_set_covers_every_sm() {
        let dev = GpuDevice::v100(0);
        let flows = flow_set(&dev, AccessKind::ReadMiss);
        assert_eq!(flows.len(), 80 * 32);
        let dev = GpuDevice::h100(0);
        let flows = flow_set(&dev, AccessKind::ReadHit);
        assert_eq!(flows.len(), 132 * 40);
    }

    #[test]
    fn flow_set_streams_near_peak_memory_bandwidth() {
        let dev = GpuDevice::v100(0);
        let flows = flow_set(&dev, AccessKind::ReadMiss);
        let bw = dev.solve_bandwidth(&flows).total_gbps;
        let frac = bw / dev.spec().mem_peak_gbps;
        assert!((0.8..0.95).contains(&frac), "memory fraction {frac:.2}");
    }
}
