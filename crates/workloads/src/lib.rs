//! # gnoc-workloads
//!
//! Synthetic workload memory-trace generators for the `gnoc` reproduction of
//! *Uncovering Real GPU NoC Characteristics* (MICRO 2024).
//!
//! The paper's Fig. 16 uses Rodinia's `bfs` and `gaussian`; without the
//! benchmark suite we generate traces with the same structural phase
//! behaviour from real algorithm executions:
//!
//! - [`bfs`] — level-synchronous BFS over a seeded random graph
//!   (explosive-then-collapsing frontier);
//! - [`gaussian`] — Gaussian elimination (quadratically shrinking triangle);
//! - [`streaming`] — the constant-volume memory-intensive kernel, plus its
//!   steady-state flow-set form for the fabric solver;
//! - [`trace`] — the common [`MemoryTrace`] type and per-slice traffic /
//!   imbalance analysis (Observation #12);
//! - [`replay`] — execution-time estimation of a trace on a virtual device,
//!   including the (near-zero) throughput cost of the scheduling defense.
//!
//! ```
//! use gnoc_workloads::{bfs, trace};
//! use gnoc_engine::AddressMap;
//! use gnoc_topo::{CachePolicy, GpuSpec, PartitionId};
//!
//! let t = bfs::generate(bfs::BfsConfig::default(), 0);
//! let map = AddressMap::new(&GpuSpec::v100().hierarchy(), CachePolicy::GloballyShared);
//! let traffic = trace::slice_traffic(&t, &map, PartitionId::new(0));
//! assert_eq!(traffic[0].len(), 32);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bfs;
pub mod gaussian;
pub mod replay;
pub mod streaming;
pub mod trace;

pub use trace::MemoryTrace;
