//! Synthetic Gaussian-elimination memory-trace generator (the Rodinia
//! `gaussian` stand-in).
//!
//! Gaussian elimination sweeps a shrinking triangle: step `k` updates the
//! `(n-k-1)²` trailing submatrix, so traffic volume decays quadratically over
//! time — the second phase pattern of the paper's Fig. 16. Accesses cover the
//! pivot row and the trailing rows/columns of a row-major matrix.

use crate::trace::MemoryTrace;

/// Configuration of the synthetic Gaussian elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaussianConfig {
    /// Matrix dimension `n` (n×n system).
    pub n: usize,
    /// Record every `stride`-th elimination step as one trace step (keeps
    /// traces compact for large `n`).
    pub step_stride: usize,
}

impl Default for GaussianConfig {
    fn default() -> Self {
        Self {
            n: 512,
            step_stride: 8,
        }
    }
}

/// Matrix base line address.
const MATRIX_BASE: u64 = 0x5000_0000;
/// 32 four-byte elements per 128 B line.
const ELEMS_PER_LINE: u64 = 32;

fn element_line(n: usize, row: usize, col: usize) -> u64 {
    MATRIX_BASE + (row as u64 * n as u64 + col as u64) / ELEMS_PER_LINE
}

/// Generates the elimination trace.
///
/// # Panics
///
/// Panics if `n` or `step_stride` is zero.
pub fn generate(cfg: GaussianConfig) -> MemoryTrace {
    assert!(cfg.n > 0, "matrix must be non-empty");
    assert!(cfg.step_stride > 0, "stride must be positive");
    let n = cfg.n;
    let mut steps = Vec::new();
    let mut bucket = Vec::new();
    for k in 0..n - 1 {
        // The pivot row is staged once (L1/shared memory holds it across the
        // trailing-row sweep, so L2 sees it once per step)…
        for col in k..n {
            bucket.push(element_line(n, k, col));
        }
        // …while every trailing-row update goes to L2.
        for row in (k + 1)..n {
            for col in k..n {
                bucket.push(element_line(n, row, col));
            }
        }
        if (k + 1) % cfg.step_stride == 0 || k == n - 2 {
            steps.push(std::mem::take(&mut bucket));
        }
    }
    MemoryTrace {
        name: "gaussian".into(),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_decays_over_time() {
        let t = generate(GaussianConfig {
            n: 128,
            step_stride: 4,
        });
        let v = t.volume_profile();
        assert!(v.len() > 5);
        assert!(v[0] > v[v.len() / 2], "{v:?}");
        assert!(v[v.len() / 2] > *v.last().unwrap(), "{v:?}");
        // Quadratic-ish decay: the last step is a tiny fraction of the first.
        assert!(*v.last().unwrap() < v[0] / 20, "{v:?}");
    }

    #[test]
    fn addresses_stay_inside_the_matrix() {
        let cfg = GaussianConfig {
            n: 64,
            step_stride: 8,
        };
        let t = generate(cfg);
        let last = MATRIX_BASE + (64u64 * 64).div_ceil(ELEMS_PER_LINE);
        for step in &t.steps {
            for &a in step {
                assert!((MATRIX_BASE..=last).contains(&a), "address {a:#x}");
            }
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let a = generate(GaussianConfig::default());
        let b = generate(GaussianConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn element_lines_pack_32_per_line() {
        assert_eq!(element_line(64, 0, 0), element_line(64, 0, 31));
        assert_ne!(element_line(64, 0, 0), element_line(64, 0, 32));
    }
}
