//! Synthetic BFS memory-trace generator (the Rodinia `bfs` stand-in).
//!
//! Breadth-first search is the paper's example of a workload with strong
//! phase behaviour: per-level traffic follows the frontier size, which grows
//! explosively and then collapses. The generator builds a seeded random
//! graph, runs a real level-synchronous BFS, and records the line addresses a
//! GPU implementation would touch each level: frontier reads, row-pointer and
//! edge-list reads, and visited-flag updates.

use crate::trace::MemoryTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic BFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsConfig {
    /// Number of graph nodes.
    pub nodes: usize,
    /// Average out-degree.
    pub avg_degree: usize,
}

impl Default for BfsConfig {
    fn default() -> Self {
        Self {
            nodes: 20_000,
            avg_degree: 8,
        }
    }
}

/// Byte regions of the BFS data structures, in cache lines (disjoint bases so
/// different structures hash independently).
const ROW_PTR_BASE: u64 = 0x1000_0000;
const EDGE_BASE: u64 = 0x2000_0000;
const VISITED_BASE: u64 = 0x3000_0000;
/// 32 four-byte node ids per 128 B line.
const IDS_PER_LINE: u64 = 32;

/// Generates the BFS trace: one time step per BFS level.
///
/// # Panics
///
/// Panics if `cfg.nodes` is zero.
pub fn generate(cfg: BfsConfig, seed: u64) -> MemoryTrace {
    assert!(cfg.nodes > 0, "graph must have nodes");
    let mut rng = StdRng::seed_from_u64(seed);

    // Random graph in CSR form.
    let mut row_ptr = Vec::with_capacity(cfg.nodes + 1);
    let mut edges: Vec<u32> = Vec::with_capacity(cfg.nodes * cfg.avg_degree);
    row_ptr.push(0u32);
    for _ in 0..cfg.nodes {
        let degree = rng.gen_range(0..=2 * cfg.avg_degree);
        for _ in 0..degree {
            edges.push(rng.gen_range(0..cfg.nodes) as u32);
        }
        row_ptr.push(edges.len() as u32);
    }

    // Level-synchronous BFS from node 0, recording per-level accesses.
    let mut visited = vec![false; cfg.nodes];
    let mut frontier: Vec<u32> = vec![0];
    visited[0] = true;
    let mut steps = Vec::new();
    while !frontier.is_empty() {
        let mut accesses = Vec::new();
        let mut next = Vec::new();
        for &u in &frontier {
            let u = u as usize;
            // Row-pointer read.
            accesses.push(ROW_PTR_BASE + u as u64 / IDS_PER_LINE);
            for e in row_ptr[u]..row_ptr[u + 1] {
                // Edge-list read.
                accesses.push(EDGE_BASE + u64::from(e) / IDS_PER_LINE);
                let v = edges[e as usize] as usize;
                // Visited-flag read/update.
                accesses.push(VISITED_BASE + v as u64 / IDS_PER_LINE);
                if !visited[v] {
                    visited[v] = true;
                    next.push(v as u32);
                }
            }
        }
        steps.push(accesses);
        frontier = next;
    }

    MemoryTrace {
        name: "bfs".into(),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_has_explosive_then_collapsing_phases() {
        let t = generate(BfsConfig::default(), 1);
        let volume = t.volume_profile();
        assert!(volume.len() >= 3, "expected several levels: {volume:?}");
        let peak = volume.iter().cloned().max().unwrap();
        assert!(peak > 20 * volume[0], "frontier should explode: {volume:?}");
        assert!(
            *volume.last().unwrap() < peak / 10,
            "frontier should collapse: {volume:?}"
        );
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let a = generate(BfsConfig::default(), 7);
        let b = generate(BfsConfig::default(), 7);
        assert_eq!(a, b);
        let c = generate(BfsConfig::default(), 8);
        assert_ne!(a.total_accesses(), c.total_accesses());
    }

    #[test]
    fn addresses_come_from_the_three_structures() {
        let t = generate(
            BfsConfig {
                nodes: 500,
                avg_degree: 4,
            },
            2,
        );
        for step in &t.steps {
            for &a in step {
                assert!(
                    (ROW_PTR_BASE..ROW_PTR_BASE + 0x1000_0000).contains(&a)
                        || (EDGE_BASE..EDGE_BASE + 0x1000_0000).contains(&a)
                        || (VISITED_BASE..VISITED_BASE + 0x1000_0000).contains(&a)
                );
            }
        }
    }

    #[test]
    fn most_nodes_are_reached() {
        let cfg = BfsConfig::default();
        let t = generate(cfg, 3);
        // With avg degree 8 the giant component covers nearly everything, so
        // total visited-flag traffic is near edge count.
        assert!(t.total_accesses() > cfg.nodes * cfg.avg_degree);
    }
}
