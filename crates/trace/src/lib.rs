//! `gnoc-trace`: a compact, versioned, delta-encoded, streamed trace format
//! for deterministic workload record/replay.
//!
//! A trace captures the *injected transfer stream* of a mesh, fabric, or
//! campaign run plus enough header context (schema version, device preset,
//! topology, seed, fault-plan hash) to re-instantiate the run. Because every
//! simulator in the workspace is a pure function of its configuration, fault
//! plan, and submission sequence, replaying the stream into an identically
//! configured simulator reproduces the original run bit for bit.
//!
//! # On-disk layout
//!
//! ```text
//! magic "GNOCTRC\0" (8 bytes)
//! schema version   (u32 LE)
//! chunk*           each: [type u8][payload len u32 LE][crc32 u32 LE][payload]
//! ```
//!
//! Chunk types: `1` header (exactly one, first), `2` events (zero or more),
//! `3` footer (exactly one, last). The CRC32 (IEEE) covers the type byte
//! plus the payload, so a bit flip anywhere in a chunk — including its type
//! tag — is detected. Events are delta-encoded LEB128 varints (zigzag for
//! the cycle delta), batched [`EVENTS_PER_CHUNK`] per chunk; the reader
//! streams one chunk at a time and never holds the full trace resident.
//!
//! # Truncation vs corruption
//!
//! The footer is written on [`TraceWriter::finish`] and fsynced by the
//! file-backed sinks, so its presence proves the capture completed. A trace
//! that ends cleanly mid-stream (crash, kill -9, partial copy) decodes as
//! [`TraceError::TruncatedTail`]: every complete chunk before the tail is
//! salvageable and callers are expected to warn and replay that prefix. A
//! chunk whose CRC, length, type, or varint framing is wrong decodes as
//! [`TraceError::CorruptChunk`] naming the chunk index and byte offset:
//! nothing after it can be trusted, and callers must refuse to replay.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Current trace schema version. Bump on any incompatible layout change;
/// readers reject other versions with [`TraceError::SchemaVersion`].
pub const TRACE_SCHEMA: u32 = 1;

/// File magic: identifies a gnoc trace before any version negotiation.
pub const TRACE_MAGIC: [u8; 8] = *b"GNOCTRC\0";

/// Events batched per chunk. Small enough that a truncated tail loses at
/// most this many events; large enough that framing overhead stays < 1%.
pub const EVENTS_PER_CHUNK: usize = 128;

/// Upper bound on a plausible chunk payload. A length field above this is
/// corruption, not a big chunk — events chunks encode at most
/// [`EVENTS_PER_CHUNK`] × ~40 bytes and the header/footer are far smaller.
const MAX_CHUNK_LEN: u32 = 1 << 20;

const CHUNK_HEADER: u8 = 1;
const CHUNK_EVENTS: u8 = 2;
const CHUNK_FOOTER: u8 = 3;

// ---------------------------------------------------------------------------
// Hashes
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit: the workspace's canonical content hash (same constants as
/// the serve cache keys), used here for fault-plan and stats digests.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// CRC32 (IEEE 802.3, reflected) over `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let low = crc & 1;
            crc >>= 1;
            if low != 0 {
                crc ^= 0xedb8_8320;
            }
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong opening or streaming a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Underlying I/O failure (not a format problem).
    Io(String),
    /// The file does not start with [`TRACE_MAGIC`] — not a gnoc trace.
    BadMagic {
        /// The bytes actually found (at most 8).
        found: Vec<u8>,
    },
    /// The trace was written by an incompatible schema version.
    SchemaVersion {
        /// Version stamped in the file.
        found: u32,
        /// The only version this reader speaks.
        supported: u32,
    },
    /// A chunk failed its CRC, length, type, or framing checks. Nothing at
    /// or after this chunk can be trusted.
    CorruptChunk {
        /// Zero-based chunk index (the header chunk is 0).
        chunk: u32,
        /// Byte offset of the chunk's type byte from the start of the file.
        offset: u64,
        /// Human-readable description of the specific check that failed.
        reason: String,
    },
    /// The trace ends before its footer: the capture was cut short. Every
    /// event already yielded came from a CRC-verified chunk and is safe to
    /// replay as the complete prefix.
    TruncatedTail {
        /// Zero-based index of the chunk the tail was lost from.
        chunk: u32,
        /// Byte offset where the truncation begins.
        offset: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "trace I/O error: {e}"),
            Self::BadMagic { found } => {
                write!(f, "not a gnoc trace (magic bytes {found:02x?})")
            }
            Self::SchemaVersion { found, supported } => write!(
                f,
                "trace schema version {found} is not supported (this build reads version {supported}); \
                 re-record the trace with a matching gnoc"
            ),
            Self::CorruptChunk {
                chunk,
                offset,
                reason,
            } => write!(
                f,
                "corrupt trace: chunk {chunk} at byte offset {offset}: {reason}"
            ),
            Self::TruncatedTail { chunk, offset } => write!(
                f,
                "trace truncated in chunk {chunk} at byte offset {offset} (no footer); \
                 the complete prefix before it is replayable"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Header / events / footer
// ---------------------------------------------------------------------------

/// What kind of run a trace captures — decides which replay driver applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A single reliable-mesh soak (`src_dev`/`dst_dev` are always 0).
    Mesh,
    /// A multi-device fabric soak.
    Fabric,
    /// A calibration campaign (no injected transfers; the header's preset,
    /// seed, and probe shape re-instantiate the run).
    Campaign,
}

impl TraceKind {
    fn code(self) -> u8 {
        match self {
            Self::Mesh => 0,
            Self::Fabric => 1,
            Self::Campaign => 2,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::Mesh),
            1 => Some(Self::Fabric),
            2 => Some(Self::Campaign),
            _ => None,
        }
    }

    /// Lowercase name, stable for display and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Mesh => "mesh",
            Self::Fabric => "fabric",
            Self::Campaign => "campaign",
        }
    }
}

/// Run context captured alongside the event stream: everything needed to
/// re-instantiate the recorded run (the fault plan itself travels separately
/// and is pinned by `plan_fnv`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Which replay driver this trace feeds.
    pub kind: TraceKind,
    /// Die mesh width.
    pub width: u32,
    /// Die mesh height.
    pub height: u32,
    /// Device count (1 for a plain mesh).
    pub devices: u32,
    /// Fabric topology name (empty for mesh/campaign traces).
    pub topology: String,
    /// Traffic/campaign seed.
    pub seed: u64,
    /// Transfers the recorded run injected (or campaign rows measured).
    pub transfers: u64,
    /// FNV-1a 64 of the fault plan's canonical JSON; 0 = no plan. Replay
    /// refuses a plan whose hash does not match.
    pub plan_fnv: u64,
    /// Device preset name for campaign traces.
    pub device: Option<String>,
    /// Campaign probe working-set lines (0 for mesh/fabric traces).
    pub lines: u32,
    /// Campaign probe samples per pair (0 for mesh/fabric traces).
    pub samples: u32,
}

impl TraceHeader {
    /// A mesh-soak header with campaign fields zeroed.
    #[must_use]
    pub fn mesh(width: u32, height: u32, seed: u64, transfers: u64, plan_fnv: u64) -> Self {
        Self {
            kind: TraceKind::Mesh,
            width,
            height,
            devices: 1,
            topology: String::new(),
            seed,
            transfers,
            plan_fnv,
            device: None,
            lines: 0,
            samples: 0,
        }
    }

    /// A fabric-soak header.
    #[must_use]
    pub fn fabric(
        devices: u32,
        topology: &str,
        width: u32,
        height: u32,
        seed: u64,
        transfers: u64,
        plan_fnv: u64,
    ) -> Self {
        Self {
            kind: TraceKind::Fabric,
            width,
            height,
            devices,
            topology: topology.to_owned(),
            seed,
            transfers,
            plan_fnv,
            device: None,
            lines: 0,
            samples: 0,
        }
    }

    /// A campaign header (no injected transfers; replay re-runs the
    /// campaign from these parameters and compares the stats digest).
    #[must_use]
    pub fn campaign(device: &str, seed: u64, lines: u32, samples: u32, plan_fnv: u64) -> Self {
        Self {
            kind: TraceKind::Campaign,
            width: 0,
            height: 0,
            devices: 1,
            topology: String::new(),
            seed,
            transfers: 0,
            plan_fnv,
            device: Some(device.to_owned()),
            lines,
            samples,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(self.kind.code());
        out.extend_from_slice(&self.width.to_le_bytes());
        out.extend_from_slice(&self.height.to_le_bytes());
        out.extend_from_slice(&self.devices.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.transfers.to_le_bytes());
        out.extend_from_slice(&self.plan_fnv.to_le_bytes());
        out.extend_from_slice(&self.lines.to_le_bytes());
        out.extend_from_slice(&self.samples.to_le_bytes());
        encode_str(&mut out, &self.topology);
        match &self.device {
            Some(d) => {
                out.push(1);
                encode_str(&mut out, d);
            }
            None => out.push(0),
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let kind = TraceKind::from_code(take_u8(payload, &mut pos)?)
            .ok_or_else(|| "unknown trace kind".to_owned())?;
        let width = take_u32(payload, &mut pos)?;
        let height = take_u32(payload, &mut pos)?;
        let devices = take_u32(payload, &mut pos)?;
        let seed = take_u64(payload, &mut pos)?;
        let transfers = take_u64(payload, &mut pos)?;
        let plan_fnv = take_u64(payload, &mut pos)?;
        let lines = take_u32(payload, &mut pos)?;
        let samples = take_u32(payload, &mut pos)?;
        let topology = take_str(payload, &mut pos)?;
        let device = match take_u8(payload, &mut pos)? {
            0 => None,
            1 => Some(take_str(payload, &mut pos)?),
            _ => return Err("bad device-preset flag".to_owned()),
        };
        if pos != payload.len() {
            return Err("trailing bytes in header".to_owned());
        }
        Ok(Self {
            kind,
            width,
            height,
            devices,
            topology,
            seed,
            transfers,
            plan_fnv,
            device,
            lines,
            samples,
        })
    }
}

/// One injected transfer. Mesh traces carry `src_dev == dst_dev == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulator cycle at submission (nondecreasing along the stream in
    /// every recorder, but zigzag-encoded so regressions still round-trip).
    pub cycle: u64,
    /// Source device.
    pub src_dev: u32,
    /// Source node within the source device's mesh.
    pub src: u32,
    /// Destination device.
    pub dst_dev: u32,
    /// Destination node within the destination device's mesh.
    pub dst: u32,
    /// Packet length in flits.
    pub flits: u32,
    /// Packet class code (0 = Request, 1 = Reply — mirrors `PacketClass`).
    pub class: u8,
}

/// Footer written by [`TraceWriter::finish`]: totals for cheap validation
/// plus the recorded run's stats digest for replay divergence checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFooter {
    /// Total events across all event chunks.
    pub events: u64,
    /// Number of event chunks.
    pub event_chunks: u32,
    /// FNV-1a 64 of the recorded run's canonical stats line; 0 = unknown.
    /// A replay whose stats hash differs is divergent.
    pub stats_fnv: u64,
}

impl TraceFooter {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20);
        out.extend_from_slice(&self.events.to_le_bytes());
        out.extend_from_slice(&self.event_chunks.to_le_bytes());
        out.extend_from_slice(&self.stats_fnv.to_le_bytes());
        out
    }

    fn decode(payload: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let events = take_u64(payload, &mut pos)?;
        let event_chunks = take_u32(payload, &mut pos)?;
        let stats_fnv = take_u64(payload, &mut pos)?;
        if pos != payload.len() {
            return Err("trailing bytes in footer".to_owned());
        }
        Ok(Self {
            events,
            event_chunks,
            stats_fnv,
        })
    }
}

// ---------------------------------------------------------------------------
// Primitive encoding helpers
// ---------------------------------------------------------------------------

fn encode_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("trace strings are short names");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take_u8(buf: &[u8], pos: &mut usize) -> Result<u8, String> {
    let b = *buf.get(*pos).ok_or("unexpected end of payload")?;
    *pos += 1;
    Ok(b)
}

fn take_u32(buf: &[u8], pos: &mut usize) -> Result<u32, String> {
    let end = pos.checked_add(4).filter(|&e| e <= buf.len());
    let end = end.ok_or("unexpected end of payload")?;
    let v = u32::from_le_bytes(buf[*pos..end].try_into().expect("4 bytes"));
    *pos = end;
    Ok(v)
}

fn take_u64(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let end = pos.checked_add(8).filter(|&e| e <= buf.len());
    let end = end.ok_or("unexpected end of payload")?;
    let v = u64::from_le_bytes(buf[*pos..end].try_into().expect("8 bytes"));
    *pos = end;
    Ok(v)
}

fn take_str(buf: &[u8], pos: &mut usize) -> Result<String, String> {
    let end = pos.checked_add(2).filter(|&e| e <= buf.len());
    let end = end.ok_or("unexpected end of payload")?;
    let len = u16::from_le_bytes(buf[*pos..end].try_into().expect("2 bytes")) as usize;
    *pos = end;
    let send = pos.checked_add(len).filter(|&e| e <= buf.len());
    let send = send.ok_or("string runs past payload")?;
    let s = std::str::from_utf8(&buf[*pos..send])
        .map_err(|_| "non-UTF-8 string".to_owned())?
        .to_owned();
    *pos = send;
    Ok(s)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    for shift in 0..10u32 {
        let byte = *buf.get(*pos).ok_or("varint runs past chunk")?;
        *pos += 1;
        let payload = u64::from(byte & 0x7f);
        if shift == 9 && payload > 1 {
            return Err("varint overflows u64".to_owned());
        }
        v |= payload << (7 * shift);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err("varint longer than 10 bytes".to_owned())
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming chunked writer. Events are buffered [`EVENTS_PER_CHUNK`] at a
/// time and flushed as CRC-framed chunks, so memory stays O(chunk) no
/// matter how long the capture runs.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    pending: Vec<u8>,
    pending_events: usize,
    last_cycle: u64,
    events: u64,
    event_chunks: u32,
}

fn write_chunk<W: Write>(sink: &mut W, kind: u8, payload: &[u8]) -> io::Result<()> {
    let mut crc_input = Vec::with_capacity(payload.len() + 1);
    crc_input.push(kind);
    crc_input.extend_from_slice(payload);
    let len = u32::try_from(payload.len()).expect("chunk payloads are bounded");
    sink.write_all(&[kind])?;
    sink.write_all(&len.to_le_bytes())?;
    sink.write_all(&crc32(&crc_input).to_le_bytes())?;
    sink.write_all(payload)
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace: writes the magic, schema version, and header chunk.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn new(mut sink: W, header: &TraceHeader) -> io::Result<Self> {
        sink.write_all(&TRACE_MAGIC)?;
        sink.write_all(&TRACE_SCHEMA.to_le_bytes())?;
        write_chunk(&mut sink, CHUNK_HEADER, &header.encode())?;
        Ok(Self {
            sink,
            pending: Vec::new(),
            pending_events: 0,
            last_cycle: 0,
            events: 0,
            event_chunks: 0,
        })
    }

    /// Appends one event, flushing a chunk when the batch fills.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn record(&mut self, ev: &TraceEvent) -> io::Result<()> {
        let delta = ev.cycle.wrapping_sub(self.last_cycle) as i64;
        self.last_cycle = ev.cycle;
        write_varint(&mut self.pending, zigzag(delta));
        write_varint(&mut self.pending, u64::from(ev.src_dev));
        write_varint(&mut self.pending, u64::from(ev.src));
        write_varint(&mut self.pending, u64::from(ev.dst_dev));
        write_varint(&mut self.pending, u64::from(ev.dst));
        write_varint(&mut self.pending, u64::from(ev.flits));
        self.pending.push(ev.class);
        self.pending_events += 1;
        self.events += 1;
        if self.pending_events >= EVENTS_PER_CHUNK {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.pending_events == 0 {
            return Ok(());
        }
        write_chunk(&mut self.sink, CHUNK_EVENTS, &self.pending)?;
        self.pending.clear();
        self.pending_events = 0;
        self.event_chunks += 1;
        Ok(())
    }

    /// Events recorded so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Flushes the last partial chunk, writes the footer, and returns the
    /// sink. `stats_fnv` is the recorded run's stats digest (0 = unknown).
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn finish(mut self, stats_fnv: u64) -> io::Result<W> {
        self.flush_chunk()?;
        let footer = TraceFooter {
            events: self.events,
            event_chunks: self.event_chunks,
            stats_fnv,
        };
        write_chunk(&mut self.sink, CHUNK_FOOTER, &footer.encode())?;
        Ok(self.sink)
    }
}

/// Records a trace straight to a `Vec<u8>` — the in-memory capture the
/// chaos replay oracle and reproducer embedding use.
#[must_use]
pub fn memory_writer(header: &TraceHeader) -> TraceWriter<Vec<u8>> {
    TraceWriter::new(Vec::new(), header).expect("writing to a Vec cannot fail")
}

// ---------------------------------------------------------------------------
// Tap: the sink simulators hold
// ---------------------------------------------------------------------------

enum TapSink {
    File(BufWriter<File>),
    Mem(Vec<u8>),
}

impl Write for TapSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Self::File(f) => f.write(buf),
            Self::Mem(v) => v.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Self::File(f) => f.flush(),
            Self::Mem(v) => v.flush(),
        }
    }
}

/// The record tap a simulator owns. Record errors are stashed sticky (the
/// simulation must never change behaviour because a disk filled up); the
/// driver checks [`TraceTap::error`] after the run and maps it to its I/O
/// exit path.
pub struct TraceTap {
    writer: Option<TraceWriter<TapSink>>,
    error: Option<String>,
}

impl fmt::Debug for TraceTap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceTap")
            .field("events", &self.events())
            .field("error", &self.error)
            .finish()
    }
}

impl TraceTap {
    /// A tap writing to `path` (buffered; [`TraceTap::finish_file`] fsyncs).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and header-write I/O errors.
    pub fn to_file(path: &Path, header: &TraceHeader) -> io::Result<Self> {
        let file = File::create(path)?;
        let writer = TraceWriter::new(TapSink::File(BufWriter::new(file)), header)?;
        Ok(Self {
            writer: Some(writer),
            error: None,
        })
    }

    /// A tap capturing to memory; retrieve with [`TraceTap::finish_bytes`].
    #[must_use]
    pub fn in_memory(header: &TraceHeader) -> Self {
        let writer = TraceWriter::new(TapSink::Mem(Vec::new()), header)
            .expect("writing to a Vec cannot fail");
        Self {
            writer: Some(writer),
            error: None,
        }
    }

    /// Records one event. Never fails: the first I/O error is stashed and
    /// all later events are dropped, keeping the simulation deterministic.
    pub fn record(&mut self, ev: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.record(ev) {
                self.error = Some(e.to_string());
            }
        }
    }

    /// Events recorded so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.writer.as_ref().map_or(0, TraceWriter::events)
    }

    /// The first record error, if any.
    #[must_use]
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Finishes a file-backed tap: footer, flush, and `fsync` so a
    /// finalized trace survives a crash right after record returns.
    ///
    /// # Errors
    ///
    /// Returns the sticky record error or any finalize I/O error.
    pub fn finish_file(mut self, stats_fnv: u64) -> Result<(), String> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let writer = self.writer.take().expect("tap finished once");
        match writer.finish(stats_fnv).map_err(|e| e.to_string())? {
            TapSink::File(buf) => {
                let file = buf.into_inner().map_err(|e| e.to_string())?;
                file.sync_all().map_err(|e| e.to_string())
            }
            TapSink::Mem(_) => Err("finish_file called on an in-memory tap".to_owned()),
        }
    }

    /// Finishes an in-memory tap and returns the encoded trace bytes.
    ///
    /// # Errors
    ///
    /// Returns the sticky record error (I/O on a Vec cannot fail).
    pub fn finish_bytes(mut self, stats_fnv: u64) -> Result<Vec<u8>, String> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let writer = self.writer.take().expect("tap finished once");
        match writer.finish(stats_fnv).map_err(|e| e.to_string())? {
            TapSink::Mem(bytes) => Ok(bytes),
            TapSink::File(_) => Err("finish_bytes called on a file tap".to_owned()),
        }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

enum ReaderState {
    /// Still streaming event chunks.
    Streaming,
    /// Footer seen and verified; `next_event` returns `Ok(None)`.
    Done,
    /// A terminal error was already returned once; `next_event` returns
    /// `Ok(None)` so drivers that looped past the error don't spin.
    Failed,
}

/// Streaming reader: holds one decoded chunk at a time. Yields every event
/// from CRC-verified chunks, then either `Ok(None)` (footer seen) or the
/// terminal [`TraceError`] once.
pub struct TraceReader<R: Read> {
    src: R,
    header: TraceHeader,
    footer: Option<TraceFooter>,
    /// Byte offset of the next unread byte.
    offset: u64,
    /// Index of the next chunk to read (the header chunk was 0).
    chunk: u32,
    /// Decoded payload of the current events chunk.
    buf: Vec<u8>,
    pos: usize,
    last_cycle: u64,
    events_seen: u64,
    event_chunks_seen: u32,
    state: ReaderState,
}

impl TraceReader<BufReader<File>> {
    /// Opens a trace file for streaming.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the file cannot be opened; otherwise the
    /// magic/schema/header failures of [`TraceReader::new`].
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let file = File::open(path)
            .map_err(|e| TraceError::Io(format!("cannot open {}: {e}", path.display())))?;
        Self::new(BufReader::new(file))
    }
}

impl TraceReader<io::Cursor<Vec<u8>>> {
    /// Reads a trace from bytes already in memory (reproducer embeds, the
    /// serve replay job, the chaos oracle).
    ///
    /// # Errors
    ///
    /// Same magic/schema/header failures as [`TraceReader::new`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, TraceError> {
        Self::new(io::Cursor::new(bytes))
    }
}

impl<R: Read> TraceReader<R> {
    /// Reads the magic, schema version, and header chunk, leaving the
    /// reader positioned at the first event chunk.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`], [`TraceError::SchemaVersion`], or the
    /// header chunk's corruption/truncation errors.
    pub fn new(mut src: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        let got = read_up_to(&mut src, &mut magic)?;
        if got < 8 || magic != TRACE_MAGIC {
            return Err(TraceError::BadMagic {
                found: magic[..got].to_vec(),
            });
        }
        let mut schema = [0u8; 4];
        if read_up_to(&mut src, &mut schema)? < 4 {
            return Err(TraceError::TruncatedTail {
                chunk: 0,
                offset: 8,
            });
        }
        let schema = u32::from_le_bytes(schema);
        if schema != TRACE_SCHEMA {
            return Err(TraceError::SchemaVersion {
                found: schema,
                supported: TRACE_SCHEMA,
            });
        }

        let mut offset = 12u64;
        let (kind, payload) = read_chunk(&mut src, 0, &mut offset)?;
        if kind != CHUNK_HEADER {
            return Err(TraceError::CorruptChunk {
                chunk: 0,
                offset: 12,
                reason: format!("expected header chunk, found type {kind}"),
            });
        }
        let header = TraceHeader::decode(&payload).map_err(|reason| TraceError::CorruptChunk {
            chunk: 0,
            offset: 12,
            reason,
        })?;
        Ok(Self {
            src,
            header,
            footer: None,
            offset,
            chunk: 1,
            buf: Vec::new(),
            pos: 0,
            last_cycle: 0,
            events_seen: 0,
            event_chunks_seen: 0,
            state: ReaderState::Streaming,
        })
    }

    /// The run context this trace was recorded under.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The footer, available once `next_event` has returned `Ok(None)`.
    #[must_use]
    pub fn footer(&self) -> Option<&TraceFooter> {
        self.footer.as_ref()
    }

    /// Events yielded so far.
    #[must_use]
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Yields the next event, `Ok(None)` at a verified footer, or the
    /// terminal error exactly once. After [`TraceError::TruncatedTail`]
    /// every previously yielded event is a CRC-verified prefix.
    ///
    /// # Errors
    ///
    /// [`TraceError::TruncatedTail`] (salvageable prefix) or
    /// [`TraceError::CorruptChunk`] / [`TraceError::Io`] (unusable).
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceError> {
        loop {
            match self.state {
                ReaderState::Done | ReaderState::Failed => return Ok(None),
                ReaderState::Streaming => {}
            }
            if self.pos < self.buf.len() {
                let chunk = self.chunk.saturating_sub(1);
                let offset = self.offset;
                let ev = decode_event(&self.buf, &mut self.pos, &mut self.last_cycle).map_err(
                    |reason| {
                        self.state = ReaderState::Failed;
                        TraceError::CorruptChunk {
                            chunk,
                            offset,
                            reason,
                        }
                    },
                )?;
                self.events_seen += 1;
                return Ok(Some(ev));
            }
            match self.read_next_chunk() {
                Ok(true) => {}
                Ok(false) => return Ok(None),
                Err(e) => {
                    self.state = ReaderState::Failed;
                    return Err(e);
                }
            }
        }
    }

    /// Loads the next chunk. `Ok(false)` means the footer was verified.
    fn read_next_chunk(&mut self) -> Result<bool, TraceError> {
        let chunk = self.chunk;
        let chunk_start = self.offset;
        let (kind, payload) = read_chunk(&mut self.src, chunk, &mut self.offset)?;
        self.chunk += 1;
        match kind {
            CHUNK_EVENTS => {
                self.buf = payload;
                self.pos = 0;
                self.event_chunks_seen += 1;
                Ok(true)
            }
            CHUNK_FOOTER => {
                let footer =
                    TraceFooter::decode(&payload).map_err(|reason| TraceError::CorruptChunk {
                        chunk,
                        offset: chunk_start,
                        reason,
                    })?;
                if footer.events != self.events_seen
                    || footer.event_chunks != self.event_chunks_seen
                {
                    return Err(TraceError::CorruptChunk {
                        chunk,
                        offset: chunk_start,
                        reason: format!(
                            "footer claims {} event(s) in {} chunk(s) but the stream held {} in {}",
                            footer.events,
                            footer.event_chunks,
                            self.events_seen,
                            self.event_chunks_seen
                        ),
                    });
                }
                // Anything after the footer is not part of the trace.
                let mut probe = [0u8; 1];
                if read_up_to(&mut self.src, &mut probe)? > 0 {
                    return Err(TraceError::CorruptChunk {
                        chunk: self.chunk,
                        offset: self.offset,
                        reason: "data after the footer chunk".to_owned(),
                    });
                }
                self.footer = Some(footer);
                self.state = ReaderState::Done;
                Ok(false)
            }
            CHUNK_HEADER => Err(TraceError::CorruptChunk {
                chunk,
                offset: chunk_start,
                reason: "second header chunk".to_owned(),
            }),
            other => Err(TraceError::CorruptChunk {
                chunk,
                offset: chunk_start,
                reason: format!("unknown chunk type {other}"),
            }),
        }
    }
}

fn decode_event(buf: &[u8], pos: &mut usize, last_cycle: &mut u64) -> Result<TraceEvent, String> {
    let delta = unzigzag(read_varint(buf, pos)?);
    let cycle = last_cycle.wrapping_add(delta as u64);
    *last_cycle = cycle;
    let src_dev = narrow_u32(read_varint(buf, pos)?, "src_dev")?;
    let src = narrow_u32(read_varint(buf, pos)?, "src")?;
    let dst_dev = narrow_u32(read_varint(buf, pos)?, "dst_dev")?;
    let dst = narrow_u32(read_varint(buf, pos)?, "dst")?;
    let flits = narrow_u32(read_varint(buf, pos)?, "flits")?;
    let class = *buf.get(*pos).ok_or("event runs past chunk")?;
    *pos += 1;
    if class > 1 {
        return Err(format!("packet class {class} out of range"));
    }
    Ok(TraceEvent {
        cycle,
        src_dev,
        src,
        dst_dev,
        dst,
        flits,
        class,
    })
}

fn narrow_u32(v: u64, field: &str) -> Result<u32, String> {
    u32::try_from(v).map_err(|_| format!("{field} does not fit in u32"))
}

/// Reads until `buf` is full or EOF; returns bytes read. Any mid-stream
/// I/O error is a hard error, not a truncation.
fn read_up_to<R: Read>(src: &mut R, buf: &mut [u8]) -> Result<usize, TraceError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match src.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(TraceError::Io(e.to_string())),
        }
    }
    Ok(filled)
}

/// Reads one framed chunk: `(type, payload)`. Truncation anywhere inside
/// the frame is [`TraceError::TruncatedTail`]; implausible lengths and CRC
/// mismatches are [`TraceError::CorruptChunk`].
fn read_chunk<R: Read>(
    src: &mut R,
    chunk: u32,
    offset: &mut u64,
) -> Result<(u8, Vec<u8>), TraceError> {
    let start = *offset;
    let mut frame = [0u8; 9];
    let got = read_up_to(src, &mut frame)?;
    if got < 9 {
        return Err(TraceError::TruncatedTail {
            chunk,
            offset: start + got as u64,
        });
    }
    let kind = frame[0];
    let len = u32::from_le_bytes(frame[1..5].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(frame[5..9].try_into().expect("4 bytes"));
    if len > MAX_CHUNK_LEN {
        return Err(TraceError::CorruptChunk {
            chunk,
            offset: start,
            reason: format!("implausible chunk length {len}"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_up_to(src, &mut payload)?;
    if got < payload.len() {
        return Err(TraceError::TruncatedTail {
            chunk,
            offset: start + 9 + got as u64,
        });
    }
    let mut crc_input = Vec::with_capacity(payload.len() + 1);
    crc_input.push(kind);
    crc_input.extend_from_slice(&payload);
    let actual = crc32(&crc_input);
    if actual != crc {
        return Err(TraceError::CorruptChunk {
            chunk,
            offset: start,
            reason: format!("crc mismatch (stored {crc:08x}, computed {actual:08x})"),
        });
    }
    *offset = start + 9 + u64::from(len);
    Ok((kind, payload))
}

// ---------------------------------------------------------------------------
// Replay driver contract
// ---------------------------------------------------------------------------

/// What a replay driver did with a trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Events successfully re-submitted.
    pub replayed: u64,
    /// `Some((chunk, offset))` when the trace was truncated and only the
    /// complete prefix was replayed — callers warn but proceed.
    pub truncated: Option<(u32, u64)>,
}

/// Why a replay driver refused to continue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The trace stream itself failed (corrupt chunk, I/O, bad schema).
    Trace(TraceError),
    /// A CRC-valid event does not fit the simulator being driven (wrong
    /// device/node range, wrong trace kind) — a crafted or mismatched trace.
    Event {
        /// Zero-based index of the offending event.
        index: u64,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Trace(e) => write!(f, "{e}"),
            Self::Event { index, reason } => {
                write!(f, "trace event {index} cannot be replayed: {reason}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> Self {
        Self::Trace(e)
    }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

/// What a full validation pass learned about a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Events in the verified prefix.
    pub events: u64,
    /// Event chunks in the verified prefix.
    pub event_chunks: u32,
    /// `true` when the footer was present and consistent.
    pub complete: bool,
    /// The footer's stats digest (0 when unknown or truncated).
    pub stats_fnv: u64,
    /// `(chunk, offset)` of the truncation, when `complete` is false.
    pub truncated: Option<(u32, u64)>,
}

/// Streams the whole trace, CRC-checking every chunk. Truncation is a
/// salvageable `Ok` (with `complete == false`); corruption is an `Err`.
///
/// # Errors
///
/// [`TraceError::CorruptChunk`] or [`TraceError::Io`].
pub fn validate_stream<R: Read>(reader: &mut TraceReader<R>) -> Result<TraceSummary, TraceError> {
    loop {
        match reader.next_event() {
            Ok(Some(_)) => {}
            Ok(None) => {
                let footer = reader.footer().copied();
                return Ok(TraceSummary {
                    events: reader.events_seen,
                    event_chunks: reader.event_chunks_seen,
                    complete: footer.is_some(),
                    stats_fnv: footer.map_or(0, |f| f.stats_fnv),
                    truncated: None,
                });
            }
            Err(TraceError::TruncatedTail { chunk, offset }) => {
                return Ok(TraceSummary {
                    events: reader.events_seen,
                    event_chunks: reader.event_chunks_seen,
                    complete: false,
                    stats_fnv: 0,
                    truncated: Some((chunk, offset)),
                });
            }
            Err(e) => return Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Hex transport (reproducer embeds, serve replay jobs)
// ---------------------------------------------------------------------------

/// Lowercase hex encoding for carrying trace bytes inside JSON artifacts.
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes [`to_hex`] output.
///
/// # Errors
///
/// Returns a description of the first malformed position.
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("hex string has odd length".to_owned());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks(2) {
        let hi = hex_val(pair[0]).ok_or_else(|| format!("bad hex byte {:?}", pair[0] as char))?;
        let lo = hex_val(pair[1]).ok_or_else(|| format!("bad hex byte {:?}", pair[1] as char))?;
        out.push(hi << 4 | lo);
    }
    Ok(out)
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> TraceHeader {
        TraceHeader::fabric(4, "ring", 6, 6, 42, 64, 0xdead_beef)
    }

    fn sample_events(n: usize) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| TraceEvent {
                cycle: (i as u64 / 7) * 3,
                src_dev: (i % 4) as u32,
                src: (i % 36) as u32,
                dst_dev: ((i + 1) % 4) as u32,
                dst: ((i * 5) % 36) as u32,
                flits: 1 + (i % 4) as u32,
                class: (i % 2) as u8,
            })
            .collect()
    }

    fn encode(events: &[TraceEvent], stats_fnv: u64) -> Vec<u8> {
        let mut w = memory_writer(&sample_header());
        for ev in events {
            w.record(ev).expect("vec write");
        }
        w.finish(stats_fnv).expect("finish")
    }

    #[test]
    fn round_trips_header_events_and_footer() {
        let events = sample_events(300); // > 2 chunks
        let bytes = encode(&events, 0x1234);
        let mut r = TraceReader::from_bytes(bytes).expect("open");
        assert_eq!(r.header(), &sample_header());
        let mut back = Vec::new();
        while let Some(ev) = r.next_event().expect("stream") {
            back.push(ev);
        }
        assert_eq!(back, events);
        let footer = r.footer().expect("footer");
        assert_eq!(footer.events, 300);
        assert_eq!(footer.event_chunks, 3);
        assert_eq!(footer.stats_fnv, 0x1234);
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode(&[], 7);
        let mut r = TraceReader::from_bytes(bytes).expect("open");
        assert_eq!(r.next_event().expect("stream"), None);
        assert_eq!(r.footer().expect("footer").events, 0);
    }

    #[test]
    fn truncation_salvages_the_complete_prefix() {
        let events = sample_events(300);
        let full = encode(&events, 0);
        // Cut every possible length; the reader must yield a verified
        // prefix (a multiple of the chunk batch, capped by the cut) and
        // then exactly one TruncatedTail — never a panic or a wrong event.
        for cut in 12..full.len() {
            let mut r = match TraceReader::from_bytes(full[..cut].to_vec()) {
                Ok(r) => r,
                Err(TraceError::TruncatedTail { .. }) => continue,
                Err(e) => panic!("cut {cut}: unexpected open error {e}"),
            };
            let mut got = 0usize;
            let err = loop {
                match r.next_event() {
                    Ok(Some(ev)) => {
                        assert_eq!(ev, events[got], "cut {cut}: event {got} diverged");
                        got += 1;
                    }
                    Ok(None) => panic!("cut {cut}: truncated trace claimed completion"),
                    Err(e) => break e,
                }
            };
            assert!(
                matches!(err, TraceError::TruncatedTail { .. }),
                "cut {cut}: expected TruncatedTail, got {err}"
            );
            // A cut inside the footer yields every event; otherwise the
            // prefix ends on a chunk boundary (no partial chunk leaks).
            assert!(
                got.is_multiple_of(EVENTS_PER_CHUNK) || got == events.len(),
                "cut {cut}: partial chunk leaked ({got} events)"
            );
            // The error is terminal but not sticky-looping.
            assert_eq!(r.next_event().expect("post-error"), None);
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected_or_harmless() {
        let events = sample_events(40);
        let full = encode(&events, 0x77);
        for byte in 0..full.len() {
            for bit in 0..8 {
                let mut mutated = full.clone();
                mutated[byte] ^= 1 << bit;
                let mut r = match TraceReader::from_bytes(mutated) {
                    Ok(r) => r,
                    Err(_) => continue, // detected at open: fine
                };
                // Stream to the end; any outcome but a panic is allowed,
                // but a "successful" full read must be byte-faithful.
                let mut got = Vec::new();
                let complete = loop {
                    match r.next_event() {
                        Ok(Some(ev)) => got.push(ev),
                        Ok(None) => break r.footer().is_some(),
                        Err(_) => break false,
                    }
                };
                if complete {
                    assert_eq!(
                        got, events,
                        "byte {byte} bit {bit}: corruption slipped through undetected"
                    );
                }
            }
        }
    }

    #[test]
    fn crc_flip_names_the_chunk_and_offset() {
        let events = sample_events(200);
        let mut bytes = encode(&events, 0);
        // Flip one payload byte in the second events chunk. Layout:
        // 12-byte preamble, header chunk, then events chunks.
        let header_len = {
            let mut r = TraceReader::from_bytes(bytes.clone()).expect("open");
            r.next_event().expect("first");
            r.offset // after chunk 1 loaded
        };
        let target = header_len as usize + 12; // inside chunk 2's frame+payload
        bytes[target] ^= 0x40;
        let mut r = TraceReader::from_bytes(bytes).expect("open");
        let err = loop {
            match r.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("corruption not detected"),
                Err(e) => break e,
            }
        };
        match err {
            TraceError::CorruptChunk { chunk, offset, .. } => {
                assert_eq!(chunk, 2);
                assert!(offset > 0);
            }
            other => panic!("expected CorruptChunk, got {other}"),
        }
    }

    #[test]
    fn schema_bump_is_rejected_with_a_clear_error() {
        let mut bytes = encode(&sample_events(4), 0);
        bytes[8] = 2; // schema u32 LE at offset 8
        match TraceReader::from_bytes(bytes) {
            Err(TraceError::SchemaVersion { found, supported }) => {
                assert_eq!(found, 2);
                assert_eq!(supported, TRACE_SCHEMA);
            }
            Err(other) => panic!("expected SchemaVersion, got {other:?}"),
            Ok(_) => panic!("expected SchemaVersion, got a reader"),
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            TraceReader::from_bytes(b"NOTATRACE".to_vec()),
            Err(TraceError::BadMagic { .. })
        ));
    }

    #[test]
    fn footer_count_mismatch_is_corrupt() {
        // Hand-build a trace whose footer claims one extra event.
        let mut w = memory_writer(&sample_header());
        w.record(&sample_events(1)[0]).expect("vec write");
        let mut bytes = w.finish(0).expect("finish");
        // Rewrite the footer chunk with a wrong count but a valid CRC.
        let footer = TraceFooter {
            events: 2,
            event_chunks: 1,
            stats_fnv: 0,
        };
        // Find the footer chunk: it is the last 9 + 20 bytes.
        let cut = bytes.len() - (9 + 20);
        bytes.truncate(cut);
        write_chunk(&mut bytes, CHUNK_FOOTER, &footer.encode()).expect("vec write");
        let mut r = TraceReader::from_bytes(bytes).expect("open");
        r.next_event().expect("event");
        match r.next_event() {
            Err(TraceError::CorruptChunk { reason, .. }) => {
                assert!(reason.contains("footer claims"), "reason: {reason}");
            }
            other => panic!("expected CorruptChunk, got {other:?}"),
        }
    }

    #[test]
    fn data_after_footer_is_corrupt() {
        let mut bytes = encode(&sample_events(2), 0);
        bytes.push(0xaa);
        let mut r = TraceReader::from_bytes(bytes).expect("open");
        let err = loop {
            match r.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("trailing garbage accepted"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, TraceError::CorruptChunk { .. }));
    }

    #[test]
    fn validate_stream_reports_complete_and_truncated() {
        let full = encode(&sample_events(300), 0xabcd);
        let mut r = TraceReader::from_bytes(full.clone()).expect("open");
        let s = validate_stream(&mut r).expect("validate");
        assert!(s.complete);
        assert_eq!(s.events, 300);
        assert_eq!(s.stats_fnv, 0xabcd);

        let mut r = TraceReader::from_bytes(full[..full.len() - 5].to_vec()).expect("open");
        let s = validate_stream(&mut r).expect("validate");
        assert!(!s.complete);
        assert!(s.truncated.is_some());
        // The cut landed in the footer: every event chunk was intact.
        assert_eq!(s.events, 300);
    }

    #[test]
    fn tap_records_to_file_with_fsynced_footer() {
        let dir = std::env::temp_dir().join(format!("gnoc-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("tap.trc");
        let mut tap = TraceTap::to_file(&path, &sample_header()).expect("create");
        for ev in sample_events(10) {
            tap.record(&ev);
        }
        assert_eq!(tap.events(), 10);
        assert!(tap.error().is_none());
        tap.finish_file(99).expect("finish");
        let mut r = TraceReader::open(&path).expect("open");
        let s = validate_stream(&mut r).expect("validate");
        assert!(s.complete);
        assert_eq!(s.events, 10);
        assert_eq!(s.stats_fnv, 99);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hex_round_trips() {
        let bytes = encode(&sample_events(5), 3);
        let hex = to_hex(&bytes);
        assert_eq!(from_hex(&hex).expect("decode"), bytes);
        assert!(from_hex("0g").is_err());
        assert!(from_hex("abc").is_err());
    }

    #[test]
    fn varint_and_zigzag_round_trip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).expect("decode"), v);
            assert_eq!(pos, buf.len());
        }
        for d in [0i64, 1, -1, 1000, -1000, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }
}
