//! Argument parsing and command definitions for the `gnoc` CLI.
//!
//! Hand-rolled (no argument-parsing dependency): subcommand + `--flag value`
//! pairs, with typed validation. The parser lives in the library so it can
//! be unit-tested; `main.rs` only dispatches.

#![warn(missing_docs)]

use gnoc_chaos::ChaosConfig;
use gnoc_core::{
    CtaScheduler, FabricTopology, FaultGenConfig, FlakyBurst, GpuSpec, LatencyProbe, RegionFault,
};

/// Exit code: the command succeeded (for checks: the property holds).
pub const EXIT_OK: u8 = 0;
/// Exit code: the command ran but its check failed — `faults check` found an
/// invalid plan, `chaos run` saw an oracle fire, `chaos replay` still
/// reproduces the recorded failure.
pub const EXIT_CHECK_FAILED: u8 = 1;
/// Exit code: the input was unusable — unknown flags, malformed JSON, a
/// config that fails validation. Retrying without changing the input will
/// fail again.
pub const EXIT_INVALID_INPUT: u8 = 2;
/// Exit code: a filesystem read or write failed (missing file, permissions).
/// The input may be fine; retrying can succeed.
pub const EXIT_IO: u8 = 3;

/// Which preset GPU a command targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuChoice {
    /// The V100 preset.
    V100,
    /// The A100 preset (floor-swept product configuration, 108 SMs).
    A100,
    /// The full A100 die before floorsweeping (128 SMs).
    A100Full,
    /// The full die with the product floorsweep applied as a fault plan.
    A100Fs,
    /// The H100 preset.
    H100,
}

impl GpuChoice {
    /// Parses a GPU name (case-insensitive).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "v100" => Ok(Self::V100),
            "a100" => Ok(Self::A100),
            "a100full" => Ok(Self::A100Full),
            "a100fs" => Ok(Self::A100Fs),
            "h100" => Ok(Self::H100),
            other => Err(format!(
                "unknown GPU '{other}' (expected v100|a100|a100full|a100fs|h100)"
            )),
        }
    }

    /// The corresponding spec.
    pub fn spec(self) -> GpuSpec {
        match self {
            Self::V100 => GpuSpec::v100(),
            Self::A100 => GpuSpec::a100(),
            Self::A100Full => GpuSpec::a100_full(),
            Self::A100Fs => GpuSpec::a100_floorswept(),
            Self::H100 => GpuSpec::h100(),
        }
    }

    /// The preset name understood by checkpointed campaigns
    /// ([`gnoc_core::spec_for_preset`]).
    pub fn preset_name(self) -> &'static str {
        match self {
            Self::V100 => "v100",
            Self::A100 => "a100",
            Self::A100Full => "a100full",
            Self::A100Fs => "a100fs",
            Self::H100 => "h100",
        }
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `gnoc info <gpu>` — Table-I style device summary and floorplan.
    Info {
        /// Target device.
        gpu: GpuChoice,
    },
    /// `gnoc latency <gpu> [--sm N] [--seed S]` — Algorithm 1 profile.
    Latency {
        /// Target device.
        gpu: GpuChoice,
        /// Source SM id.
        sm: u32,
        /// Measurement seed.
        seed: u64,
    },
    /// `gnoc bandwidth <gpu> [--seed S]` — aggregates and input speedups.
    Bandwidth {
        /// Target device.
        gpu: GpuChoice,
        /// Measurement seed.
        seed: u64,
    },
    /// `gnoc placement <gpu> [--seed S]` — latency campaign + placement
    /// reverse engineering.
    Placement {
        /// Target device.
        gpu: GpuChoice,
        /// Measurement seed.
        seed: u64,
    },
    /// `gnoc attack <aes|rsa> [--gpu G] [--defend] [--seed S]`.
    Attack {
        /// Which published attack to reproduce.
        kind: AttackKind,
        /// Target device.
        gpu: GpuChoice,
        /// Victim scheduler (the defense toggle).
        scheduler: CtaScheduler,
        /// Experiment seed.
        seed: u64,
    },
    /// `gnoc mesh [--arbiter rr|age] [--seed S] [--transfers N]
    /// [--devices N] [--topology T]` — the Fig. 23 experiment, or (with
    /// `--faults`) retrying delivery over a degraded mesh. With
    /// `--devices ≥ 2` the soak runs cross-device over the inter-device
    /// fabric instead.
    Mesh {
        /// Arbitration policy.
        age_based: bool,
        /// Simulation seed.
        seed: u64,
        /// Transfers submitted in the faulted reliable-delivery run.
        transfers: usize,
        /// Hide the fault plan from routing and let the health layer detect
        /// and quarantine faults online (requires `--faults`).
        self_heal: bool,
        /// Devices coupled over the inter-device fabric (1 = single die,
        /// the classic experiment).
        devices: u32,
        /// Inter-device topology name (ignored when `devices == 1`).
        topology: String,
    },
    /// `gnoc fabric [--devices N] [--topology T] [--width W] [--height H]
    /// [--seed S] [--transfers N] [--cycles C] [--self-heal]` — a
    /// multi-GPU fabric soak: cross-device traffic over per-die meshes
    /// joined by the chosen inter-device topology, with fault-aware
    /// failover when a `--faults` plan is given, or (with `--self-heal`)
    /// the plan hidden from routing and per-link breakers quarantining
    /// what they detect.
    Fabric {
        /// Devices coupled over the fabric (≥ 2).
        devices: u32,
        /// Inter-device topology name.
        topology: String,
        /// Per-die mesh width.
        width: u32,
        /// Per-die mesh height.
        height: u32,
        /// Traffic seed.
        seed: u64,
        /// Transfers submitted.
        transfers: usize,
        /// Quiescence budget in cycles.
        cycles: u64,
        /// Hide the fault plan from fabric routing and let per-link
        /// breakers detect, quarantine, and fail over online.
        self_heal: bool,
    },
    /// `gnoc memsim [--provisioned] [--seed S]` — the Fig. 21 experiment.
    Memsim {
        /// Provision the reply interface (the real-GPU configuration).
        provisioned: bool,
        /// Simulation seed.
        seed: u64,
    },
    /// `gnoc covert [--gpu G] [--far] [--seed S]` — the slice-contention
    /// covert channel.
    Covert {
        /// Target device.
        gpu: GpuChoice,
        /// Place the transmitter on the far partition (weak-signal baseline).
        far: bool,
        /// Session seed.
        seed: u64,
    },
    /// `gnoc replay <bfs|gaussian> [--gpu G] [--random] [--blocks N]` —
    /// trace replay with execution-time estimation.
    Replay {
        /// Which workload trace to generate and replay.
        workload: WorkloadKind,
        /// Target device.
        gpu: GpuChoice,
        /// Use the random-seed scheduling defense.
        random: bool,
        /// Thread blocks per step.
        blocks: usize,
    },
    /// `gnoc loadcurve [--net mesh|xbar]` — offered-load vs latency sweep.
    LoadCurve {
        /// Sweep the hierarchical crossbar instead of the mesh.
        crossbar: bool,
        /// Simulation seed.
        seed: u64,
    },
    /// `gnoc stats <metrics.json>` — render a saved metrics registry.
    Stats {
        /// Path to a metrics JSON file written via `--metrics`.
        path: String,
    },
    /// `gnoc faults gen|check` — generate or validate fault-plan files.
    Faults {
        /// Generate a new plan or check an existing one.
        action: FaultsAction,
    },
    /// `gnoc campaign <gpu> [--seed S] [--checkpoint F] [--lines N]
    /// [--samples N]` — checkpointed (killable/resumable) latency campaign.
    Campaign {
        /// Target device preset.
        gpu: GpuChoice,
        /// Campaign seed.
        seed: u64,
        /// Checkpoint file rewritten after each completed SM row.
        checkpoint: Option<String>,
        /// Probe working-set lines per (SM, slice) pair.
        lines: usize,
        /// Probe samples per (SM, slice) pair.
        samples: usize,
        /// SMs to skip (quarantined): the campaign runs degraded and reports
        /// explicit partial coverage instead of failing.
        quarantine: Vec<u32>,
        /// Measured-row budget: stop after this many rows and salvage a
        /// partial result (deterministic, unlike a wall-clock deadline).
        deadline_rows: Option<usize>,
    },
    /// `gnoc chaos run|replay|shrink` — randomized fault-plan fuzzing with
    /// invariant oracles, reproducer replay, and ddmin re-shrinking.
    Chaos {
        /// Soak, replay one failure, or re-shrink a reproducer.
        action: ChaosAction,
    },
    /// `gnoc trace record|replay|validate|info` — deterministic run capture:
    /// record a soak or campaign into a versioned streamed trace, replay it
    /// byte-identically, or check a trace file without running anything.
    Trace {
        /// Record, replay, validate, or inspect.
        action: TraceAction,
    },
    /// `gnoc health [--width W] [--height H] [--cycles C] [--device G]
    /// [--windows N] [--seed S]` — online fault detection: run a
    /// self-healing mesh (the `--faults` plan applied but hidden from
    /// routing) and report what the health monitors detected and
    /// quarantined.
    Health {
        /// Mesh width.
        width: u32,
        /// Mesh height.
        height: u32,
        /// Mesh cycles to run detection for.
        cycles: u64,
        /// Also probe this device's L2 slices with the plan's disabled
        /// slices latent (unknown to the address map).
        device: Option<GpuChoice>,
        /// Health windows of slice probing when `--device` is given.
        windows: u64,
        /// Seed for the latent-fault device build.
        seed: u64,
    },
    /// `gnoc profile [--width W] [--height H] [--arbiter rr|age] [--seed S]
    /// [--transfers N] [--slowest K] [--devices N] [--topology T]
    /// [--report F] [--perfetto F] [--jsonl F] [--svg F]` — flight-record a
    /// mesh soak (faulted when `--faults` is given) and reduce it to stall
    /// attribution, per-link utilization heatmaps, and the critical paths
    /// of the slowest transfers. With `--devices ≥ 2` the soak runs
    /// cross-device and fabric-hop stalls get their own attribution class.
    Profile {
        /// Mesh width.
        width: u32,
        /// Mesh height.
        height: u32,
        /// Arbitration policy.
        age_based: bool,
        /// Traffic seed.
        seed: u64,
        /// Transfers submitted.
        transfers: usize,
        /// Critical paths kept (slowest K transfers).
        slowest: usize,
        /// Write the profile report JSON here.
        report: Option<String>,
        /// Write a Chrome trace-event JSON here (loadable in Perfetto).
        perfetto: Option<String>,
        /// Stream per-message lifecycle events (JSONL) here.
        jsonl: Option<String>,
        /// Write the per-router utilization heatmap as SVG here.
        svg: Option<String>,
        /// Devices coupled over the inter-device fabric (1 = single die).
        devices: u32,
        /// Inter-device topology name (ignored when `devices == 1`).
        topology: String,
    },
    /// `gnoc serve --state DIR [--socket PATH | --stdin] [--queue-cap N]
    /// [--session-cap N] [--max-rows N] [--max-seeds N] [--max-transfers N]
    /// [--row-delay-ms MS]` — the crash-safe measurement daemon: a bounded
    /// job queue over the worker pool, an fsynced journal, and a
    /// content-addressed result cache under `--state`.
    Serve {
        /// State directory (journal, cache, campaign checkpoints).
        state: String,
        /// Unix socket to listen on; `None` means `--stdin` line mode.
        socket: Option<String>,
        /// Pending-job bound before admission rejects new work.
        queue_cap: usize,
        /// In-flight bound per client session.
        session_cap: usize,
        /// Campaign row budget per job (0 = unlimited).
        max_rows: usize,
        /// Chaos seed budget per job (0 = unlimited).
        max_seeds: u64,
        /// Soak transfer budget per job (0 = unlimited).
        max_transfers: usize,
        /// Per-campaign-row sleep in ms (testing aid; widens kill windows).
        row_delay_ms: u64,
    },
    /// `gnoc submit <what> --socket PATH [--payload-out F] [--summary]` —
    /// send one request to a running daemon and print its response.
    Submit {
        /// Daemon socket path.
        socket: String,
        /// The request to send.
        what: SubmitWhat,
        /// Write the result payload bytes (exactly as computed) here.
        payload_out: Option<String>,
        /// Print only the payload's `summary` field (the one-shot CLI line).
        summary: bool,
    },
    /// `gnoc batch <file> --socket PATH` — submit each non-empty line of
    /// `file` as a request, in order; exits nonzero if any job fails.
    Batch {
        /// Daemon socket path.
        socket: String,
        /// File of request lines (the same JSON the line protocol takes).
        file: String,
    },
    /// `gnoc help` — usage.
    Help,
}

/// What `gnoc submit` sends.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitWhat {
    /// A raw protocol line, passed through verbatim (`--json`).
    Raw(String),
    /// A latency campaign job.
    Campaign {
        /// Target device preset.
        gpu: GpuChoice,
        /// Campaign seed.
        seed: u64,
        /// Probe working-set lines.
        lines: usize,
        /// Probe samples.
        samples: usize,
        /// Measured-row budget (degraded salvage), as in the one-shot CLI.
        deadline_rows: Option<usize>,
    },
    /// A reliable-mesh soak job.
    Mesh {
        /// Traffic seed.
        seed: u64,
        /// Transfers submitted.
        transfers: usize,
    },
    /// A chaos sweep job.
    Chaos {
        /// First seed.
        seed_start: u64,
        /// Seeds swept.
        seed_count: u64,
        /// Transfers per iteration.
        transfers: u32,
    },
    /// A multi-GPU fabric soak job.
    Fabric {
        /// Devices coupled.
        devices: u32,
        /// Inter-device topology name.
        topology: String,
        /// Traffic seed.
        seed: u64,
        /// Transfers submitted.
        transfers: usize,
    },
    /// A recorded-trace replay job; the trace file is read locally and
    /// shipped hex-encoded (the fault plan rides the global `--faults`).
    Replay {
        /// Path to the trace artifact to ship.
        trace: String,
    },
    /// The daemon's health snapshot.
    Health,
    /// Ask the daemon to drain and exit.
    Shutdown,
}

/// What `gnoc chaos` does.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosAction {
    /// Run a seeded soak: one iteration per seed, every oracle, failures
    /// shrunk and recorded.
    Run {
        /// Half-open seed range to fuzz.
        seeds: std::ops::Range<u64>,
        /// Iteration configuration (mesh geometry, load, device oracles).
        cfg: ChaosConfig,
        /// Resumable state file, rewritten after every iteration.
        state: Option<String>,
        /// Write the final report JSON to this path.
        report: Option<String>,
        /// Directory for reproducer JSON files.
        repro_dir: Option<String>,
        /// Wall-clock budget in milliseconds (stops between iterations).
        wall_ms: Option<u64>,
        /// Skip ddmin shrinking of failing plans.
        no_shrink: bool,
    },
    /// Re-run one recorded failure from a reproducer file; exits nonzero
    /// while the failure still reproduces.
    Replay {
        /// Reproducer JSON path.
        repro: String,
    },
    /// Re-shrink a reproducer's plan with ddmin and rewrite the file.
    Shrink {
        /// Reproducer JSON path.
        repro: String,
        /// Output path (defaults to rewriting the input).
        out: Option<String>,
    },
}

/// What `gnoc trace` does.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceAction {
    /// Run a deterministic soak or campaign and capture it into a trace.
    Record {
        /// Which run to capture.
        target: TraceTarget,
        /// Output trace path (chunked, CRC'd, fsynced on finalize).
        out: String,
        /// Also write the run's canonical stats line here (byte-identical
        /// between the recording and any faithful replay).
        stats: Option<String>,
    },
    /// Re-drive the run a trace captured and compare the outcome against
    /// the digest sealed in the trace footer.
    Replay {
        /// Trace file path.
        path: String,
        /// Write the replayed run's canonical stats line here.
        stats: Option<String>,
    },
    /// Stream a trace, CRC-checking every chunk, without running anything.
    Validate {
        /// Trace file path.
        path: String,
    },
    /// Print a trace's header context, event totals, and footer digest.
    Info {
        /// Trace file path.
        path: String,
    },
}

/// Which run `gnoc trace record` captures. Each target replicates the
/// corresponding one-shot subcommand exactly (same config, same traffic
/// stream), so a recording stands in for the run it taps.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceTarget {
    /// The `gnoc mesh --faults` soak: paper 6x6, round-robin arbitration.
    Mesh {
        /// Traffic seed.
        seed: u64,
        /// Transfers submitted.
        transfers: usize,
    },
    /// The `gnoc fabric` soak (fault-aware routing; self-heal runs are not
    /// recordable — their breaker poll loop is outside the trace).
    Fabric {
        /// Devices coupled (≥ 2).
        devices: u32,
        /// Inter-device topology name.
        topology: String,
        /// Per-die mesh width.
        width: u32,
        /// Per-die mesh height.
        height: u32,
        /// Traffic seed.
        seed: u64,
        /// Transfers submitted.
        transfers: usize,
        /// Quiescence budget in cycles.
        cycles: u64,
    },
    /// A latency campaign: a zero-event trace whose header re-instantiates
    /// the run and whose footer pins the latency-matrix digest.
    Campaign {
        /// Target device preset.
        gpu: GpuChoice,
        /// Campaign seed.
        seed: u64,
        /// Probe working-set lines per (SM, slice) pair.
        lines: usize,
        /// Probe samples per (SM, slice) pair.
        samples: usize,
    },
}

/// What `gnoc faults` does.
// One short-lived parse result per invocation; boxing the generation knobs
// would buy nothing but indirection in every construction site and test.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum FaultsAction {
    /// Generate a plan from knobs and write it to a JSON file.
    Gen {
        /// Output path for the plan JSON.
        out: String,
        /// Generation knobs.
        cfg: FaultGenConfig,
    },
    /// Load a plan file and validate it against a mesh (and optionally a
    /// slice count and a multi-device fabric).
    Check {
        /// Plan JSON path.
        path: String,
        /// Mesh width to validate against.
        width: u32,
        /// Mesh height to validate against.
        height: u32,
        /// L2 slice count to validate disabled slices against.
        slices: Option<u32>,
        /// Devices to validate the plan's fabric faults against
        /// (1 = single-die check; fabric faults then fail the check).
        devices: u32,
        /// Inter-device topology to validate against.
        topology: String,
    },
}

/// A parsed invocation: the subcommand plus the global flags
/// (`--trace <file.jsonl>`, `--metrics <file.json>`,
/// `--faults <plan.json>`, `--jobs N`, `--profile <file.json>`), which are
/// accepted by every subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The subcommand to run.
    pub command: Command,
    /// Stream trace events (JSONL, one object per line) to this path.
    pub trace: Option<String>,
    /// Write the metric registry (JSON) to this path on exit.
    pub metrics: Option<String>,
    /// Apply the fault plan at this path to the run (degraded devices for
    /// device subcommands, a faulted reliable mesh for `mesh`).
    pub faults: Option<String>,
    /// Worker count for parallel subcommands (`campaign`, `chaos run`);
    /// `None` falls back to `GNOC_JOBS`, then the machine
    /// ([`gnoc_core::resolve_jobs`]). Never changes results, only wall time.
    pub jobs: Option<usize>,
    /// Flight-record the run and write a stall-attribution profile (JSON,
    /// with a Chrome trace alongside it at `<file>.trace.json`) to this
    /// path. Supported by `mesh`, `campaign`, and `chaos run`; recording
    /// never changes any printed or written result.
    pub profile: Option<String>,
    /// NoC core engine: `None` keeps the default (event, or the
    /// `GNOC_ENGINE` env var), `Some` forces it. Never changes results —
    /// the event engine is bit-identical to cycle-exact stepping — only
    /// wall time.
    pub engine: Option<EngineChoice>,
}

/// Which NoC core drives the simulation clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Step every cycle, including quiet ones (the reference core).
    Cycle,
    /// Skip provably-quiet spans in O(1) (the default core).
    Event,
}

/// Which workload `gnoc replay` generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Level-synchronous BFS.
    Bfs,
    /// Gaussian elimination.
    Gaussian,
}

/// Which attack `gnoc attack` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// The AES last-round key recovery.
    Aes,
    /// The RSA exponent-weight attack.
    Rsa,
}

/// Usage text.
pub const USAGE: &str = "\
gnoc — GPU NoC characterisation toolkit (paper reproduction)

USAGE:
    gnoc info       <v100|a100|a100full|a100fs|h100>
    gnoc latency    <gpu> [--sm N] [--seed S]
    gnoc bandwidth  <gpu> [--seed S]
    gnoc placement  <gpu> [--seed S]
    gnoc attack     <aes|rsa> [--gpu G] [--defend] [--seed S]
    gnoc mesh       [--arbiter rr|age] [--seed S] [--transfers N]
                    [--self-heal] [--devices N] [--topology T]
    gnoc fabric     [--devices N] [--topology p2p|line|ring|fully|switch]
                    [--width W] [--height H] [--seed S] [--transfers N]
                    [--cycles C] [--self-heal]
    gnoc memsim     [--provisioned] [--seed S]
    gnoc covert     [--gpu G] [--far] [--seed S]
    gnoc replay     <bfs|gaussian> [--gpu G] [--random] [--blocks N]
    gnoc loadcurve  [--net mesh|xbar] [--seed S]
    gnoc campaign   <gpu> [--seed S] [--checkpoint ckpt.json]
                    [--lines N] [--samples N]
                    [--quarantine-sms 3,17,40] [--deadline-rows N]
    gnoc health     [--width W] [--height H] [--cycles C]
                    [--device G|none] [--windows N] [--seed S]
    gnoc faults     gen --out plan.json [--seed S] [--width W] [--height H]
                    [--dead-frac F] [--flaky N] [--flaky-prob P]
                    [--stalls N] [--stall-cycles C] [--drop-prob P]
                    [--corrupt-prob P] [--onset C] [--storm-span C]
                    [--region-radius K] [--region-center R] [--region-frac F]
                    [--burst N] [--burst-prob P] [--burst-onset C]
                    [--slices N] [--disable-slices N]
                    [--devices N] [--topology T] [--dead-fabric-links N]
                    [--flaky-fabric-links N] [--fabric-flaky-prob P]
                    [--dead-devices N] [--dead-switch]
    gnoc faults     check <plan.json> [--width W] [--height H] [--slices N]
                    [--devices N] [--topology T]
    gnoc chaos      run [--seeds A..B] [--width W] [--height H]
                    [--transfers N] [--cycles C] [--device G|none]
                    [--device-every N] [--lines N] [--samples N]
                    [--state chaos.json] [--report report.json]
                    [--repro-dir DIR] [--wall-ms MS] [--no-shrink]
                    [--greedy-bug] [--detect] [--replay]
                    [--devices N] [--topology T] [--fabric-stuck-bug]
    gnoc chaos      replay --repro repro.json
    gnoc chaos      shrink --repro repro.json [--out min.json]
    gnoc trace      record mesh --out run.trace [--seed S] [--transfers N]
                    [--stats stats.json]
    gnoc trace      record fabric --out run.trace [--devices N]
                    [--topology T] [--width W] [--height H] [--seed S]
                    [--transfers N] [--cycles C]
    gnoc trace      record campaign <gpu> --out run.trace [--seed S]
                    [--lines N] [--samples N]
    gnoc trace      replay <run.trace> [--stats stats.json]
    gnoc trace      validate <run.trace>
    gnoc trace      info <run.trace>
    gnoc profile    [--width W] [--height H] [--arbiter rr|age] [--seed S]
                    [--transfers N] [--slowest K] [--report prof.json]
                    [--perfetto trace.json] [--jsonl events.jsonl]
                    [--svg util.svg] [--devices N] [--topology T]
    gnoc stats      <metrics.json>
    gnoc serve      --state DIR (--socket PATH | --stdin) [--queue-cap N]
                    [--session-cap N] [--max-rows N] [--max-seeds N]
                    [--max-transfers N] [--row-delay-ms MS]
    gnoc submit     <campaign <gpu>|mesh|chaos|fabric|replay <run.trace>
                    |health|shutdown>
                    --socket PATH [op flags] [--payload-out F] [--summary]
    gnoc submit     --socket PATH --json '<request line>'
    gnoc batch      <requests.jsonl> --socket PATH
    gnoc help

GLOBAL FLAGS (every subcommand):
    --trace <file.jsonl>    stream structured trace events (virtual-nvprof)
    --metrics <file.json>   write the metric registry on exit
    --faults <plan.json>    inject the fault plan: device subcommands run on
                            the degraded device; mesh runs retrying delivery
                            over the faulted fabric; campaign checkpoints
                            embed the plan
    --jobs <N>              worker threads for campaign and chaos run
                            (default: GNOC_JOBS, then all cores). Results are
                            bit-identical for any N; only wall time changes
    --profile <file.json>   flight-record the run and write a
                            stall-attribution profile (mesh, campaign,
                            chaos run); a Chrome trace loadable at
                            ui.perfetto.dev lands at <file>.trace.json.
                            Timestamps are virtual cycles, so recorded runs
                            stay bit-identical to unrecorded ones
    --engine <cycle|event>  NoC core: event (default) skips provably-quiet
                            cycles in O(1); cycle steps every cycle. Results
                            are bit-identical either way — stats, profiles,
                            figures, and chaos reports match byte for byte —
                            only wall time changes. GNOC_ENGINE=cycle sets
                            the same default from the environment

PROFILING:
    gnoc profile flight-records a mesh soak: every message gets a causal
    lifecycle record (inject, per-hop arbitration/backpressure/serialization
    stalls, deliver or lost) in virtual cycles. The report attributes every
    stalled cycle to its cause per link and router, and extracts the
    critical path of the slowest transfers. --faults profiles a degraded
    mesh; the same recorder backs the global --profile flag.

SELF-HEALING:
    gnoc health runs online fault detection: the --faults plan is applied
    physically but hidden from routing; per-link circuit breakers infer
    faults from drop counters and quarantine them (with --device, per-slice
    breakers probe L2 latencies the same way). gnoc mesh --self-heal runs
    the retrying-delivery experiment in the same mode. gnoc campaign
    --quarantine-sms runs degraded (skipped SMs, explicit partial coverage);
    --deadline-rows caps measured rows and salvages a partial result.

MULTI-GPU FABRIC:
    --devices N --topology T (mesh, fabric, profile, chaos run) couple N
    per-die meshes over an inter-device fabric: p2p, line, ring, fully
    (all-to-all), or switch (central crossbar). A cross-device transfer
    runs source die -> egress port -> fabric hops -> ingress port ->
    destination die; fabric links serialize flits an order of magnitude
    slower than die links. Routing fails over around dead links, a dead
    switch, or lost devices; severed traffic is reported lost-partitioned,
    never hung. gnoc fabric --self-heal hides the plan from routing and
    per-link breakers quarantine what they detect (quarantines that would
    partition the fabric are refused and reported).

TRACE RECORD/REPLAY:
    gnoc trace record captures a run's injected transfer stream into a
    compact, versioned, delta-encoded trace: chunked writes with a per-chunk
    CRC and an fsynced footer, so a capture killed mid-run loses at most its
    unflushed tail, never its prefix. The header pins the run's context
    (schema, geometry, topology, seed, fault-plan digest); the footer seals
    a digest of the final stats. gnoc trace replay rebuilds the run from the
    header (pass the same --faults plan; a mismatched plan is refused),
    re-injects the stream, and compares the outcome digest — byte-identical
    across --jobs counts and both --engine cores. A truncated trace replays
    its complete prefix with a warning; a corrupt chunk is named (index and
    byte offset) and fails. chaos run --replay turns the same machinery
    into a per-seed oracle, and failing seeds embed a replayable trace in
    their reproducers. The daemon accepts {\"op\":\"replay\"} jobs over the
    same trace bytes (hex-encoded).

SERVING:
    gnoc serve runs the measurement engines as a long-lived daemon: jobs
    are journaled (fsynced) before they run, results land in a
    content-addressed cache keyed by the request's canonical form, and a
    bounded queue rejects overload with an explicit reason instead of
    stalling. Kill -9 the daemon and restart it: the journal replays,
    checkpointed campaigns resume from their last completed row, and the
    finished payload is byte-identical to an uninterrupted run. SIGTERM
    (socket mode) or EOF (--stdin mode) drains gracefully instead.

    The line protocol is JSON, one request per line, e.g.:
      {\"schema\":1,\"op\":\"campaign\",\"device\":\"v100\",\"seed\":7}
      {\"schema\":1,\"op\":\"mesh\",\"seed\":1,\"transfers\":200}
      {\"schema\":1,\"op\":\"chaos\",\"seed_start\":0,\"seed_count\":4}
      {\"schema\":1,\"op\":\"fabric\",\"devices\":2,\"topology\":\"ring\"}
      {\"schema\":1,\"op\":\"replay\",\"trace\":\"<hex trace bytes>\"}
      {\"schema\":1,\"op\":\"health\"}
      {\"schema\":1,\"op\":\"shutdown\"}
    Responses are envelopes: {\"type\":\"accepted\",\"job\":N} then
    {\"type\":\"done\",\"cached\":B,\"resumed_rows\":N,\"payload\":{...}},
    or {\"type\":\"failed\",...} / {\"type\":\"rejected\",\"reason\":...}.
    A given request's payload bytes are identical cold, cached, resumed
    after a crash, and at any --jobs count. gnoc submit is the one-shot
    client (--payload-out captures the exact payload bytes; --summary
    prints the payload's one-line summary, which matches the equivalent
    one-shot subcommand's output); gnoc batch submits a file of request
    lines in order and exits with the worst per-request code.

EXIT CODES:
    0   success (checks: the property holds / no longer reproduces;
        submit: job done)
    1   check failed — invalid plan (faults check), oracle fired (chaos
        run), recorded failure still reproduces (chaos replay), corrupt
        trace chunk or divergent replay (gnoc trace), submitted job failed
        or was rejected by admission control
    2   invalid input — unknown flags, malformed JSON, bad config, a trace
        from an incompatible schema or recorded against a different fault
        plan, or a request the daemon rejected as invalid
    3   I/O error — a file could not be read or written, or the daemon
        socket could not be reached
";

/// Reads `--flag value` pairs and boolean `--flag`s from `args`.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn value_of(&self, flag: &str) -> Result<Option<&'a str>, String> {
        for (i, a) in self.args.iter().enumerate() {
            if a == flag {
                return match self.args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => Ok(Some(v)),
                    _ => Err(format!("flag {flag} needs a value")),
                };
            }
        }
        Ok(None)
    }

    fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    fn parse_num<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.value_of(flag)? {
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag {flag}: '{v}' is not a valid number")),
            None => Ok(default),
        }
    }
}

/// Parses a comma-separated SM list (e.g. `3,17,40`).
fn parse_sm_list(s: &str) -> Result<Vec<u32>, String> {
    s.split(',')
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| format!("flag --quarantine-sms: '{part}' is not a valid SM index"))
        })
        .collect()
}

/// Parses a half-open `A..B` seed range (e.g. `0..100`).
fn parse_seed_range(s: &str) -> Result<std::ops::Range<u64>, String> {
    let err = || format!("flag --seeds: '{s}' is not a half-open range like 0..100");
    let (lo, hi) = s.split_once("..").ok_or_else(err)?;
    let lo: u64 = lo.parse().map_err(|_| err())?;
    let hi: u64 = hi.parse().map_err(|_| err())?;
    if lo >= hi {
        return Err(format!("flag --seeds: range {lo}..{hi} is empty"));
    }
    Ok(lo..hi)
}

/// Parses the multi-device fabric flags shared by `mesh`, `fabric`,
/// `profile`, `chaos run`, and `faults check`: `--devices N` (defaulting to
/// `default_devices`) and `--topology T` (defaulting to `ring`), validating
/// the combination up front so a bad pairing (e.g. p2p with 3 devices)
/// fails at parse time with exit code 2.
fn parse_fabric_flags(flags: &Flags, default_devices: u32) -> Result<(u32, String), String> {
    let devices: u32 = flags.parse_num("--devices", default_devices)?;
    let topology = flags.value_of("--topology")?.unwrap_or("ring").to_owned();
    let Some(topo) = FabricTopology::parse(&topology) else {
        return Err(format!(
            "flag --topology: unknown topology '{topology}' (p2p|line|ring|fully|switch)"
        ));
    };
    if devices == 0 {
        return Err("flag --devices: device count must be >= 1".to_owned());
    }
    if devices >= 2 && !topo.supports_devices(devices) {
        return Err(format!(
            "flag --topology: {topology} does not support {devices} devices"
        ));
    }
    Ok((devices, topology))
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad GPU names, or
/// malformed flags.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    let flags = Flags { args: rest };
    if cmd == "stats" {
        let path = rest
            .first()
            .filter(|a| !a.starts_with("--"))
            .ok_or_else(|| "stats needs a metrics JSON path".to_owned())?;
        return Ok(Command::Stats { path: path.clone() });
    }
    let gpu_positional = || -> Result<GpuChoice, String> {
        rest.first()
            .filter(|a| !a.starts_with("--"))
            .ok_or_else(|| "missing GPU argument".to_owned())
            .and_then(|s| GpuChoice::parse(s))
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "info" => Ok(Command::Info {
            gpu: gpu_positional()?,
        }),
        "latency" => Ok(Command::Latency {
            gpu: gpu_positional()?,
            sm: flags.parse_num("--sm", 24u32)?,
            seed: flags.parse_num("--seed", 0u64)?,
        }),
        "bandwidth" => Ok(Command::Bandwidth {
            gpu: gpu_positional()?,
            seed: flags.parse_num("--seed", 0u64)?,
        }),
        "placement" => Ok(Command::Placement {
            gpu: gpu_positional()?,
            seed: flags.parse_num("--seed", 0u64)?,
        }),
        "attack" => {
            let kind = match rest.first().map(String::as_str) {
                Some("aes") => AttackKind::Aes,
                Some("rsa") => AttackKind::Rsa,
                other => return Err(format!("attack needs aes|rsa, got {other:?}")),
            };
            let gpu = match flags.value_of("--gpu")? {
                Some(g) => GpuChoice::parse(g)?,
                None => GpuChoice::A100,
            };
            let scheduler = if flags.has("--defend") {
                CtaScheduler::RandomSeed
            } else {
                CtaScheduler::Static
            };
            Ok(Command::Attack {
                kind,
                gpu,
                scheduler,
                seed: flags.parse_num("--seed", 42u64)?,
            })
        }
        "mesh" => {
            let age_based = match flags.value_of("--arbiter")? {
                None | Some("rr") => false,
                Some("age") => true,
                Some(other) => return Err(format!("unknown arbiter '{other}' (rr|age)")),
            };
            let (devices, topology) = parse_fabric_flags(&flags, 1)?;
            Ok(Command::Mesh {
                age_based,
                seed: flags.parse_num("--seed", 1u64)?,
                transfers: flags.parse_num("--transfers", 2000usize)?,
                self_heal: flags.has("--self-heal"),
                devices,
                topology,
            })
        }
        "fabric" => {
            let (devices, topology) = parse_fabric_flags(&flags, 2)?;
            if devices < 2 {
                return Err(
                    "fabric needs --devices >= 2 (use `gnoc mesh` for a single die)".to_owned(),
                );
            }
            Ok(Command::Fabric {
                devices,
                topology,
                width: flags.parse_num("--width", 5u32)?,
                height: flags.parse_num("--height", 5u32)?,
                seed: flags.parse_num("--seed", 1u64)?,
                transfers: flags.parse_num("--transfers", 256usize)?,
                cycles: flags.parse_num("--cycles", 60_000u64)?,
                self_heal: flags.has("--self-heal"),
            })
        }
        "memsim" => Ok(Command::Memsim {
            provisioned: flags.has("--provisioned"),
            seed: flags.parse_num("--seed", 1u64)?,
        }),
        "covert" => {
            let gpu = match flags.value_of("--gpu")? {
                Some(g) => GpuChoice::parse(g)?,
                None => GpuChoice::A100,
            };
            Ok(Command::Covert {
                gpu,
                far: flags.has("--far"),
                seed: flags.parse_num("--seed", 0u64)?,
            })
        }
        "replay" => {
            let workload = match rest.first().map(String::as_str) {
                Some("bfs") => WorkloadKind::Bfs,
                Some("gaussian") => WorkloadKind::Gaussian,
                other => return Err(format!("replay needs bfs|gaussian, got {other:?}")),
            };
            let gpu = match flags.value_of("--gpu")? {
                Some(g) => GpuChoice::parse(g)?,
                None => GpuChoice::V100,
            };
            Ok(Command::Replay {
                workload,
                gpu,
                random: flags.has("--random"),
                blocks: flags.parse_num("--blocks", 64usize)?,
            })
        }
        "campaign" => {
            let defaults = LatencyProbe::default();
            Ok(Command::Campaign {
                gpu: gpu_positional()?,
                seed: flags.parse_num("--seed", 0u64)?,
                checkpoint: flags.value_of("--checkpoint")?.map(str::to_owned),
                lines: flags.parse_num("--lines", defaults.working_set_lines)?,
                samples: flags.parse_num("--samples", defaults.samples)?,
                quarantine: match flags.value_of("--quarantine-sms")? {
                    Some(list) => parse_sm_list(list)?,
                    None => Vec::new(),
                },
                deadline_rows: match flags.value_of("--deadline-rows")? {
                    Some(v) => Some(v.parse().map_err(|_| {
                        format!("flag --deadline-rows: '{v}' is not a valid row count")
                    })?),
                    None => None,
                },
            })
        }
        "health" => {
            let device = match flags.value_of("--device")? {
                None | Some("none") => None,
                Some(g) => Some(GpuChoice::parse(g)?),
            };
            Ok(Command::Health {
                width: flags.parse_num("--width", 6u32)?,
                height: flags.parse_num("--height", 6u32)?,
                cycles: flags.parse_num("--cycles", 20_000u64)?,
                device,
                windows: flags.parse_num("--windows", 16u64)?,
                seed: flags.parse_num("--seed", 0u64)?,
            })
        }
        "faults" => {
            let action = match rest.first().map(String::as_str) {
                Some("gen") => {
                    let out = flags
                        .value_of("--out")?
                        .ok_or_else(|| "faults gen needs --out <plan.json>".to_owned())?
                        .to_owned();
                    FaultsAction::Gen {
                        out,
                        cfg: FaultGenConfig {
                            seed: flags.parse_num("--seed", 1u64)?,
                            width: flags.parse_num("--width", 6u32)?,
                            height: flags.parse_num("--height", 6u32)?,
                            dead_link_fraction: flags.parse_num("--dead-frac", 0.0f64)?,
                            flaky_links: flags.parse_num("--flaky", 0u32)?,
                            flaky_drop_prob: flags.parse_num("--flaky-prob", 0.01f64)?,
                            stalled_routers: flags.parse_num("--stalls", 0u32)?,
                            stall_duration: flags.parse_num("--stall-cycles", 256u64)?,
                            transient_drop_prob: flags.parse_num("--drop-prob", 0.0f64)?,
                            transient_corrupt_prob: flags.parse_num("--corrupt-prob", 0.0f64)?,
                            onset: flags.parse_num("--onset", 0u64)?,
                            onset_storm_span: flags.parse_num("--storm-span", 0u64)?,
                            region: match flags.parse_num("--region-radius", 0u32)? {
                                0 => None,
                                radius => Some(RegionFault {
                                    center: flags.parse_num("--region-center", 0u32)?,
                                    radius,
                                    dead_fraction: flags.parse_num("--region-frac", 0.5f64)?,
                                }),
                            },
                            burst: match flags.parse_num("--burst", 0u32)? {
                                0 => None,
                                links => Some(FlakyBurst {
                                    links,
                                    drop_prob: flags.parse_num("--burst-prob", 0.25f64)?,
                                    onset: flags.parse_num("--burst-onset", 0u64)?,
                                }),
                            },
                            num_slices: flags.parse_num("--slices", 0u32)?,
                            disabled_slice_count: flags.parse_num("--disable-slices", 0u32)?,
                            sweep: None,
                            devices: flags.parse_num("--devices", 0u32)?,
                            fabric_topology: match flags.value_of("--topology")? {
                                None => FabricTopology::Ring,
                                Some(s) => FabricTopology::parse(s).ok_or_else(|| {
                                    format!(
                                        "flag --topology: unknown topology '{s}' \
                                         (p2p|line|ring|fully|switch)"
                                    )
                                })?,
                            },
                            dead_fabric_links: flags.parse_num("--dead-fabric-links", 0u32)?,
                            flaky_fabric_links: flags.parse_num("--flaky-fabric-links", 0u32)?,
                            fabric_flaky_drop_prob: flags
                                .parse_num("--fabric-flaky-prob", 0.25f64)?,
                            dead_devices: flags.parse_num("--dead-devices", 0u32)?,
                            dead_switch: flags.has("--dead-switch"),
                        },
                    }
                }
                Some("check") => {
                    let path = rest
                        .get(1)
                        .filter(|a| !a.starts_with("--"))
                        .ok_or_else(|| "faults check needs a plan path".to_owned())?
                        .clone();
                    let (devices, topology) = parse_fabric_flags(&flags, 1)?;
                    FaultsAction::Check {
                        path,
                        width: flags.parse_num("--width", 6u32)?,
                        height: flags.parse_num("--height", 6u32)?,
                        slices: flags.parse_num("--slices", 0u32).map(|n| match n {
                            0 => None,
                            n => Some(n),
                        })?,
                        devices,
                        topology,
                    }
                }
                other => return Err(format!("faults needs gen|check, got {other:?}")),
            };
            Ok(Command::Faults { action })
        }
        "chaos" => {
            let action = match rest.first().map(String::as_str) {
                Some("run") => {
                    let defaults = ChaosConfig::default();
                    let device = match flags.value_of("--device")? {
                        None => defaults.device.clone(),
                        Some("none") => None,
                        Some(g) => Some(GpuChoice::parse(g)?.preset_name().to_owned()),
                    };
                    let (devices, topology) = parse_fabric_flags(&flags, defaults.devices)?;
                    ChaosAction::Run {
                        seeds: match flags.value_of("--seeds")? {
                            Some(s) => parse_seed_range(s)?,
                            None => 0..25,
                        },
                        cfg: ChaosConfig {
                            width: flags.parse_num("--width", defaults.width)?,
                            height: flags.parse_num("--height", defaults.height)?,
                            transfers: flags.parse_num("--transfers", defaults.transfers)?,
                            soak_cycle_budget: flags
                                .parse_num("--cycles", defaults.soak_cycle_budget)?,
                            device,
                            device_every: flags
                                .parse_num("--device-every", defaults.device_every)?,
                            probe_lines: flags.parse_num("--lines", defaults.probe_lines)?,
                            probe_samples: flags.parse_num("--samples", defaults.probe_samples)?,
                            retry: defaults.retry,
                            greedy_reroute_bug: flags.has("--greedy-bug"),
                            fabric_stuck_crossing_bug: flags.has("--fabric-stuck-bug"),
                            detection: flags.has("--detect"),
                            replay: flags.has("--replay"),
                            devices,
                            topology,
                        },
                        state: flags.value_of("--state")?.map(str::to_owned),
                        report: flags.value_of("--report")?.map(str::to_owned),
                        repro_dir: flags.value_of("--repro-dir")?.map(str::to_owned),
                        wall_ms: match flags.value_of("--wall-ms")? {
                            Some(v) => Some(v.parse().map_err(|_| {
                                format!("flag --wall-ms: '{v}' is not a valid number")
                            })?),
                            None => None,
                        },
                        no_shrink: flags.has("--no-shrink"),
                    }
                }
                Some("replay") => ChaosAction::Replay {
                    repro: flags
                        .value_of("--repro")?
                        .ok_or_else(|| "chaos replay needs --repro <repro.json>".to_owned())?
                        .to_owned(),
                },
                Some("shrink") => ChaosAction::Shrink {
                    repro: flags
                        .value_of("--repro")?
                        .ok_or_else(|| "chaos shrink needs --repro <repro.json>".to_owned())?
                        .to_owned(),
                    out: flags.value_of("--out")?.map(str::to_owned),
                },
                other => return Err(format!("chaos needs run|replay|shrink, got {other:?}")),
            };
            Ok(Command::Chaos { action })
        }
        "trace" => {
            // replay/validate/info take the trace path positionally, after
            // the verb.
            let trace_positional = |verb: &str| -> Result<String, String> {
                rest.get(1)
                    .filter(|a| !a.starts_with("--"))
                    .cloned()
                    .ok_or_else(|| format!("trace {verb} needs a trace file path"))
            };
            let action = match rest.first().map(String::as_str) {
                Some("record") => {
                    let out = flags
                        .value_of("--out")?
                        .ok_or_else(|| "trace record needs --out <run.trace>".to_owned())?
                        .to_owned();
                    let stats = flags.value_of("--stats")?.map(str::to_owned);
                    let target = match rest.get(1).map(String::as_str) {
                        Some("mesh") => TraceTarget::Mesh {
                            seed: flags.parse_num("--seed", 1u64)?,
                            transfers: flags.parse_num("--transfers", 2000usize)?,
                        },
                        Some("fabric") => {
                            let (devices, topology) = parse_fabric_flags(&flags, 2)?;
                            if devices < 2 {
                                return Err("trace record fabric needs --devices >= 2 \
                                     (use `trace record mesh` for a single die)"
                                    .to_owned());
                            }
                            TraceTarget::Fabric {
                                devices,
                                topology,
                                width: flags.parse_num("--width", 5u32)?,
                                height: flags.parse_num("--height", 5u32)?,
                                seed: flags.parse_num("--seed", 1u64)?,
                                transfers: flags.parse_num("--transfers", 256usize)?,
                                cycles: flags.parse_num("--cycles", 60_000u64)?,
                            }
                        }
                        Some("campaign") => {
                            let defaults = LatencyProbe::default();
                            TraceTarget::Campaign {
                                gpu: rest
                                    .get(2)
                                    .filter(|a| !a.starts_with("--"))
                                    .ok_or_else(|| {
                                        "trace record campaign needs a GPU argument".to_owned()
                                    })
                                    .and_then(|s| GpuChoice::parse(s))?,
                                seed: flags.parse_num("--seed", 0u64)?,
                                lines: flags.parse_num("--lines", defaults.working_set_lines)?,
                                samples: flags.parse_num("--samples", defaults.samples)?,
                            }
                        }
                        other => {
                            return Err(format!(
                                "trace record needs mesh|fabric|campaign, got {other:?}"
                            ))
                        }
                    };
                    TraceAction::Record { target, out, stats }
                }
                Some("replay") => TraceAction::Replay {
                    path: trace_positional("replay")?,
                    stats: flags.value_of("--stats")?.map(str::to_owned),
                },
                Some("validate") => TraceAction::Validate {
                    path: trace_positional("validate")?,
                },
                Some("info") => TraceAction::Info {
                    path: trace_positional("info")?,
                },
                other => {
                    return Err(format!(
                        "trace needs record|replay|validate|info, got {other:?}"
                    ))
                }
            };
            Ok(Command::Trace { action })
        }
        "profile" => {
            let age_based = match flags.value_of("--arbiter")? {
                None | Some("rr") => false,
                Some("age") => true,
                Some(other) => return Err(format!("unknown arbiter '{other}' (rr|age)")),
            };
            let (devices, topology) = parse_fabric_flags(&flags, 1)?;
            Ok(Command::Profile {
                width: flags.parse_num("--width", 6u32)?,
                height: flags.parse_num("--height", 6u32)?,
                age_based,
                seed: flags.parse_num("--seed", 1u64)?,
                transfers: flags.parse_num("--transfers", 2000usize)?,
                slowest: flags.parse_num("--slowest", 5usize)?,
                report: flags.value_of("--report")?.map(str::to_owned),
                perfetto: flags.value_of("--perfetto")?.map(str::to_owned),
                jsonl: flags.value_of("--jsonl")?.map(str::to_owned),
                svg: flags.value_of("--svg")?.map(str::to_owned),
                devices,
                topology,
            })
        }
        "loadcurve" => {
            let crossbar = match flags.value_of("--net")? {
                None | Some("mesh") => false,
                Some("xbar") => true,
                Some(other) => return Err(format!("unknown network '{other}' (mesh|xbar)")),
            };
            Ok(Command::LoadCurve {
                crossbar,
                seed: flags.parse_num("--seed", 1u64)?,
            })
        }
        "serve" => {
            let state = flags
                .value_of("--state")?
                .ok_or_else(|| "serve needs --state <dir>".to_owned())?
                .to_owned();
            let socket = flags.value_of("--socket")?.map(str::to_owned);
            if socket.is_none() && !flags.has("--stdin") {
                return Err("serve needs --socket <path> or --stdin".to_owned());
            }
            if socket.is_some() && flags.has("--stdin") {
                return Err("serve takes --socket or --stdin, not both".to_owned());
            }
            Ok(Command::Serve {
                state,
                socket,
                queue_cap: flags.parse_num("--queue-cap", 16usize)?,
                session_cap: flags.parse_num("--session-cap", 8usize)?,
                max_rows: flags.parse_num("--max-rows", 0usize)?,
                max_seeds: flags.parse_num("--max-seeds", 0u64)?,
                max_transfers: flags.parse_num("--max-transfers", 0usize)?,
                row_delay_ms: flags.parse_num("--row-delay-ms", 0u64)?,
            })
        }
        "submit" => {
            let socket = flags
                .value_of("--socket")?
                .ok_or_else(|| "submit needs --socket <path>".to_owned())?
                .to_owned();
            let what = if let Some(raw) = flags.value_of("--json")? {
                SubmitWhat::Raw(raw.to_owned())
            } else {
                let op = rest
                    .first()
                    .filter(|a| !a.starts_with("--"))
                    .ok_or_else(|| {
                        "submit needs campaign|mesh|chaos|fabric|replay|health|shutdown or --json"
                            .to_owned()
                    })?;
                match op.as_str() {
                    "campaign" => SubmitWhat::Campaign {
                        gpu: rest
                            .get(1)
                            .filter(|a| !a.starts_with("--"))
                            .ok_or_else(|| "submit campaign needs a GPU argument".to_owned())
                            .and_then(|s| GpuChoice::parse(s))?,
                        seed: flags.parse_num("--seed", 0u64)?,
                        lines: flags.parse_num("--lines", 8usize)?,
                        samples: flags.parse_num("--samples", 12usize)?,
                        deadline_rows: flags
                            .value_of("--deadline-rows")?
                            .map(|v| {
                                v.parse().map_err(|_| {
                                    format!("flag --deadline-rows: '{v}' is not a valid number")
                                })
                            })
                            .transpose()?,
                    },
                    "mesh" => SubmitWhat::Mesh {
                        seed: flags.parse_num("--seed", 1u64)?,
                        transfers: flags.parse_num("--transfers", 200usize)?,
                    },
                    "chaos" => SubmitWhat::Chaos {
                        seed_start: flags.parse_num("--seed-start", 0u64)?,
                        seed_count: flags.parse_num("--seed-count", 4u64)?,
                        transfers: flags.parse_num("--transfers", 64u32)?,
                    },
                    "fabric" => SubmitWhat::Fabric {
                        devices: flags.parse_num("--devices", 2u32)?,
                        topology: flags
                            .value_of("--topology")?
                            .unwrap_or("ring")
                            .to_owned(),
                        seed: flags.parse_num("--seed", 0u64)?,
                        transfers: flags.parse_num("--transfers", 64usize)?,
                    },
                    "replay" => SubmitWhat::Replay {
                        trace: rest
                            .get(1)
                            .filter(|a| !a.starts_with("--"))
                            .ok_or_else(|| "submit replay needs a trace file path".to_owned())?
                            .clone(),
                    },
                    "health" => SubmitWhat::Health,
                    "shutdown" => SubmitWhat::Shutdown,
                    other => {
                        return Err(format!(
                            "submit: unknown request '{other}' (campaign|mesh|chaos|fabric|replay|health|shutdown)"
                        ))
                    }
                }
            };
            Ok(Command::Submit {
                socket,
                what,
                payload_out: flags.value_of("--payload-out")?.map(str::to_owned),
                summary: flags.has("--summary"),
            })
        }
        "batch" => {
            let file = rest
                .first()
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| "batch needs a request file".to_owned())?
                .clone();
            let socket = flags
                .value_of("--socket")?
                .ok_or_else(|| "batch needs --socket <path>".to_owned())?
                .to_owned();
            Ok(Command::Batch { socket, file })
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

/// Parses an argument vector, first extracting the global flags
/// (`--trace`, `--metrics`, `--faults`, `--jobs`, `--profile`,
/// `--engine`) — accepted anywhere on the line — then delegating the
/// remainder to [`parse`].
///
/// # Errors
///
/// Returns a human-readable message for a global flag without a value or any
/// [`parse`] error.
pub fn parse_invocation(args: &[String]) -> Result<Invocation, String> {
    let mut trace = None;
    let mut metrics = None;
    let mut faults = None;
    let mut jobs = None;
    let mut profile = None;
    let mut engine = None;
    let mut remaining: Vec<String> = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--engine" {
            match it.next().map(String::as_str) {
                Some("cycle") => engine = Some(EngineChoice::Cycle),
                Some("event") => engine = Some(EngineChoice::Event),
                Some(v) if !v.starts_with("--") => {
                    return Err(format!("flag --engine: '{v}' is not 'cycle' or 'event'"));
                }
                _ => return Err("flag --engine needs 'cycle' or 'event'".to_owned()),
            }
            continue;
        }
        if a == "--jobs" {
            match it.next() {
                Some(v) if !v.starts_with("--") => {
                    jobs =
                        Some(v.parse::<usize>().map_err(|_| {
                            format!("flag --jobs: '{v}' is not a valid worker count")
                        })?);
                }
                _ => return Err("flag --jobs needs a worker count".to_owned()),
            }
            continue;
        }
        let slot = match a.as_str() {
            "--trace" => &mut trace,
            "--metrics" => &mut metrics,
            "--faults" => &mut faults,
            "--profile" => &mut profile,
            _ => {
                remaining.push(a.clone());
                continue;
            }
        };
        match it.next() {
            Some(v) if !v.starts_with("--") => *slot = Some(v.clone()),
            _ => return Err(format!("flag {a} needs a file path")),
        }
    }
    Ok(Invocation {
        command: parse(&remaining)?,
        trace,
        metrics,
        faults,
        jobs,
        profile,
        engine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
    }

    #[test]
    fn info_parses_gpu_case_insensitively() {
        assert_eq!(
            parse(&argv("info V100")).unwrap(),
            Command::Info {
                gpu: GpuChoice::V100
            }
        );
        assert!(parse(&argv("info rtx5090")).is_err());
        assert!(parse(&argv("info")).is_err());
    }

    #[test]
    fn latency_defaults_and_flags() {
        assert_eq!(
            parse(&argv("latency a100")).unwrap(),
            Command::Latency {
                gpu: GpuChoice::A100,
                sm: 24,
                seed: 0
            }
        );
        assert_eq!(
            parse(&argv("latency h100 --sm 7 --seed 99")).unwrap(),
            Command::Latency {
                gpu: GpuChoice::H100,
                sm: 7,
                seed: 99
            }
        );
        assert!(parse(&argv("latency v100 --sm")).is_err());
        assert!(parse(&argv("latency v100 --sm abc")).is_err());
    }

    #[test]
    fn attack_flags() {
        let c = parse(&argv("attack aes --defend --gpu v100")).unwrap();
        assert_eq!(
            c,
            Command::Attack {
                kind: AttackKind::Aes,
                gpu: GpuChoice::V100,
                scheduler: CtaScheduler::RandomSeed,
                seed: 42,
            }
        );
        let c = parse(&argv("attack rsa")).unwrap();
        assert!(matches!(
            c,
            Command::Attack {
                kind: AttackKind::Rsa,
                scheduler: CtaScheduler::Static,
                ..
            }
        ));
        assert!(parse(&argv("attack des")).is_err());
    }

    #[test]
    fn mesh_arbiter_choices() {
        assert_eq!(
            parse(&argv("mesh --arbiter age")).unwrap(),
            Command::Mesh {
                age_based: true,
                seed: 1,
                transfers: 2000,
                self_heal: false,
                devices: 1,
                topology: "ring".to_owned(),
            }
        );
        assert_eq!(
            parse(&argv("mesh --transfers 500 --self-heal")).unwrap(),
            Command::Mesh {
                age_based: false,
                seed: 1,
                transfers: 500,
                self_heal: true,
                devices: 1,
                topology: "ring".to_owned(),
            }
        );
        assert!(parse(&argv("mesh --arbiter fifo")).is_err());
    }

    #[test]
    fn mesh_multi_device_flags_parse_and_validate() {
        let c = parse(&argv("mesh --devices 4 --topology switch")).unwrap();
        let Command::Mesh {
            devices, topology, ..
        } = c
        else {
            panic!("expected mesh, got {c:?}");
        };
        assert_eq!((devices, topology.as_str()), (4, "switch"));
        assert!(parse(&argv("mesh --devices 0")).is_err());
        assert!(parse(&argv("mesh --topology moebius")).is_err());
        assert!(
            parse(&argv("mesh --devices 3 --topology p2p")).is_err(),
            "p2p supports exactly two devices"
        );
    }

    #[test]
    fn fabric_parses_with_defaults_and_flags() {
        assert_eq!(
            parse(&argv("fabric")).unwrap(),
            Command::Fabric {
                devices: 2,
                topology: "ring".to_owned(),
                width: 5,
                height: 5,
                seed: 1,
                transfers: 256,
                cycles: 60_000,
                self_heal: false,
            }
        );
        assert_eq!(
            parse(&argv(
                "fabric --devices 4 --topology fully --width 4 --height 3 \
                 --seed 7 --transfers 64 --cycles 9000 --self-heal"
            ))
            .unwrap(),
            Command::Fabric {
                devices: 4,
                topology: "fully".to_owned(),
                width: 4,
                height: 3,
                seed: 7,
                transfers: 64,
                cycles: 9_000,
                self_heal: true,
            }
        );
        assert!(parse(&argv("fabric --devices 1")).is_err());
        assert!(parse(&argv("fabric --topology star")).is_err());
        assert!(USAGE.contains("gnoc fabric"));
        assert!(USAGE.contains("MULTI-GPU FABRIC"));
    }

    #[test]
    fn memsim_provisioned_toggle() {
        assert_eq!(
            parse(&argv("memsim --provisioned --seed 5")).unwrap(),
            Command::Memsim {
                provisioned: true,
                seed: 5
            }
        );
    }

    #[test]
    fn covert_and_replay_and_loadcurve_parse() {
        assert_eq!(
            parse(&argv("covert --far")).unwrap(),
            Command::Covert {
                gpu: GpuChoice::A100,
                far: true,
                seed: 0
            }
        );
        assert_eq!(
            parse(&argv("replay bfs --random --blocks 12")).unwrap(),
            Command::Replay {
                workload: WorkloadKind::Bfs,
                gpu: GpuChoice::V100,
                random: true,
                blocks: 12
            }
        );
        assert!(parse(&argv("replay sort")).is_err());
        assert_eq!(
            parse(&argv("loadcurve --net xbar")).unwrap(),
            Command::LoadCurve {
                crossbar: true,
                seed: 1
            }
        );
        assert!(parse(&argv("loadcurve --net ring")).is_err());
    }

    #[test]
    fn unknown_command_includes_usage() {
        let err = parse(&argv("frobnicate")).unwrap_err();
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn stats_needs_a_path() {
        assert_eq!(
            parse(&argv("stats out/metrics.json")).unwrap(),
            Command::Stats {
                path: "out/metrics.json".to_owned()
            }
        );
        assert!(parse(&argv("stats")).is_err());
        assert!(parse(&argv("stats --trace")).is_err());
    }

    #[test]
    fn floorswept_presets_parse() {
        assert_eq!(
            parse(&argv("info a100full")).unwrap(),
            Command::Info {
                gpu: GpuChoice::A100Full
            }
        );
        assert_eq!(
            parse(&argv("info A100FS")).unwrap(),
            Command::Info {
                gpu: GpuChoice::A100Fs
            }
        );
        assert_eq!(GpuChoice::A100Fs.preset_name(), "a100fs");
    }

    #[test]
    fn campaign_parses_with_defaults_and_flags() {
        assert_eq!(
            parse(&argv("campaign a100fs")).unwrap(),
            Command::Campaign {
                gpu: GpuChoice::A100Fs,
                seed: 0,
                checkpoint: None,
                lines: 8,
                samples: 12,
                quarantine: vec![],
                deadline_rows: None,
            }
        );
        assert_eq!(
            parse(&argv(
                "campaign v100 --seed 7 --checkpoint ck.json --lines 2 --samples 3"
            ))
            .unwrap(),
            Command::Campaign {
                gpu: GpuChoice::V100,
                seed: 7,
                checkpoint: Some("ck.json".to_owned()),
                lines: 2,
                samples: 3,
                quarantine: vec![],
                deadline_rows: None,
            }
        );
        assert!(parse(&argv("campaign")).is_err());
        assert!(parse(&argv("campaign b200")).is_err());
    }

    #[test]
    fn campaign_degraded_flags_parse() {
        let c = parse(&argv(
            "campaign v100 --quarantine-sms 3,17,40 --deadline-rows 30",
        ))
        .unwrap();
        let Command::Campaign {
            quarantine,
            deadline_rows,
            ..
        } = c
        else {
            panic!("expected campaign, got {c:?}");
        };
        assert_eq!(quarantine, vec![3, 17, 40]);
        assert_eq!(deadline_rows, Some(30));
        assert!(parse(&argv("campaign v100 --quarantine-sms 3,x")).is_err());
        assert!(parse(&argv("campaign v100 --deadline-rows soon")).is_err());
    }

    #[test]
    fn health_parses_with_defaults_and_flags() {
        assert_eq!(
            parse(&argv("health")).unwrap(),
            Command::Health {
                width: 6,
                height: 6,
                cycles: 20_000,
                device: None,
                windows: 16,
                seed: 0,
            }
        );
        assert_eq!(
            parse(&argv(
                "health --width 5 --height 4 --cycles 9000 --device v100 --windows 8 --seed 3"
            ))
            .unwrap(),
            Command::Health {
                width: 5,
                height: 4,
                cycles: 9_000,
                device: Some(GpuChoice::V100),
                windows: 8,
                seed: 3,
            }
        );
        assert!(parse(&argv("health --device b200")).is_err());
    }

    #[test]
    fn chaos_detect_flag_parses() {
        let c = parse(&argv("chaos run --detect")).unwrap();
        let Command::Chaos {
            action: ChaosAction::Run { cfg, .. },
        } = c
        else {
            panic!("expected chaos run, got {c:?}");
        };
        assert!(cfg.detection);
    }

    #[test]
    fn exit_codes_are_distinct_and_documented() {
        let codes = [EXIT_OK, EXIT_CHECK_FAILED, EXIT_INVALID_INPUT, EXIT_IO];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert!(USAGE.contains("EXIT CODES"));
        assert!(USAGE.contains("--self-heal"));
        assert!(USAGE.contains("gnoc health"));
    }

    #[test]
    fn faults_gen_and_check_parse() {
        let c = parse(&argv(
            "faults gen --out plan.json --seed 9 --dead-frac 0.02 --flaky 2 --stalls 1",
        ))
        .unwrap();
        let Command::Faults {
            action: FaultsAction::Gen { out, cfg },
        } = c
        else {
            panic!("expected faults gen, got {c:?}");
        };
        assert_eq!(out, "plan.json");
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.width, 6);
        assert_eq!(cfg.dead_link_fraction, 0.02);
        assert_eq!(cfg.flaky_links, 2);
        assert_eq!(cfg.stalled_routers, 1);

        assert_eq!(
            parse(&argv(
                "faults check plan.json --width 8 --height 8 --slices 40"
            ))
            .unwrap(),
            Command::Faults {
                action: FaultsAction::Check {
                    path: "plan.json".to_owned(),
                    width: 8,
                    height: 8,
                    slices: Some(40),
                    devices: 1,
                    topology: "ring".to_owned(),
                }
            }
        );
        assert!(parse(&argv("faults gen")).is_err(), "--out is required");
        assert!(parse(&argv("faults check")).is_err());
        assert!(parse(&argv("faults list")).is_err());
    }

    #[test]
    fn faults_gen_and_check_take_fabric_knobs() {
        let c = parse(&argv(
            "faults gen --out plan.json --devices 4 --topology switch \
             --dead-fabric-links 1 --flaky-fabric-links 2 --fabric-flaky-prob 0.1 \
             --dead-devices 1 --dead-switch",
        ))
        .unwrap();
        let Command::Faults {
            action: FaultsAction::Gen { cfg, .. },
        } = c
        else {
            panic!("expected faults gen, got {c:?}");
        };
        assert_eq!(cfg.devices, 4);
        assert_eq!(cfg.fabric_topology, FabricTopology::Switch);
        assert_eq!(cfg.dead_fabric_links, 1);
        assert_eq!(cfg.flaky_fabric_links, 2);
        assert_eq!(cfg.fabric_flaky_drop_prob, 0.1);
        assert_eq!(cfg.dead_devices, 1);
        assert!(cfg.dead_switch);

        // Single-die default: no fabric faults generated.
        let c = parse(&argv("faults gen --out plan.json")).unwrap();
        let Command::Faults {
            action: FaultsAction::Gen { cfg, .. },
        } = c
        else {
            panic!("expected faults gen, got {c:?}");
        };
        assert_eq!(cfg.devices, 0);
        assert!(parse(&argv("faults gen --out p.json --topology grid")).is_err());

        let c = parse(&argv("faults check plan.json --devices 4 --topology line")).unwrap();
        let Command::Faults {
            action: FaultsAction::Check {
                devices, topology, ..
            },
        } = c
        else {
            panic!("expected faults check, got {c:?}");
        };
        assert_eq!((devices, topology.as_str()), (4, "line"));
        assert!(parse(&argv("faults check plan.json --devices 3 --topology p2p")).is_err());
    }

    #[test]
    fn chaos_run_parses_with_defaults_and_flags() {
        let c = parse(&argv("chaos run")).unwrap();
        let Command::Chaos {
            action:
                ChaosAction::Run {
                    seeds,
                    cfg,
                    state,
                    report,
                    repro_dir,
                    wall_ms,
                    no_shrink,
                },
        } = c
        else {
            panic!("expected chaos run, got {c:?}");
        };
        assert_eq!(seeds, 0..25);
        assert_eq!(cfg, ChaosConfig::default());
        assert_eq!(cfg.device.as_deref(), Some("v100"));
        assert_eq!(
            (state, report, repro_dir, wall_ms),
            (None, None, None, None)
        );
        assert!(!no_shrink);

        let c = parse(&argv(
            "chaos run --seeds 5..9 --width 6 --height 6 --transfers 300 \
             --device a100fs --device-every 2 --state s.json --report r.json \
             --repro-dir repros --wall-ms 1500 --no-shrink",
        ))
        .unwrap();
        let Command::Chaos {
            action:
                ChaosAction::Run {
                    seeds,
                    cfg,
                    state,
                    report,
                    repro_dir,
                    wall_ms,
                    no_shrink,
                },
        } = c
        else {
            panic!("expected chaos run, got {c:?}");
        };
        assert_eq!(seeds, 5..9);
        assert_eq!((cfg.width, cfg.height, cfg.transfers), (6, 6, 300));
        assert_eq!(cfg.device.as_deref(), Some("a100fs"));
        assert_eq!(cfg.device_every, 2);
        assert_eq!(state.as_deref(), Some("s.json"));
        assert_eq!(report.as_deref(), Some("r.json"));
        assert_eq!(repro_dir.as_deref(), Some("repros"));
        assert_eq!(wall_ms, Some(1500));
        assert!(no_shrink);

        // `--device none` disables the campaign oracles entirely.
        let c = parse(&argv("chaos run --device none")).unwrap();
        let Command::Chaos {
            action: ChaosAction::Run { cfg, .. },
        } = c
        else {
            panic!("expected chaos run, got {c:?}");
        };
        assert_eq!(cfg.device, None);

        // Multi-device fuzzing: the fabric flags land in the config and the
        // combination is validated at parse time.
        let c = parse(&argv(
            "chaos run --devices 4 --topology ring --fabric-stuck-bug",
        ))
        .unwrap();
        let Command::Chaos {
            action: ChaosAction::Run { cfg, .. },
        } = c
        else {
            panic!("expected chaos run, got {c:?}");
        };
        assert_eq!(cfg.devices, 4);
        assert_eq!(cfg.topology, "ring");
        assert!(cfg.fabric_stuck_crossing_bug);
        assert!(parse(&argv("chaos run --devices 5 --topology p2p")).is_err());

        assert!(parse(&argv("chaos run --seeds 9..5")).is_err());
        assert!(parse(&argv("chaos run --seeds five")).is_err());
        assert!(parse(&argv("chaos run --device b200")).is_err());
        assert!(parse(&argv("chaos fuzz")).is_err());
        assert!(parse(&argv("chaos")).is_err());
    }

    #[test]
    fn chaos_replay_oracle_flag_parses() {
        let c = parse(&argv("chaos run --replay")).unwrap();
        let Command::Chaos {
            action: ChaosAction::Run { cfg, .. },
        } = c
        else {
            panic!("expected chaos run, got {c:?}");
        };
        assert!(cfg.replay);
        assert!(!ChaosConfig::default().replay, "replay is opt-in");
        assert!(USAGE.contains("--replay"));
    }

    #[test]
    fn trace_record_targets_parse_with_defaults_and_flags() {
        assert_eq!(
            parse(&argv("trace record mesh --out run.trace")).unwrap(),
            Command::Trace {
                action: TraceAction::Record {
                    target: TraceTarget::Mesh {
                        seed: 1,
                        transfers: 2000
                    },
                    out: "run.trace".to_owned(),
                    stats: None,
                }
            }
        );
        assert_eq!(
            parse(&argv(
                "trace record fabric --out f.trace --devices 4 --topology ring \
                 --width 4 --height 3 --seed 9 --transfers 64 --cycles 9000 \
                 --stats s.json"
            ))
            .unwrap(),
            Command::Trace {
                action: TraceAction::Record {
                    target: TraceTarget::Fabric {
                        devices: 4,
                        topology: "ring".to_owned(),
                        width: 4,
                        height: 3,
                        seed: 9,
                        transfers: 64,
                        cycles: 9_000,
                    },
                    out: "f.trace".to_owned(),
                    stats: Some("s.json".to_owned()),
                }
            }
        );
        assert_eq!(
            parse(&argv("trace record campaign v100 --out c.trace --seed 3")).unwrap(),
            Command::Trace {
                action: TraceAction::Record {
                    target: TraceTarget::Campaign {
                        gpu: GpuChoice::V100,
                        seed: 3,
                        lines: LatencyProbe::default().working_set_lines,
                        samples: LatencyProbe::default().samples,
                    },
                    out: "c.trace".to_owned(),
                    stats: None,
                }
            }
        );
        assert!(parse(&argv("trace record mesh")).is_err(), "--out required");
        assert!(parse(&argv("trace record campaign --out c.trace")).is_err());
        assert!(parse(&argv("trace record fabric --out f.trace --devices 1")).is_err());
        assert!(parse(&argv("trace record blender --out x.trace")).is_err());
    }

    #[test]
    fn trace_replay_validate_info_take_a_positional_path() {
        assert_eq!(
            parse(&argv("trace replay run.trace --stats s.json")).unwrap(),
            Command::Trace {
                action: TraceAction::Replay {
                    path: "run.trace".to_owned(),
                    stats: Some("s.json".to_owned()),
                }
            }
        );
        assert_eq!(
            parse(&argv("trace validate run.trace")).unwrap(),
            Command::Trace {
                action: TraceAction::Validate {
                    path: "run.trace".to_owned()
                }
            }
        );
        assert_eq!(
            parse(&argv("trace info run.trace")).unwrap(),
            Command::Trace {
                action: TraceAction::Info {
                    path: "run.trace".to_owned()
                }
            }
        );
        assert!(parse(&argv("trace replay")).is_err());
        assert!(parse(&argv("trace validate --stats s.json")).is_err());
        assert!(parse(&argv("trace")).is_err());
        assert!(parse(&argv("trace erase run.trace")).is_err());
        assert!(USAGE.contains("gnoc trace"));
        assert!(USAGE.contains("TRACE RECORD/REPLAY"));
    }

    #[test]
    fn chaos_replay_and_shrink_need_a_reproducer() {
        assert_eq!(
            parse(&argv("chaos replay --repro r.json")).unwrap(),
            Command::Chaos {
                action: ChaosAction::Replay {
                    repro: "r.json".to_owned()
                }
            }
        );
        assert!(parse(&argv("chaos replay")).is_err());
        assert_eq!(
            parse(&argv("chaos shrink --repro r.json --out min.json")).unwrap(),
            Command::Chaos {
                action: ChaosAction::Shrink {
                    repro: "r.json".to_owned(),
                    out: Some("min.json".to_owned()),
                }
            }
        );
        assert!(parse(&argv("chaos shrink")).is_err());
    }

    #[test]
    fn faults_global_flag_is_extracted() {
        let inv = parse_invocation(&argv("latency a100fs --faults plan.json --sm 3")).unwrap();
        assert_eq!(inv.faults.as_deref(), Some("plan.json"));
        assert_eq!(
            inv.command,
            Command::Latency {
                gpu: GpuChoice::A100Fs,
                sm: 3,
                seed: 0
            }
        );
        assert!(parse_invocation(&argv("mesh --faults")).is_err());
    }

    #[test]
    fn global_flags_are_extracted_anywhere() {
        let inv = parse_invocation(&argv(
            "latency v100 --trace t.jsonl --sm 7 --metrics m.json",
        ))
        .unwrap();
        assert_eq!(inv.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(inv.metrics.as_deref(), Some("m.json"));
        assert_eq!(
            inv.command,
            Command::Latency {
                gpu: GpuChoice::V100,
                sm: 7,
                seed: 0
            }
        );

        let plain = parse_invocation(&argv("memsim --provisioned")).unwrap();
        assert_eq!(plain.trace, None);
        assert_eq!(plain.metrics, None);

        assert!(parse_invocation(&argv("memsim --trace")).is_err());
        assert!(parse_invocation(&argv("memsim --trace --metrics m.json")).is_err());
    }

    #[test]
    fn profile_parses_with_defaults_and_flags() {
        assert_eq!(
            parse(&argv("profile")).unwrap(),
            Command::Profile {
                width: 6,
                height: 6,
                age_based: false,
                seed: 1,
                transfers: 2000,
                slowest: 5,
                report: None,
                perfetto: None,
                jsonl: None,
                svg: None,
                devices: 1,
                topology: "ring".to_owned(),
            }
        );
        assert_eq!(
            parse(&argv(
                "profile --width 4 --height 3 --arbiter age --seed 9 --transfers 64 \
                 --slowest 2 --report p.json --perfetto t.json --jsonl e.jsonl --svg u.svg \
                 --devices 3 --topology line"
            ))
            .unwrap(),
            Command::Profile {
                width: 4,
                height: 3,
                age_based: true,
                seed: 9,
                transfers: 64,
                slowest: 2,
                report: Some("p.json".to_owned()),
                perfetto: Some("t.json".to_owned()),
                jsonl: Some("e.jsonl".to_owned()),
                svg: Some("u.svg".to_owned()),
                devices: 3,
                topology: "line".to_owned(),
            }
        );
        assert!(parse(&argv("profile --arbiter fifo")).is_err());
        assert!(parse(&argv("profile --transfers lots")).is_err());
        assert!(parse(&argv("profile --devices 3 --topology p2p")).is_err());
    }

    #[test]
    fn profile_global_flag_is_extracted_anywhere() {
        let inv = parse_invocation(&argv("mesh --profile p.json --transfers 40")).unwrap();
        assert_eq!(inv.profile.as_deref(), Some("p.json"));
        assert_eq!(
            inv.command,
            Command::Mesh {
                age_based: false,
                seed: 1,
                transfers: 40,
                self_heal: false,
                devices: 1,
                topology: "ring".to_owned(),
            }
        );
        let inv = parse_invocation(&argv("--profile p.json chaos run --seeds 0..2")).unwrap();
        assert_eq!(inv.profile.as_deref(), Some("p.json"));
        assert!(matches!(inv.command, Command::Chaos { .. }));
        assert!(parse_invocation(&argv("mesh --profile")).is_err());
        assert!(USAGE.contains("gnoc profile"));
        assert!(USAGE.contains("--profile <file.json>"));
    }

    #[test]
    fn engine_global_flag_parses_anywhere_and_validates() {
        let inv = parse_invocation(&argv("mesh --engine cycle --transfers 40")).unwrap();
        assert_eq!(inv.engine, Some(EngineChoice::Cycle));
        assert!(matches!(inv.command, Command::Mesh { transfers: 40, .. }));
        let inv = parse_invocation(&argv("--engine event chaos run --seeds 0..2")).unwrap();
        assert_eq!(inv.engine, Some(EngineChoice::Event));
        let inv = parse_invocation(&argv("mesh")).unwrap();
        assert_eq!(inv.engine, None);
        assert!(parse_invocation(&argv("mesh --engine")).is_err());
        assert!(parse_invocation(&argv("mesh --engine turbo")).is_err());
        assert!(USAGE.contains("--engine <cycle|event>"));
    }

    #[test]
    fn jobs_global_flag_parses_anywhere_and_validates() {
        let inv = parse_invocation(&argv("campaign v100 --jobs 4 --seed 2")).unwrap();
        assert_eq!(inv.jobs, Some(4));
        assert_eq!(
            inv.command,
            Command::Campaign {
                gpu: GpuChoice::V100,
                seed: 2,
                checkpoint: None,
                lines: 8,
                samples: 12,
                quarantine: vec![],
                deadline_rows: None,
            }
        );

        let inv = parse_invocation(&argv("--jobs 2 chaos run --seeds 0..4")).unwrap();
        assert_eq!(inv.jobs, Some(2));
        assert!(matches!(inv.command, Command::Chaos { .. }));

        let inv = parse_invocation(&argv("latency v100")).unwrap();
        assert_eq!(inv.jobs, None, "unset --jobs defers to GNOC_JOBS/env");

        assert!(parse_invocation(&argv("campaign v100 --jobs")).is_err());
        assert!(parse_invocation(&argv("campaign v100 --jobs many")).is_err());
        assert!(parse_invocation(&argv("campaign v100 --jobs --trace t.jsonl")).is_err());
    }

    #[test]
    fn serve_parses_modes_and_caps() {
        assert_eq!(
            parse(&argv("serve --state s --socket d.sock")).unwrap(),
            Command::Serve {
                state: "s".into(),
                socket: Some("d.sock".into()),
                queue_cap: 16,
                session_cap: 8,
                max_rows: 0,
                max_seeds: 0,
                max_transfers: 0,
                row_delay_ms: 0,
            }
        );
        let c = parse(&argv(
            "serve --state s --stdin --queue-cap 2 --session-cap 1 --max-rows 4 --row-delay-ms 50",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                state: "s".into(),
                socket: None,
                queue_cap: 2,
                session_cap: 1,
                max_rows: 4,
                max_seeds: 0,
                max_transfers: 0,
                row_delay_ms: 50,
            }
        );
        // --state is required; the serving mode must be exactly one of
        // --socket / --stdin.
        assert!(parse(&argv("serve --socket d.sock")).is_err());
        assert!(parse(&argv("serve --state s")).is_err());
        assert!(parse(&argv("serve --state s --socket d.sock --stdin")).is_err());
    }

    #[test]
    fn submit_parses_ops_raw_and_control() {
        assert_eq!(
            parse(&argv(
                "submit campaign a100 --socket d.sock --seed 3 --deadline-rows 5 --summary"
            ))
            .unwrap(),
            Command::Submit {
                socket: "d.sock".into(),
                what: SubmitWhat::Campaign {
                    gpu: GpuChoice::A100,
                    seed: 3,
                    lines: 8,
                    samples: 12,
                    deadline_rows: Some(5),
                },
                payload_out: None,
                summary: true,
            }
        );
        assert_eq!(
            parse(&argv("submit mesh --socket d.sock --payload-out p.json")).unwrap(),
            Command::Submit {
                socket: "d.sock".into(),
                what: SubmitWhat::Mesh {
                    seed: 1,
                    transfers: 200,
                },
                payload_out: Some("p.json".into()),
                summary: false,
            }
        );
        assert!(matches!(
            parse(&argv("submit chaos --socket d.sock --seed-count 2")).unwrap(),
            Command::Submit {
                what: SubmitWhat::Chaos { seed_count: 2, .. },
                ..
            }
        ));
        assert!(matches!(
            parse(&argv(
                "submit fabric --socket d.sock --devices 3 --topology fully"
            ))
            .unwrap(),
            Command::Submit {
                what: SubmitWhat::Fabric { devices: 3, .. },
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("submit health --socket d.sock")).unwrap(),
            Command::Submit {
                what: SubmitWhat::Health,
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("submit shutdown --socket d.sock")).unwrap(),
            Command::Submit {
                what: SubmitWhat::Shutdown,
                ..
            }
        ));
        // Raw lines pass through verbatim.
        let raw = r#"{"schema":1,"op":"health"}"#;
        let c = parse(&[
            "submit".to_string(),
            "--socket".to_string(),
            "d.sock".to_string(),
            "--json".to_string(),
            raw.to_string(),
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Submit {
                socket: "d.sock".into(),
                what: SubmitWhat::Raw(raw.into()),
                payload_out: None,
                summary: false,
            }
        );
        // --socket is required; the request must be named or --json.
        assert!(parse(&argv("submit mesh")).is_err());
        assert!(parse(&argv("submit --socket d.sock")).is_err());
        assert!(parse(&argv("submit frobnicate --socket d.sock")).is_err());
    }

    #[test]
    fn batch_parses_file_and_socket() {
        assert_eq!(
            parse(&argv("batch reqs.jsonl --socket d.sock")).unwrap(),
            Command::Batch {
                socket: "d.sock".into(),
                file: "reqs.jsonl".into(),
            }
        );
        assert!(parse(&argv("batch --socket d.sock")).is_err());
        assert!(parse(&argv("batch reqs.jsonl")).is_err());
    }
}
